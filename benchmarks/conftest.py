"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one table/figure of the paper, prints the
paper-style rows, saves them under ``bench_results/``, and asserts the
qualitative shape (who wins, by roughly what factor).  Absolute wall
time of the benchmark function itself is what pytest-benchmark records.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — workload scale factor (default 1.0 = the
  paper-faithful sizes);
* ``REPRO_BENCH_RUNS``  — repetitions per configuration (default small).
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    def _save(name: str, text: str):
        path = os.path.join(results_dir, name)
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print()
        print(text)
        return path

    return _save
