"""Benchmark: reproduce Fig 3(a) (§7.2) — apparent write throughput, Frost.

Paper shape: with Rocpanda the apparent aggregate write throughput
rises from 1 to 15 compute processors (one SMP node, intra-node
bandwidth utilization), then scales with the number of per-node I/O
servers, reaching ~875 MB/s with 512 total processors — more than five
times the parallel-HDF5 (FLASH benchmark) throughput measured on the
same machine; Rochdf stays pinned near the shared filesystem's
capability.
"""

import pytest

from repro.bench import bench_runs, run_fig3a
from repro.bench.fig3a import PARALLEL_HDF5_REFERENCE_BPS

PROC_COUNTS = (1, 3, 7, 15, 30, 60, 120, 480)


@pytest.fixture(scope="module")
def fig3a_result():
    return run_fig3a(
        proc_counts=PROC_COUNTS,
        nruns=bench_runs(2),
        steps=2,
        snapshot_interval=1,
    )


def test_fig3a(benchmark, fig3a_result, save_result):
    benchmark.pedantic(lambda: fig3a_result, rounds=1, iterations=1)
    save_result("fig3a.txt", fig3a_result.render())

    res = fig3a_result
    panda = {n: s.value for n, s in zip(res.proc_counts, res.throughput["rocpanda"])}
    rochdf = {n: s.value for n, s in zip(res.proc_counts, res.throughput["rochdf"])}

    # Throughput rises from 1 client to a full node of 15 clients.
    assert panda[15] > 2.0 * panda[1]

    # Beyond one node it scales with the number of servers.
    assert panda[60] > 1.5 * panda[15]
    assert panda[480] > 4.0 * panda[60]
    # Monotone non-decreasing across node-count scaling.
    scaling = [panda[n] for n in (15, 30, 60, 120, 480)]
    assert all(b > a for a, b in zip(scaling, scaling[1:]))

    # Far above the parallel-HDF5 reference at full scale (paper: >5x).
    assert panda[480] > 5.0 * PARALLEL_HDF5_REFERENCE_BPS

    # Rochdf: pinned by the filesystem + format overhead, roughly flat
    # once past a node, and far below Rocpanda.
    flat = [rochdf[n] for n in (15, 30, 60, 120, 480)]
    assert max(flat) / min(flat) < 2.0
    for n in (15, 30, 60, 120, 480):
        assert panda[n] > rochdf[n]
    assert panda[480] > 20 * rochdf[480]
