"""Benchmarks: ablations of the design choices (DESIGN.md A1-A4)."""

import pytest

from repro.bench import (
    render_series,
    render_table,
    run_active_buffering_ablation,
    run_buffer_size_sweep,
    run_hdf_driver_scaling,
    run_ratio_sweep,
)


def test_active_buffering(benchmark, save_result):
    """A1: buffering at the servers hides the write cost (§6.1)."""
    result = benchmark.pedantic(
        run_active_buffering_ablation, rounds=1, iterations=1
    )
    save_result(
        "ablation_a1_active_buffering.txt",
        render_table(
            ["mode", "visible I/O (s)"],
            [[k, v] for k, v in result.items()],
            title="A1 — active buffering on/off (32 clients + 4 servers, Turing)",
        ),
    )
    assert result["buffered"] < result["write_through"] / 2


def test_hdf4_vs_hdf5_scaling(benchmark, save_result):
    """A2: HDF4 degrades linearly with datasets/file, HDF5 does not."""
    result = benchmark.pedantic(run_hdf_driver_scaling, rounds=1, iterations=1)
    counts = sorted(next(iter(result.values())).keys())
    save_result(
        "ablation_a2_hdf_drivers.txt",
        render_series(
            "datasets/file",
            counts,
            {
                f"{name} {op} (s)": [result[name][c][i] for c in counts]
                for name in result
                for i, op in ((0, "write"), (1, "read"))
            },
            title="A2 — HDF4 vs HDF5 driver scaling with dataset count",
        ),
    )
    h4, h5 = result["hdf4"], result["hdf5"]
    small, big = counts[0], counts[-1]
    # HDF4 wins small files (cheap constants), loses big ones (linear
    # directory scan) — the [13] observation.
    assert h4[small][0] < h5[small][0]
    assert h4[big][0] > h5[big][0]
    assert h4[big][1] > h5[big][1]
    # HDF4 per-dataset write cost grows superlinearly with file size.
    h4_rate_small = h4[small][0] / small
    h4_rate_big = h4[big][0] / big
    assert h4_rate_big > 1.5 * h4_rate_small
    # HDF5 per-dataset cost stays nearly flat.
    h5_rate_small = h5[small][0] / small
    h5_rate_big = h5[big][0] / big
    assert h5_rate_big < 1.5 * h5_rate_small


def test_client_server_ratio(benchmark, save_result):
    """A3: the paper's >= 8:1 ratio is a sensible operating point."""
    result = benchmark.pedantic(run_ratio_sweep, rounds=1, iterations=1)
    ratios = sorted(result)
    save_result(
        "ablation_a3_ratio.txt",
        render_table(
            ["client:server", "visible I/O (s)", "files/snapshot-window", "total procs"],
            [
                [f"{r}:1", result[r]["visible_io"], result[r]["files"], result[r]["total_procs"]]
                for r in ratios
            ],
            title="A3 — client:server ratio sweep (32 clients, Turing)",
        ),
    )
    # Fewer servers => fewer files but more visible I/O; the sweep
    # must show both monotone trends.
    files = [result[r]["files"] for r in ratios]
    assert all(b <= a for a, b in zip(files, files[1:]))
    assert result[ratios[-1]]["visible_io"] > result[ratios[0]]["visible_io"]


def test_buffer_overflow(benchmark, save_result):
    """A4: undersized buffers degrade gracefully (overflow flushes)."""
    result = benchmark.pedantic(run_buffer_size_sweep, rounds=1, iterations=1)
    fractions = sorted(result)
    save_result(
        "ablation_a4_buffer.txt",
        render_table(
            ["buffer (x snapshot share)", "visible I/O (s)", "overflow flushes"],
            [
                [f, result[f]["visible_io"], result[f]["overflow_flushes"]]
                for f in fractions
            ],
            title="A4 — server buffer capacity sweep (16 clients + 2 servers)",
        ),
    )
    tiny, huge = fractions[0], fractions[-1]
    # Undersized buffers must trigger overflow writes and cost more
    # visible time; amply-sized buffers must never overflow.
    assert result[tiny]["overflow_flushes"] > 0
    assert result[huge]["overflow_flushes"] == 0
    assert result[tiny]["visible_io"] > result[huge]["visible_io"]


def test_client_buffering(benchmark, save_result):
    """A5: the full buffer hierarchy shrinks visible I/O further."""
    from repro.bench import run_client_buffering_ablation

    result = benchmark.pedantic(
        run_client_buffering_ablation, rounds=1, iterations=1
    )
    save_result(
        "ablation_a5_client_buffering.txt",
        render_table(
            ["buffering", "visible I/O (s)"],
            [[k, v] for k, v in result.items()],
            title="A5 — client-side buffer level ([13]) on top of server buffering",
        ),
    )
    assert result["client+server"] < result["server_only"] / 3


def test_load_balancing(benchmark, save_result):
    """A6: runtime block migration flattens an imbalanced partition."""
    from repro.bench import run_load_balancing_ablation

    result = benchmark.pedantic(
        run_load_balancing_ablation, rounds=1, iterations=1
    )
    save_result(
        "ablation_a6_load_balancing.txt",
        render_table(
            ["partition", "computation time (s)"],
            [[k, v] for k, v in result.items()],
            title="A6 — dynamic load balancing on an irregular block set",
        ),
    )
    assert result["balanced"] < result["static"]
