"""Benchmark: reproduce Table 1 (§7.1) — Turing computation & I/O times.

Paper rows (seconds):

    compute procs            16      32      64
    computation           846.64  393.05  203.24
    visible I/O Rochdf     51.58   83.28   51.19
    visible I/O T-Rochdf    0.38    0.18    0.11
    visible I/O Rocpanda    2.40    1.48    1.94
    restart Rochdf          5.33    1.93    0.72
    restart Rocpanda       69.9    39.2    18.2

Shape assertions: computation scales with processors while Rochdf's
visible I/O does not; T-Rochdf nearly eliminates visible I/O; Rocpanda
cuts it by >= an order of magnitude and also cuts the file count 8x;
Rocpanda restart costs far more than Rochdf restart, and both shrink
as processors are added.
"""

import pytest

from repro.bench import bench_runs, bench_scale, run_table1

PROC_COUNTS = (16, 32, 64)


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(
        proc_counts=PROC_COUNTS,
        nruns=bench_runs(3),
        scale=bench_scale(1.0),
    )


def test_table1(benchmark, table1_result, save_result):
    benchmark.pedantic(lambda: table1_result, rounds=1, iterations=1)
    save_result("table1.txt", table1_result.render())

    res = table1_result
    comp = [res.value("computation", n) for n in PROC_COUNTS]
    rochdf = [res.value("rochdf", n) for n in PROC_COUNTS]
    trochdf = [res.value("trochdf", n) for n in PROC_COUNTS]
    rocpanda = [res.value("rocpanda", n) for n in PROC_COUNTS]
    r_hdf = [res.value("restart_rochdf", n) for n in PROC_COUNTS]
    r_panda = [res.value("restart_rocpanda", n) for n in PROC_COUNTS]

    # Computation scales well with the number of processors (§7.1).
    assert comp[0] > comp[1] > comp[2]
    assert 1.5 < comp[0] / comp[1] < 2.9
    assert 1.5 < comp[1] / comp[2] < 2.9

    # Rochdf's visible I/O does NOT scale: flat-to-worse across sizes.
    assert max(rochdf) / min(rochdf) < 2.5
    assert min(rochdf) > 10.0

    # T-Rochdf almost eliminates visible I/O and scales with procs.
    assert all(t < 1.0 for t in trochdf)
    assert trochdf[0] > trochdf[2]
    # Paper: Rocpanda reduces visible I/O by a factor between 21 and 55;
    # we accept an order of magnitude or better.
    for base, panda in zip(rochdf, rocpanda):
        assert base / panda > 10.0
    # T-Rochdf visible cost is below Rocpanda's (local memcpy vs sends).
    for threaded, panda in zip(trochdf, rocpanda):
        assert threaded < panda

    # Restart: Rocpanda pays for its big many-dataset files; Rochdf
    # gains read parallelism (§7.1).  Both improve with more procs.
    for cheap, expensive in zip(r_hdf, r_panda):
        assert expensive > 3.0 * cheap
    assert r_hdf[0] > r_hdf[2]
    assert r_panda[0] > r_panda[2]


@pytest.mark.skipif(
    bench_scale(1.0) != 1.0, reason="paper magnitudes need the full-size workload"
)
def test_table1_vs_paper_magnitudes(table1_result):
    """Measured values within ~3x of every paper cell (soft fidelity)."""
    res = table1_result
    for metric, cells in res.paper.items():
        for nprocs, paper_value in cells.items():
            measured = res.value(metric, nprocs)
            ratio = measured / paper_value
            assert 1 / 3.5 < ratio < 3.5, (
                f"{metric}@{nprocs}: measured {measured:.2f}s vs paper "
                f"{paper_value:.2f}s (ratio {ratio:.2f})"
            )
