"""Benchmark: reproduce Fig 3(b) (§7.2) — SMP computation time, Frost.

Paper shape: as the job grows, using all 16 CPUs per node for compute
("16NS") becomes visibly slower than using 15 ("15NS"), because AIX
background work preempts compute and per-timestep synchronization
amplifies the slowest rank.  Dedicating the 16th CPU to a Rocpanda
server ("15S") costs only slightly more than leaving it idle and stays
well below 16NS — the dedicated server CPU absorbs the OS tasks while
also doing the I/O (§4.1: "double effects").
"""

import pytest

from repro.bench import bench_runs, run_fig3b

PROC_COUNTS = (15, 60, 240)


@pytest.fixture(scope="module")
def fig3b_result():
    return run_fig3b(
        proc_counts=PROC_COUNTS,
        nruns=bench_runs(2),
        per_client_bytes=0.25 * 1024 * 1024,
        steps=10,
        step_seconds=20.0,
        snapshot_interval=5,
    )


def test_fig3b(benchmark, fig3b_result, save_result):
    benchmark.pedantic(lambda: fig3b_result, rounds=1, iterations=1)
    save_result("fig3b.txt", fig3b_result.render())

    res = fig3b_result
    v16 = dict(zip(res.proc_counts, res.values("16NS")))
    v15 = dict(zip(res.proc_counts, res.values("15NS")))
    v15s = dict(zip(res.proc_counts, res.values("15S")))
    largest = PROC_COUNTS[-1]

    # At scale, 16 compute ranks per node are visibly slower than 15.
    assert v16[largest] > 1.02 * v15[largest]

    # The gap grows with the number of processors (noise amplification).
    gap_small = v16[PROC_COUNTS[0]] - v15[PROC_COUNTS[0]]
    gap_large = v16[largest] - v15[largest]
    assert gap_large > gap_small

    # 15S: slightly above idle-CPU 15NS, but clearly below 16NS, and
    # even below 16NS * (15/16) adjusted work at scale (the paper's
    # punchline: dedicating the CPU to I/O pays for itself).
    assert v15s[largest] >= 0.995 * v15[largest]
    assert v15s[largest] < v16[largest]
    for n in PROC_COUNTS:
        assert v15s[n] < 1.05 * v16[n]
