#!/usr/bin/env python
"""The SMP placement effect: why dedicating one CPU to I/O pays off.

Reproduces (in miniature) the §4.1/Fig 3(b) observation on a simulated
ASCI Frost: using 15 of a node's 16 CPUs for computation and giving
the 16th to a Rocpanda server is *faster in computation* than using
all 16 CPUs for compute — because AIX background work lands on the
mostly-idle server CPU instead of preempting solvers, and per-timestep
synchronization amplifies whichever rank the noise hits.

Run:  python examples/smp_placement.py
"""

from repro.bench import render_table
from repro.cluster import Machine, frost
from repro.genx import GENxConfig, run_genx, scalability_cylinder
from repro.vmpi import placement


def run_layout(label, nclients, workload, seed):
    machine = Machine(frost(), seed=seed)
    if label == "16NS":
        config = GENxConfig(workload=workload, io_mode="rochdf", prefix="smp")
        result = run_genx(machine, nclients, config, placement=placement.block)
    elif label == "15NS":
        config = GENxConfig(workload=workload, io_mode="rochdf", prefix="smp")
        result = run_genx(
            machine, nclients, config, placement=placement.leave_one_idle
        )
    else:  # 15S
        nservers = nclients // 15
        config = GENxConfig(
            workload=workload, io_mode="rocpanda", nservers=nservers, prefix="smp"
        )
        result = run_genx(
            machine, nclients + nservers, config, placement=placement.block
        )
    return result


def main():
    nclients = 120  # 8 nodes at 15/node
    workload = scalability_cylinder(
        per_client_bytes=256 * 1024,
        steps=10,
        snapshot_interval=5,
        nominal_step_seconds=12.0,
    )

    rows = []
    for label in ("16NS", "15NS", "15S"):
        samples = [
            run_layout(label, nclients, workload, seed).computation_time
            for seed in (1, 2, 3)
        ]
        rows.append([label, sum(samples) / len(samples), min(samples), max(samples)])

    print(
        render_table(
            ["layout", "mean comp time (s)", "min", "max"],
            rows,
            title=f"Computation time, {nclients} compute procs on simulated Frost",
        )
    )
    mean = {row[0]: row[1] for row in rows}
    print()
    print(f"16NS vs 15NS overhead : {100 * (mean['16NS'] / mean['15NS'] - 1):+.2f}%")
    print(f"15S  vs 15NS overhead : {100 * (mean['15S'] / mean['15NS'] - 1):+.2f}%")
    print()
    print("Dedicating the 16th CPU to a Rocpanda server keeps computation")
    print("nearly as fast as leaving it idle — while also doing all the I/O.")
    print('That is the paper\'s "double effect" (§4.1).')


if __name__ == "__main__":
    main()
