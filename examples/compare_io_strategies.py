#!/usr/bin/env python
"""Compare the three I/O services on the same workload (mini Table 1).

Runs an identical multi-component simulation under:

* Rochdf    — every compute process writes its own HDF file (blocking);
* T-Rochdf  — same, but a background I/O thread hides the writes;
* Rocpanda  — dedicated I/O servers with active buffering.

and prints a side-by-side comparison of computation time, visible I/O
time, and the number of files generated — the trade-off space of §7.1.

Run:  python examples/compare_io_strategies.py
"""

from repro.bench import render_table
from repro.cluster import Machine, turing
from repro.genx import GENxConfig, lab_scale_motor, run_genx

NCLIENTS = 16
NSERVERS = 2


def run_one(io_mode: str, workload):
    nprocs = NCLIENTS + (NSERVERS if io_mode == "rocpanda" else 0)
    config = GENxConfig(
        workload=workload,
        io_mode=io_mode,
        nservers=NSERVERS if io_mode == "rocpanda" else 0,
        prefix=f"cmp_{io_mode}",
    )
    machine = Machine(turing(), seed=7)
    result = run_genx(machine, nprocs, config)
    return {
        "mode": io_mode,
        "procs": nprocs,
        "computation (s)": result.computation_time,
        "visible I/O (s)": result.visible_io_time,
        "files": result.files_created,
        "hidden": f"{100 * (1 - result.visible_io_time / max(result.visible_io_time + result.computation_time, 1e-12)):.1f}%",
    }


def main():
    workload = lab_scale_motor(
        scale=0.1,
        nblocks_fluid=64,
        nblocks_solid=32,
        steps=40,
        snapshot_interval=10,
    )
    rows = [run_one(mode, workload) for mode in ("rochdf", "trochdf", "rocpanda")]
    headers = list(rows[0].keys())
    print(
        render_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=(
                "Same simulation, three I/O services "
                f"({NCLIENTS} compute procs, 5 snapshots, simulated Turing)"
            ),
        )
    )
    print()
    print("Reading the table:")
    print(" * Rochdf pays the full (non-scaling) NFS write cost in-line.")
    print(" * T-Rochdf's visible cost is just a local memcpy — the I/O")
    print("   thread writes while the solvers compute — but it leaves one")
    print("   file per process per window per snapshot.")
    print(" * Rocpanda also hides the cost AND cuts the file count by the")
    print("   client:server ratio; that is why production runs use it.")


if __name__ == "__main__":
    main()
