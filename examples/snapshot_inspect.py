#!/usr/bin/env python
"""A miniature "Rocketeer": post-process snapshot files.

CSAR's visualization tool Rocketeer reads the HDF snapshot files
directly (§3.1, Fig 1(b)).  This example plays that role using the
:mod:`repro.rocketeer` package: it runs a short simulation with
collective I/O, then — acting as a *separate post-processing tool*
with no access to the simulation's memory — reassembles the per-block
files into global fields, prints axial profiles and a time-series
report, and checks the physics is self-consistent across blocks.

Run:  python examples/snapshot_inspect.py
"""

import numpy as np

from repro.cluster import Machine, turing
from repro.genx import GENxConfig, lab_scale_motor, run_genx
from repro.rocketeer import SnapshotSeries, render_profile, summary_report
from repro.util import fmt_bytes


def main():
    workload = lab_scale_motor(
        scale=0.04,
        nblocks_fluid=32,
        nblocks_solid=16,
        steps=30,
        snapshot_interval=15,
    )
    result = run_genx(
        Machine(turing(), seed=3),
        10,  # 8 clients + 2 servers
        GENxConfig(workload=workload, io_mode="rocpanda", nservers=2, prefix="viz"),
    )
    disk = result.machine.disk
    print(f"simulation wrote {disk.nfiles} files, {fmt_bytes(disk.total_bytes)} total")
    print()

    series = SnapshotSeries(disk, "viz")
    print(
        summary_report(
            series,
            {
                "rocflo": ["pressure", "temperature"],
                "rocfrac": ["traction"],
                "rocburn": ["burn_distance", "surf_temp"],
            },
        )
    )

    print("\naxial profiles at the final snapshot (z-binned block means):")
    last = series.last()
    for window, attr in (
        ("rocflo", "pressure"),
        ("rocflo", "temperature"),
        ("rocburn", "burn_distance"),
    ):
        print("  " + render_profile(last, window, attr))

    # Track the burn front like a time-series visualization would.
    def ignited_fraction(snapshot):
        ig = snapshot.field_values("rocburn", "ignited")
        return float(ig.mean())

    f0 = ignited_fraction(series.first())
    f1 = ignited_fraction(series.last())
    print(f"\nburn front: {100 * f0:.1f}% of surface ignited at step 0, "
          f"{100 * f1:.1f}% at step {series.steps[-1]}")
    assert f1 >= f0, "flame must spread monotonically"
    print("flame-spread check passed — data is self-consistent across blocks")


if __name__ == "__main__":
    main()
