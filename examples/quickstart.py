#!/usr/bin/env python
"""Quickstart: run the rocket simulation with collective parallel I/O.

Launches a small GENx job on a simulated Turing cluster — 16 compute
clients plus 2 dedicated Rocpanda I/O servers — takes periodic
snapshots through the uniform Roccom I/O interface, and prints the
timing breakdown that the paper's evaluation revolves around: the
computation time vs the I/O cost that is actually *visible* to the
simulation.

Run:  python examples/quickstart.py
"""

from repro.cluster import Machine, turing
from repro.genx import GENxConfig, lab_scale_motor, run_genx
from repro.util import fmt_bytes, fmt_time


def main():
    # A scaled-down lab-scale motor: ~3 MB per snapshot, 40 timesteps,
    # snapshot every 10 steps (plus the initial one).
    workload = lab_scale_motor(
        scale=0.05,
        nblocks_fluid=48,
        nblocks_solid=24,
        steps=40,
        snapshot_interval=10,
    )
    config = GENxConfig(
        workload=workload,
        io_mode="rocpanda",
        nservers=2,
        prefix="quickstart",
    )

    machine = Machine(turing(), seed=42)
    print(f"machine: {machine}")
    print("launching 18 processes: 16 compute clients + 2 I/O servers ...")
    result = run_genx(machine, nprocs=18, config=config)

    snapshots = result.clients[0].rocman.snapshots
    print()
    print(f"timesteps computed     : {result.clients[0].rocman.steps}")
    print(f"snapshots taken        : {snapshots}")
    print(f"data per snapshot      : {fmt_bytes(result.bytes_written_per_snapshot)}")
    print(f"computation time       : {fmt_time(result.computation_time)} (virtual)")
    print(f"visible I/O time       : {fmt_time(result.visible_io_time)} (virtual)")
    print(
        "I/O cost hidden        : "
        f"{100 * (1 - result.visible_io_time / (result.visible_io_time + result.computation_time)):.1f}%"
        " of the run is computation"
    )
    print(f"files on the shared FS : {result.machine.disk.nfiles}")
    print()
    print("snapshot files (one per window per server per snapshot):")
    for path in result.machine.disk.listdir("quickstart")[:6]:
        vfile = result.machine.disk.open(path)
        print(f"  {path:<45s} {fmt_bytes(vfile.size)}")
    more = result.machine.disk.nfiles - 6
    if more > 0:
        print(f"  ... and {more} more")

    server = result.servers[0].stats
    print()
    print("server 0 active-buffering stats:")
    print(f"  blocks received  : {server.blocks_received}")
    print(f"  peak buffer use  : {fmt_bytes(server.peak_buffered_bytes)}")
    print(f"  background write : {fmt_time(server.background_write_time)}")
    print(f"  overflow flushes : {server.overflow_flushes}")


if __name__ == "__main__":
    main()
