#!/usr/bin/env python
"""Plug a brand-new physics module into the framework.

GENx "allows users to plug in different modules for each utility
service and/or physics computation" (§3.1).  This example writes a new
solver from scratch — a thermal-diffusion module — registers its data
through Roccom windows/panes, runs it in an SPMD job with T-Rochdf
doing overlapped snapshots, and reads the output back.

It exercises exactly the integration surface a CSAR scientist would
use: declare attributes, register panes, implement a kernel, and call
the uniform OUT.write_attribute interface — without knowing anything
about the I/O implementation underneath.

Run:  python examples/custom_module.py
"""

import numpy as np

from repro.cluster import Machine, testbox
from repro.genx import cylinder_blocks
from repro.genx.physics import PhysicsModule
from repro.io import TRochdfModule, list_snapshot_files
from repro.roccom import AttributeSpec, Roccom
from repro.shdf import decode_file
from repro.vmpi import run_spmd


class RocTherm(PhysicsModule):
    """A user-written module: explicit heat diffusion on mesh blocks."""

    window_name = "RocTherm"
    name = "roctherm"
    cost_per_cell = 5.0e-5

    def attribute_specs(self):
        return [
            AttributeSpec("temperature", "element", unit="K"),
            AttributeSpec("heat_flux", "element", unit="W/m^2"),
        ]

    def nodes_per_elem(self):
        return 4

    def init_fields(self, window, block, rng):
        ne = block.nelems
        temp = np.full(ne, 300.0)
        temp[: ne // 4] = 900.0  # hot end
        window.set_array("temperature", block.block_id, temp)
        window.set_array("heat_flux", block.block_id, np.zeros(ne))

    def kernel(self, window, block, dt, step):
        bid = block.block_id
        T = window.get_array("temperature", bid)
        q = window.get_array("heat_flux", bid)
        lap = np.roll(T, 1) - 2 * T + np.roll(T, -1)
        q[:] = -0.5 * (np.roll(T, -1) - T)
        T += 0.2 * lap


def main_factory(records):
    def main(ctx):
        com = Roccom(ctx)
        com.load_module(TRochdfModule(ctx))

        module = RocTherm()
        specs = cylinder_blocks(
            4, 2000, kind_mix=("unstructured",), id_base=ctx.rank * 10
        )
        module.setup(com, specs, np.random.default_rng(ctx.rank))

        for step in range(1, 31):
            yield from module.advance(ctx, dt=1e-3, step=step)
            if step % 10 == 0:
                yield from com.call_function(
                    "OUT.write_attribute",
                    "RocTherm",
                    ["temperature", "heat_flux"],
                    f"therm_{step:04d}",
                    file_attrs={"time_step": step},
                )
        yield from com.call_function("OUT.sync")

        window = com.window("RocTherm")
        import numpy as _np

        all_T = _np.concatenate(
            [window.get_array("temperature", b.block_id) for b in module.blocks]
        )
        records[ctx.rank] = {
            "panes": window.pane_ids(),
            "max_T": float(all_T.max()),
            "cold_end_T": float(all_T[-len(all_T) // 4 :].mean()),
            "visible_io": com.module("trochdf").stats.visible_write_time,
        }

    return main


def main():
    records = {}
    machine = Machine(testbox(nnodes=2, cpus_per_node=2), seed=5)
    result = run_spmd(machine, 4, main_factory(records))

    print("RocTherm ran on 4 processes with T-Rochdf snapshots:")
    for rank in sorted(records):
        r = records[rank]
        print(
            f"  rank {rank}: panes {r['panes']}, final max T "
            f"{r['max_T']:.1f} K, visible I/O {r['visible_io'] * 1e3:.2f} ms"
        )
    print(f"  total virtual run time: {result.wall_time:.2f} s")

    files = list_snapshot_files(machine.disk, "therm_0030")
    image = decode_file(machine.disk.open(files[0]).read())
    print(f"\nsnapshot {files[0]}: {len(image)} datasets")
    for name in image.names()[:4]:
        ds = image.get(name)
        print(f"  {name:<32s} {ds.dtype} {list(ds.shape)} unit={ds.attrs['unit']!r}")
    # Heat must have flowed from the hot quarter into the cold end.
    assert all(r["cold_end_T"] > 300.0 for r in records.values()), (
        "diffusion must warm the cold end"
    )
    assert all(r["max_T"] <= 900.0 for r in records.values())
    print("\ndiffusion verified: heat spread from the hot end into the cold end")


if __name__ == "__main__":
    main()
