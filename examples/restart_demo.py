#!/usr/bin/env python
"""Checkpoint/restart round trip — including a changed server count.

Demonstrates the paper's §4.1 restart path:

1. run the simulation with Rocpanda (6 clients + 2 servers), writing
   snapshots that double as checkpoints;
2. restart a *new* run from the checkpoint using **3** servers — the
   architecture allows restarting "with a different number of servers
   than used in the previous run where the restart files were written";
3. verify bit-exact restoration: the restarted run's first snapshot
   equals the checkpoint it restored from;
4. persist the virtual disk to a real directory so the files can be
   inspected (they are ordinary SHDF containers).

Run:  python examples/restart_demo.py
"""

import os
import tempfile

import numpy as np

from repro.cluster import Machine, turing
from repro.genx import GENxConfig, lab_scale_motor, run_genx
from repro.shdf import decode_file


def main():
    workload = lab_scale_motor(
        scale=0.03,
        nblocks_fluid=24,
        nblocks_solid=12,
        steps=12,
        snapshot_interval=6,
    )

    # --- 1. original run: 6 clients + 2 servers -----------------------
    first = run_genx(
        Machine(turing(), seed=11),
        8,
        GENxConfig(workload=workload, io_mode="rocpanda", nservers=2, prefix="run1"),
    )
    disk = first.machine.disk
    print(f"original run  : {len(first.clients)} clients, 2 servers")
    print(f"  checkpoint files: {disk.listdir('run1_000012')}")

    # --- 2. restart with a DIFFERENT server count (3) ------------------
    second = run_genx(
        Machine(turing(), seed=22, disk=disk),
        9,  # 6 clients + 3 servers
        GENxConfig(
            workload=workload,
            io_mode="rocpanda",
            nservers=3,
            prefix="run2",
            restart_step=12,
            restart_prefix="run1",
        ),
    )
    print(f"restarted run : {len(second.clients)} clients, 3 servers")
    print(f"  restart latency: {second.restart_time:.3f} s (virtual)")

    # --- 3. bit-exact verification --------------------------------------
    checkpoint = decode_file(disk.open("run1_000012_rocflo_s0000.shdf").read())
    # The restarted run wrote its step-0 snapshot with 3 servers; gather
    # all its pieces and compare dataset by dataset.
    restored = {}
    for path in disk.listdir("run2_000000_rocflo"):
        for ds in decode_file(disk.open(path).read()):
            restored[ds.name] = ds
    mismatches = 0
    for path in disk.listdir("run1_000012_rocflo"):
        for ds in decode_file(disk.open(path).read()):
            if not np.array_equal(ds.data, restored[ds.name].data, equal_nan=True):
                mismatches += 1
    print(f"  datasets compared : {len(restored)}")
    print(f"  mismatches        : {mismatches}")
    assert mismatches == 0, "restart corrupted state!"
    print("  restart is bit-exact across a 2-server -> 3-server change")

    # --- 4. persist to a real directory ----------------------------------
    outdir = tempfile.mkdtemp(prefix="genx_snapshots_")
    written = disk.persist(outdir)
    print(f"\npersisted {len(written)} files under {outdir}")
    sample = written[0]
    print(f"  e.g. {sample} ({os.path.getsize(sample)} real bytes)")
    image = decode_file(open(sample, "rb").read())
    print(f"  decodes to {len(image)} datasets; file attrs: {image.attrs}")


if __name__ == "__main__":
    main()
