"""Per-rank message mailbox with MPI matching semantics.

Envelopes arrive in delivery order; receives and probes match on
``(source, tag)`` with wildcards, scanning arrivals in order (MPI's
non-overtaking rule per (src, dst, tag) is preserved because senders
deliver in program order and matching scans FIFO).

``recv`` consumes the matched envelope; ``probe`` observes it without
consuming — exactly the distinction Rocpanda's server loop relies on
(probe for new requests between writing buffered blocks, §6.1).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..des import Environment, Event
from .datatypes import ANY_SOURCE, ANY_TAG, Envelope

__all__ = ["Mailbox"]


class _Waiter:
    __slots__ = ("source", "tag", "event", "consume")

    def __init__(self, source: int, tag: int, event: Event, consume: bool):
        self.source = source
        self.tag = tag
        self.event = event
        self.consume = consume


class Mailbox:
    """Incoming-message queue of one rank within one communicator."""

    def __init__(self, env: Environment):
        self.env = env
        self.items: List[Envelope] = []
        self._waiters: List[_Waiter] = []

    # -- delivery --------------------------------------------------------
    def deliver(self, envelope: Envelope) -> None:
        self.items.append(envelope)
        self._match_waiters()

    # -- blocking queries -------------------------------------------------
    def get_matching(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Event firing with the first matching envelope (consumed)."""
        event = Event(self.env)
        self._waiters.append(_Waiter(source, tag, event, consume=True))
        self._match_waiters()
        return event

    def peek_matching(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Event firing with the first matching envelope (left queued)."""
        event = Event(self.env)
        self._waiters.append(_Waiter(source, tag, event, consume=False))
        self._match_waiters()
        return event

    # -- immediate queries --------------------------------------------------
    def find(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Envelope]:
        """First matching envelope without consuming, or None."""
        for envelope in self.items:
            if envelope.matches(source, tag):
                return envelope
        return None

    def take(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Envelope]:
        """Remove and return the first matching envelope, or None."""
        for i, envelope in enumerate(self.items):
            if envelope.matches(source, tag):
                del self.items[i]
                return envelope
        return None

    def __len__(self) -> int:
        return len(self.items)

    # -- internals ----------------------------------------------------------
    def _match_waiters(self) -> None:
        # Probes never consume, so satisfy them all first; then serve
        # consuming waiters FIFO, each taking a distinct envelope.
        progress = True
        while progress:
            progress = False
            for waiter in list(self._waiters):
                if waiter.event.triggered:
                    self._waiters.remove(waiter)
                    continue
                if waiter.consume:
                    envelope = self.take(waiter.source, waiter.tag)
                else:
                    envelope = self.find(waiter.source, waiter.tag)
                if envelope is not None:
                    self._waiters.remove(waiter)
                    waiter.event.succeed(envelope)
                    progress = True
