"""Per-rank message mailbox with MPI matching semantics.

Envelopes arrive in delivery order; receives and probes match on
``(source, tag)`` with wildcards, always returning the *oldest*
matching arrival (MPI's non-overtaking rule per (src, dst, tag) is
preserved because senders deliver in program order and matching is
FIFO per key).

``recv`` consumes the matched envelope; ``probe`` observes it without
consuming — exactly the distinction Rocpanda's server loop relies on
(probe for new requests between writing buffered blocks, §6.1).

Two implementations share this contract:

* :class:`Mailbox` — the production matcher.  Envelopes are indexed
  into per-``(source, tag)`` deques stamped with a global arrival
  counter; exact-match queries pop a deque head in O(1), wildcard
  queries compare the heads of the (few) live keys instead of scanning
  every queued envelope.  Deliveries walk the pending-waiter list once
  (the fixpoint invariant below) instead of rescanning
  waiters x items.
* :class:`LinearScanMailbox` — the original list-scan matcher, kept
  verbatim as the executable specification.  The property tests drive
  both with identical random deliver/recv/probe sequences and assert
  identical match order; the perf harness reports the speedup.

Invariant (both implementations): after every public call returns, no
pending waiter matches any queued envelope — so a new delivery can only
be claimed by already-pending waiters, and a new waiter can only match
already-queued envelopes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..des import Environment, Event
from ..des.core import _PENDING
from .datatypes import ANY_SOURCE, ANY_TAG, Envelope

__all__ = ["Mailbox", "LinearScanMailbox"]


class _Waiter:
    __slots__ = ("source", "tag", "event", "consume")

    def __init__(self, source: int, tag: int, event: Event, consume: bool):
        self.source = source
        self.tag = tag
        self.event = event
        self.consume = consume


class Mailbox:
    """Incoming-message queue of one rank within one communicator.

    Indexed matcher: per-``(source, tag)`` arrival deques plus a global
    arrival counter give O(1) exact matches and O(live keys) wildcard
    matches while preserving exact FIFO-by-arrival semantics.
    """

    __slots__ = ("env", "_queues", "_waiters", "_arrivals", "_nitems",
                 "_event_pool")

    def __init__(self, env: Environment):
        self.env = env
        #: Freelist of processed get_matching events (one Event is
        #: allocated per receive otherwise; the plain-recv hot path
        #: recycles its event right after consuming the envelope).
        self._event_pool: List[Event] = []
        #: (source, tag) -> deque of (arrival_no, envelope); a key is
        #: removed the moment its deque empties, so the live-key count
        #: tracks the number of distinct pending (source, tag) pairs.
        self._queues: Dict[Tuple[int, int], deque] = {}
        self._waiters: List[_Waiter] = []
        self._arrivals = 0
        self._nitems = 0

    # -- delivery --------------------------------------------------------
    def deliver(self, envelope: Envelope) -> None:
        # By the fixpoint invariant only this envelope can satisfy a
        # pending waiter, so one ordered walk of the waiter list
        # replaces the reference implementation's rescan loop.
        src = envelope.src
        tag = envelope.tag
        waiters = self._waiters
        if waiters:
            consumed = False
            keep: List[_Waiter] = []
            for waiter in waiters:
                if waiter.event.triggered:
                    continue
                wsource = waiter.source
                wtag = waiter.tag
                if (
                    not consumed
                    and (wsource == ANY_SOURCE or wsource == src)
                    and (wtag == ANY_TAG or wtag == tag)
                ):
                    waiter.event.succeed(envelope)
                    if waiter.consume:
                        consumed = True
                    continue
                keep.append(waiter)
            self._waiters = keep
            if consumed:
                return
        self._arrivals += 1
        queue = self._queues.get((src, tag))
        if queue is None:
            queue = self._queues[(src, tag)] = deque()
        queue.append((self._arrivals, envelope))
        self._nitems += 1

    # -- blocking queries -------------------------------------------------
    def get_matching(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Event firing with the first matching envelope (consumed)."""
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._value = _PENDING
            event._ok = True
            event._defused = False
            event._cancelled = False
        else:
            event = Event(self.env)
        envelope = self.take(source, tag)
        if envelope is not None:
            event.succeed(envelope)
        else:
            self._waiters.append(_Waiter(source, tag, event, consume=True))
        return event

    def recycle(self, event: Event) -> None:
        """Return a *processed* :meth:`get_matching` event to the pool.

        Only the receive path that created the event and observed it
        fire may recycle it; unprocessed (e.g. timed-out-and-cancelled)
        events are refused so a pending waiter can never be reused.
        """
        if event.callbacks is None and not event._cancelled:
            self._event_pool.append(event)

    def peek_matching(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Event firing with the first matching envelope (left queued)."""
        event = Event(self.env)
        envelope = self.find(source, tag)
        if envelope is not None:
            event.succeed(envelope)
        else:
            self._waiters.append(_Waiter(source, tag, event, consume=False))
        return event

    # -- immediate queries --------------------------------------------------
    def _match_key(self, source: int, tag: int) -> Optional[Tuple[int, int]]:
        """Key holding the oldest matching envelope, or None."""
        queues = self._queues
        if source != ANY_SOURCE and tag != ANY_TAG:
            return (source, tag) if (source, tag) in queues else None
        best_key = None
        best_arrival = None
        for key, queue in queues.items():
            if source != ANY_SOURCE and key[0] != source:
                continue
            if tag != ANY_TAG and key[1] != tag:
                continue
            arrival = queue[0][0]
            if best_arrival is None or arrival < best_arrival:
                best_arrival = arrival
                best_key = key
        return best_key

    def find(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Envelope]:
        """First matching envelope without consuming, or None."""
        key = self._match_key(source, tag)
        if key is None:
            return None
        return self._queues[key][0][1]

    def take(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Envelope]:
        """Remove and return the first matching envelope, or None."""
        key = self._match_key(source, tag)
        if key is None:
            return None
        queue = self._queues[key]
        _, envelope = queue.popleft()
        if not queue:
            del self._queues[key]
        self._nitems -= 1
        return envelope

    # -- cancellation (timeout support) -----------------------------------
    def retract(self, envelope: Envelope) -> bool:
        """Remove a specific queued envelope; True if it was still queued.

        A sender whose rendezvous timed out uses this to withdraw the
        announcement — success proves the receiver never matched it, so
        resending cannot duplicate the message.
        """
        key = (envelope.src, envelope.tag)
        queue = self._queues.get(key)
        if queue is None:
            return False
        for i, (_, queued) in enumerate(queue):
            if queued is envelope:
                del queue[i]
                if not queue:
                    del self._queues[key]
                self._nitems -= 1
                return True
        return False

    def cancel_waiter(self, event: Event) -> bool:
        """Drop the pending waiter registered under ``event``.

        A receiver abandoning a timed-out ``get_matching`` event must
        cancel it — an orphaned consume-waiter would silently steal the
        next matching delivery.
        """
        for i, waiter in enumerate(self._waiters):
            if waiter.event is event:
                del self._waiters[i]
                return True
        return False

    @property
    def items(self) -> List[Envelope]:
        """Queued envelopes in arrival order (diagnostics/compat view)."""
        merged = []
        for queue in self._queues.values():
            merged.extend(queue)
        merged.sort()
        return [envelope for _, envelope in merged]

    def __len__(self) -> int:
        return self._nitems


class LinearScanMailbox:
    """Reference matcher: ordered list + linear scans (original code).

    Kept as the executable specification of the matching semantics; see
    the module docstring.  Do not optimize this class.
    """

    def __init__(self, env: Environment):
        self.env = env
        self.items: List[Envelope] = []
        self._waiters: List[_Waiter] = []

    # -- delivery --------------------------------------------------------
    def deliver(self, envelope: Envelope) -> None:
        self.items.append(envelope)
        self._match_waiters()

    # -- blocking queries -------------------------------------------------
    def get_matching(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Event firing with the first matching envelope (consumed)."""
        event = Event(self.env)
        self._waiters.append(_Waiter(source, tag, event, consume=True))
        self._match_waiters()
        return event

    def peek_matching(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Event firing with the first matching envelope (left queued)."""
        event = Event(self.env)
        self._waiters.append(_Waiter(source, tag, event, consume=False))
        self._match_waiters()
        return event

    # -- immediate queries --------------------------------------------------
    def find(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Envelope]:
        """First matching envelope without consuming, or None."""
        for envelope in self.items:
            if envelope.matches(source, tag):
                return envelope
        return None

    def take(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Envelope]:
        """Remove and return the first matching envelope, or None."""
        for i, envelope in enumerate(self.items):
            if envelope.matches(source, tag):
                del self.items[i]
                return envelope
        return None

    # -- cancellation (timeout support) -----------------------------------
    def retract(self, envelope: Envelope) -> bool:
        """Remove a specific queued envelope; True if it was still queued."""
        for i, item in enumerate(self.items):
            if item is envelope:
                del self.items[i]
                return True
        return False

    def cancel_waiter(self, event: Event) -> bool:
        """Drop the pending waiter registered under ``event``."""
        for waiter in self._waiters:
            if waiter.event is event:
                self._waiters.remove(waiter)
                return True
        return False

    def recycle(self, event: Event) -> None:
        """Spec matcher never pools events (kept verbatim-simple)."""

    def __len__(self) -> int:
        return len(self.items)

    # -- internals ----------------------------------------------------------
    def _match_waiters(self) -> None:
        # Probes never consume, so satisfy them all first; then serve
        # consuming waiters FIFO, each taking a distinct envelope.
        progress = True
        while progress:
            progress = False
            for waiter in list(self._waiters):
                if waiter.event.triggered:
                    self._waiters.remove(waiter)
                    continue
                if waiter.consume:
                    envelope = self.take(waiter.source, waiter.tag)
                else:
                    envelope = self.find(waiter.source, waiter.tag)
                if envelope is not None:
                    self._waiters.remove(waiter)
                    waiter.event.succeed(envelope)
                    progress = True
