"""Communicators: point-to-point messaging with eager/rendezvous protocols.

All blocking calls are generators driven by the owning rank's DES
process (``yield from comm.send(...)``).  Timing model per message:

* sender software overhead (``NetworkSpec.sw_overhead``);
* **eager** (size <= eager_threshold): the message is buffered and
  travels asynchronously; the send returns after the overhead.
* **rendezvous**: the sender posts a ready-to-send notice (one control
  latency), then blocks until the receiver matches it, answers with a
  clear-to-send (one control latency) and pulls the payload through the
  network (latency + size/bandwidth, queuing on the destination NIC).

This reproduces the back-pressure that matters for Rocpanda: a client
cannot complete a large send while its I/O server is busy elsewhere —
which is exactly why the servers' probe-between-writes policy (§6.1)
keeps client-visible time low.

Collectives come in two selectable algorithm families
(``Comm.collective_algo``):

* ``"tree"`` (default) — binomial trees rooted at the caller's root:
  O(log P) communication rounds per collective, with aggregated
  payloads carried as explicit ``(comm_rank, obj)`` pairs so placement
  stays rank-ordered for arbitrary roots and non-contiguous
  sub-communicators.  ``alltoall`` runs flat pairwise rounds (send to
  ``rank+r``, receive from ``rank-r``) instead of spawning one DES
  process per destination.
* ``"linear"`` — the original O(P)-at-the-root loops, kept verbatim as
  the executable specification; property tests prove both families
  payload-identical.

Tag space: user tags live in ``[0, _COLL_TAG_BASE)``; collectives use
an internal rotating window above the base.  Public point-to-point
calls validate tags eagerly and raise :class:`MPIError` on a reserved
tag, so application traffic can never cross-match collective traffic.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..des import Environment, Event
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    MODE_EAGER,
    MODE_RNDV,
    MPIError,
    Status,
    make_envelope,
    payload_nbytes,
    release_envelope,
)

__all__ = ["Comm", "Request", "SendStream"]

#: Base of the internal tag space reserved for collectives.  User tags
#: must satisfy ``0 <= tag < _COLL_TAG_BASE``.
_COLL_TAG_BASE = 1 << 20
#: Width of the rotating collective-tag window above the base.  The
#: per-communicator sequence wraps inside it, so an arbitrarily long
#: run never walks the tag into unbounded integers (two collectives
#: 2^20 calls apart reusing a tag cannot be simultaneously in flight —
#: collectives are globally ordered per communicator).
_COLL_TAG_SPAN = 1 << 20


def _check_send_tag(tag: int) -> None:
    """Reject reserved/negative tags on the send side (MPI-style)."""
    if not 0 <= tag < _COLL_TAG_BASE:
        raise MPIError(
            f"tag {tag} outside the application tag range "
            f"[0, {_COLL_TAG_BASE}); tags >= {_COLL_TAG_BASE} are "
            f"reserved for collectives"
        )


def _check_recv_tag(tag: int) -> None:
    """Reject reserved tags on the receive side (ANY_TAG allowed)."""
    if tag != ANY_TAG and not 0 <= tag < _COLL_TAG_BASE:
        raise MPIError(
            f"tag {tag} outside the application tag range "
            f"[0, {_COLL_TAG_BASE}); tags >= {_COLL_TAG_BASE} are "
            f"reserved for collectives"
        )


class Request:
    """Handle for a non-blocking operation (isend/irecv)."""

    def __init__(self, env: Environment):
        self._event = Event(env)

    @property
    def complete(self) -> bool:
        return self._event.triggered

    def wait(self):
        """Generator: block until the operation completes; returns its value."""
        value = yield self._event
        return value

    def test(self) -> bool:
        return self._event.triggered


class Comm:
    """A communicator handle, bound to one rank.

    Each rank holds its own :class:`Comm` object for a given
    communicator id (mirroring how MPI communicators behave inside an
    SPMD program).
    """

    #: Collective algorithm family: ``"tree"`` (binomial, O(log P)
    #: rounds — the default) or ``"linear"`` (the original O(P) loops,
    #: kept as executable spec).  Override per instance to compare;
    #: sub-communicators created by :meth:`split` inherit the setting.
    collective_algo = "tree"

    def __init__(self, job, comm_id: int, group: Tuple[int, ...], rank: int):
        self.job = job
        self.id = comm_id
        #: Global (launcher) ranks of the members, indexed by comm rank.
        self.group = tuple(group)
        #: This process's rank within the communicator.
        self.rank = rank
        self._coll_seq = 0
        self._send_seq = 0
        self._recorder = getattr(job, "recorder", None)
        #: Lazy caches for per-message lookups (comm rank -> Node /
        #: Mailbox); both mappings are stable for the job's lifetime.
        #: Array-backed: comm ranks are dense, so a flat list beats a
        #: dict hash per message on the hot path.
        self._node_cache = [None] * len(self.group)
        self._mailbox_cache = [None] * len(self.group)

    # -- introspection ----------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def env(self) -> Environment:
        return self.job.env

    def global_rank(self, rank: Optional[int] = None) -> int:
        return self.group[self.rank if rank is None else rank]

    def _node(self, rank: int):
        node = self._node_cache[rank]
        if node is None:
            node = self._node_cache[rank] = self.job.context(self.group[rank]).node
        return node

    def _mailbox(self, rank: int):
        box = self._mailbox_cache[rank]
        if box is None:
            box = self._mailbox_cache[rank] = self.job.mailbox(self.id, self.group[rank])
        return box

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.size:
            raise MPIError(f"{what} rank {rank} out of range for size {self.size}")

    # -- point-to-point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0):
        """Blocking send of ``obj`` to comm rank ``dest`` (generator).

        Raises :class:`MPIError` eagerly for tags in the reserved
        collective range (see module docstring).
        """
        _check_send_tag(tag)
        return self._send(obj, dest, tag)

    def _send(self, obj: Any, dest: int, tag: int = 0):
        """Generator: blocking send, no tag validation (internal/collective)."""
        self._check_rank(dest, "dest")
        network = self.job.network
        env = self.env
        nbytes = payload_nbytes(obj)
        src_node = self._node(self.rank)
        dst_node = self._node(dest)
        self._send_seq += 1
        envelope = make_envelope(
            self.job.envelope_pool,
            self.id,
            self.rank,
            dest,
            tag,
            obj,
            nbytes,
            MODE_EAGER if network.is_eager(nbytes) else MODE_RNDV,
            self._send_seq,
        )
        recorder = self._recorder
        if recorder is not None:
            recorder.count_send(
                self.global_rank(), self.group[dest], nbytes,
                eager=envelope.mode == MODE_EAGER,
            )
        # Fault-injection filter: one attribute check on the no-fault path.
        fault = None
        if network.fault_filter is not None:
            fault = network.fault_decision(
                self.global_rank(), self.group[dest], tag, nbytes
            )
        yield env.sleep(network.spec.sw_overhead)
        if envelope.mode == MODE_EAGER:
            # Buffered: payload travels on its own; send returns now.
            # The flight rides the network's callback chain — spawning a
            # process per eager message would double the event count.
            mailbox = self._mailbox(dest)
            if fault is not None:
                kind, extra = fault
                if kind == "drop":
                    return  # lost on the wire; the sender cannot tell
                if kind == "duplicate":
                    network.schedule_delivery(
                        src_node, dst_node, nbytes, mailbox, envelope
                    )
                elif kind == "delay":
                    network.schedule_delivery(
                        src_node, dst_node, nbytes, mailbox, envelope,
                        extra_delay=extra,
                    )
                    return
            network.schedule_delivery(
                src_node, dst_node, nbytes, mailbox, envelope
            )
            return
        # Rendezvous: announce, then block until the receiver drains us.
        envelope.done_event = Event(env)
        yield from network.control_message(src_node, dst_node)
        if fault is not None:
            kind, extra = fault
            if kind == "drop":
                # Announcement lost: the receiver never sees the message
                # and this plain send does not detect it (use
                # ``send_with_timeout`` for loss detection).
                return
            if kind == "delay":
                yield env.timeout(extra)
        self._mailbox(dest).deliver(envelope)
        yield envelope.done_event

    def stream(self, dest: int, tag: int = 0) -> "SendStream":
        """Bulk-transfer fast path: a prebound sender to one (dest, tag).

        Returns a :class:`SendStream` whose :meth:`~SendStream.send`
        yields *exactly* the events of :meth:`send` — same envelopes,
        sequence numbers, modes, and timeouts — but with the per-message
        rank checks, node/mailbox cache lookups, and recorder resolution
        hoisted out of the loop.  Batched shipping pushes a whole
        snapshot's blocks through one stream, so the Python cost per
        flight drops while the DES schedule stays bit-identical.
        """
        return SendStream(self, dest, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive (generator); returns ``(payload, Status)``.

        Raises :class:`MPIError` eagerly for tags in the reserved
        collective range (``ANY_TAG`` is allowed).
        """
        _check_recv_tag(tag)
        return self._recv(source, tag)

    def _recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: blocking receive, no tag validation (internal)."""
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        env = self.env
        network = self.job.network
        mailbox = self._mailbox(self.rank)
        get_ev = mailbox.get_matching(source, tag)
        envelope = yield get_ev
        mailbox.recycle(get_ev)
        if envelope.mode == MODE_RNDV:
            src_node = self._node(envelope.src)
            dst_node = self._node(self.rank)
            # Clear-to-send, then pull the payload through the network.
            yield from network.control_message(dst_node, src_node)
            yield from network.transfer(src_node, dst_node, envelope.nbytes)
            envelope.done_event.succeed()
        recorder = self._recorder
        if recorder is not None:
            recorder.count_recv(self.global_rank(), envelope.nbytes)
        yield env.sleep(network.spec.sw_overhead)
        payload = envelope.payload
        status = envelope.status()
        if envelope.mode == MODE_EAGER and network.fault_filter is None:
            # The receiver is the envelope's last holder on the eager
            # path (the sender returned at hand-off); rendezvous
            # envelopes stay unpooled because a timed-out guarded
            # sender may still inspect them after this receive.
            release_envelope(self.job.envelope_pool, envelope)
        return payload, status

    # -- timeout-guarded point-to-point (resilience layer) -----------------
    def send_with_timeout(self, obj: Any, dest: int, tag: int = 0, timeout: float = 0.25):
        """Generator: send with delivery-timeout detection.

        Returns one of:

        * ``"ok"`` — delivered (or eager: handed to the network; eager
          loss is undetectable at the transport and must be covered by a
          higher-level reply timeout);
        * ``"retracted"`` — rendezvous announcement timed out and was
          withdrawn before the receiver matched it: the message was
          *never seen*, so resending (possibly elsewhere) is safe;
        * ``"stuck"`` — timed out but the receiver already consumed the
          announcement (mid-pull, or crashed mid-pull).  The caller must
          decide using its own liveness knowledge; receiver-side
          duplicate suppression makes a resend safe.
        """
        _check_send_tag(tag)
        return self._send_with_timeout(obj, dest, tag, timeout)

    def _send_with_timeout(self, obj: Any, dest: int, tag: int, timeout: float):
        self._check_rank(dest, "dest")
        network = self.job.network
        env = self.env
        nbytes = payload_nbytes(obj)
        src_node = self._node(self.rank)
        dst_node = self._node(dest)
        self._send_seq += 1
        envelope = make_envelope(
            self.job.envelope_pool,
            self.id,
            self.rank,
            dest,
            tag,
            obj,
            nbytes,
            MODE_EAGER if network.is_eager(nbytes) else MODE_RNDV,
            self._send_seq,
        )
        recorder = self._recorder
        if recorder is not None:
            recorder.count_send(
                self.global_rank(), self.group[dest], nbytes,
                eager=envelope.mode == MODE_EAGER,
            )
        fault = None
        if network.fault_filter is not None:
            fault = network.fault_decision(
                self.global_rank(), self.group[dest], tag, nbytes
            )
        yield env.sleep(network.spec.sw_overhead)
        if envelope.mode == MODE_EAGER:
            mailbox = self._mailbox(dest)
            if fault is not None:
                kind, extra = fault
                if kind == "drop":
                    return "ok"
                if kind == "duplicate":
                    network.schedule_delivery(
                        src_node, dst_node, nbytes, mailbox, envelope
                    )
                elif kind == "delay":
                    network.schedule_delivery(
                        src_node, dst_node, nbytes, mailbox, envelope,
                        extra_delay=extra,
                    )
                    return "ok"
            network.schedule_delivery(
                src_node, dst_node, nbytes, mailbox, envelope
            )
            return "ok"
        envelope.done_event = Event(env)
        yield from network.control_message(src_node, dst_node)
        if fault is not None:
            kind, extra = fault
            if kind == "drop":
                # Announcement lost: report it exactly like a timed-out,
                # successfully-retracted send — the receiver never saw it.
                yield env.timeout(timeout)
                return "retracted"
            if kind == "delay":
                yield env.timeout(extra)
        mailbox = self._mailbox(dest)
        mailbox.deliver(envelope)
        guard = env.timeout(timeout)
        yield env.any_of([envelope.done_event, guard])
        if envelope.done_event.triggered:
            # Delivered in time: lazily cancel the still-queued guard so
            # it neither lingers in the depth accounting nor costs a
            # dispatch when its deadline arrives.
            guard.cancel()
            return "ok"
        if mailbox.retract(envelope):
            return "retracted"
        return "stuck"

    def recv_with_timeout(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: float = 0.25
    ):
        """Generator: receive, or return ``None`` after ``timeout``.

        On success returns ``(payload, Status)`` exactly like
        :meth:`recv`.  On timeout the pending match is cancelled so it
        cannot steal a later delivery.
        """
        _check_recv_tag(tag)
        return self._recv_with_timeout(source, tag, timeout)

    def _recv_with_timeout(self, source: int, tag: int, timeout: float):
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        env = self.env
        network = self.job.network
        mailbox = self._mailbox(self.rank)
        get_ev = mailbox.get_matching(source, tag)
        if not get_ev.triggered:
            guard = env.timeout(timeout)
            yield env.any_of([get_ev, guard])
            if not get_ev.triggered:
                mailbox.cancel_waiter(get_ev)
                return None
            guard.cancel()
        envelope = get_ev.value
        if envelope.mode == MODE_RNDV:
            src_node = self._node(envelope.src)
            dst_node = self._node(self.rank)
            yield from network.control_message(dst_node, src_node)
            yield from network.transfer(src_node, dst_node, envelope.nbytes)
            if not envelope.done_event.triggered:
                envelope.done_event.succeed()
        recorder = self._recorder
        if recorder is not None:
            recorder.count_recv(self.global_rank(), envelope.nbytes)
        yield env.sleep(network.spec.sw_overhead)
        return envelope.payload, envelope.status()

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; returns a :class:`Request`."""
        _check_send_tag(tag)
        return self._isend(obj, dest, tag)

    def _isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        request = Request(self.env)

        def _proc():
            yield from self._send(obj, dest, tag)
            request._event.succeed(None)

        self.env.process(_proc(), name=f"isend:{self.rank}->{dest}")
        return request

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; ``wait()`` returns ``(payload, Status)``."""
        _check_recv_tag(tag)
        request = Request(self.env)

        def _proc():
            result = yield from self._recv(source, tag)
            request._event.succeed(result)

        self.env.process(_proc(), name=f"irecv:{self.rank}")
        return request

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: block until a matching message is available.

        Returns its :class:`Status` without consuming the message.
        """
        _check_recv_tag(tag)
        return self._probe(source, tag)

    def _probe(self, source: int, tag: int):
        envelope = yield self._mailbox(self.rank).peek_matching(source, tag)
        return envelope.status()

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Status]:
        """Immediate probe: Status of a matching pending message, or None."""
        _check_recv_tag(tag)
        envelope = self._mailbox(self.rank).find(source, tag)
        return None if envelope is None else envelope.status()

    # -- collectives ---------------------------------------------------------
    def _coll_tag(self) -> int:
        """Internal tag for the next collective call.

        All members must invoke collectives in the same order (standard
        MPI requirement), so the per-rank counter stays aligned.  The
        sequence rotates inside ``_COLL_TAG_SPAN`` so tags stay bounded
        on arbitrarily long runs.
        """
        self._coll_seq = self._coll_seq % _COLL_TAG_SPAN + 1
        return _COLL_TAG_BASE + self._coll_seq

    def barrier(self):
        """Generator: block until every member has entered the barrier."""
        yield from self.gather(None, root=0, _tag=self._coll_tag())
        yield from self.bcast(None, root=0, _tag=self._coll_tag())

    def bcast(self, obj: Any, root: int = 0, _tag: Optional[int] = None):
        """Generator: broadcast ``obj`` from ``root``; returns the object.

        Binomial-tree propagation: latency scales as O(log P).  (The
        tree IS the executable spec here — both algorithm families
        share it.)
        """
        self._check_rank(root, "root")
        tag = self._coll_tag() if _tag is None else _tag
        size = self.size
        if size == 1:
            return obj
        # Rotate so the root is virtual rank 0 (MPICH binomial scheme).
        vrank = (self.rank - root) % size
        mask = 1
        while mask < size:
            if vrank & mask:
                src = (self.rank - mask) % size
                obj, _ = yield from self._recv(source=src, tag=tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vrank + mask < size:
                dst = (self.rank + mask) % size
                yield from self._send(obj, dest=dst, tag=tag)
            mask >>= 1
        return obj

    def gather(self, obj: Any, root: int = 0, _tag: Optional[int] = None):
        """Generator: gather one object per rank to ``root``.

        Returns the list (indexed by comm rank) at the root, else None.
        """
        self._check_rank(root, "root")
        tag = self._coll_tag() if _tag is None else _tag
        if self.size == 1:
            return [obj]
        if self.collective_algo == "tree":
            result = yield from self._gather_tree(obj, root, tag)
        else:
            result = yield from self._gather_linear(obj, root, tag)
        return result

    def _gather_linear(self, obj: Any, root: int, tag: int):
        """Executable spec: O(P) receives at the root, arrival order."""
        if self.rank != root:
            yield from self._send(obj, dest=root, tag=tag)
            return None
        result: List[Any] = [None] * self.size
        result[root] = obj
        # Receive in arrival order (cheaper matching than per-source
        # receives); placement by status keeps rank order in the result.
        for _ in range(self.size - 1):
            payload, status = yield from self._recv(source=ANY_SOURCE, tag=tag)
            result[status.source] = payload
        return result

    def _gather_tree(self, obj: Any, root: int, tag: int):
        """Binomial-tree gather: O(log P) rounds, aggregated payloads.

        Every node accumulates ``(comm_rank, obj)`` pairs from its
        subtree before forwarding them to its parent, so the root can
        place items by explicit rank — identical placement to the
        linear spec for any root and any (non-contiguous) group.
        """
        size = self.size
        rank = self.rank
        vrank = (rank - root) % size
        items: List[Tuple[int, Any]] = [(rank, obj)]
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = (vrank - mask + root) % size
                yield from self._send(items, dest=parent, tag=tag)
                return None
            child_v = vrank + mask
            if child_v < size:
                child = (child_v + root) % size
                payload, _ = yield from self._recv(source=child, tag=tag)
                items.extend(payload)
            mask <<= 1
        result: List[Any] = [None] * size
        for r, payload in items:
            result[r] = payload
        return result

    def scatter(self, objs: Optional[List[Any]], root: int = 0, _tag: Optional[int] = None):
        """Generator: root sends ``objs[i]`` to rank ``i``; returns own item."""
        self._check_rank(root, "root")
        tag = self._coll_tag() if _tag is None else _tag
        if self.rank == root and (objs is None or len(objs) != self.size):
            raise MPIError(
                f"scatter root needs a list of exactly {self.size} items"
            )
        if self.size == 1:
            return objs[0]
        if self.collective_algo == "tree":
            result = yield from self._scatter_tree(objs, root, tag)
        else:
            result = yield from self._scatter_linear(objs, root, tag)
        return result

    def _scatter_linear(self, objs: Optional[List[Any]], root: int, tag: int):
        """Executable spec: O(P) sends from the root."""
        if self.rank == root:
            for dst in range(self.size):
                if dst == root:
                    continue
                yield from self._send(objs[dst], dest=dst, tag=tag)
            return objs[root]
        payload, _ = yield from self._recv(source=root, tag=tag)
        return payload

    def _scatter_tree(self, objs: Optional[List[Any]], root: int, tag: int):
        """Binomial-tree scatter: each node forwards subtree bundles.

        Items travel as ``(virtual_rank, obj)`` pairs; a node at
        virtual rank v (span = lowest set bit of v, or the next power
        of two above ``size`` at the root) peels off the half-spans
        ``[v + span/2, v + span)`` for its children, largest first.
        """
        size = self.size
        rank = self.rank
        vrank = (rank - root) % size
        if vrank == 0:
            held = [(v, objs[(v + root) % size]) for v in range(size)]
            span = 1
            while span < size:
                span <<= 1
        else:
            span = vrank & -vrank  # lowest set bit
            parent = (vrank - span + root) % size
            held, _ = yield from self._recv(source=parent, tag=tag)
        half = span >> 1
        while half:
            child_v = vrank + half
            if child_v < size:
                mine: List[Tuple[int, Any]] = []
                theirs: List[Tuple[int, Any]] = []
                for v, o in held:
                    (theirs if v >= child_v else mine).append((v, o))
                child = (child_v + root) % size
                yield from self._send(theirs, dest=child, tag=tag)
                held = mine
            half >>= 1
        return held[0][1]

    def allgather(self, obj: Any):
        """Generator: gather to rank 0, then broadcast the list."""
        tag_g = self._coll_tag()
        tag_b = self._coll_tag()
        gathered = yield from self.gather(obj, root=0, _tag=tag_g)
        result = yield from self.bcast(gathered, root=0, _tag=tag_b)
        return result

    def reduce(self, obj: Any, op=None, root: int = 0):
        """Generator: reduce with binary ``op`` (default addition) at root."""
        if op is None:
            op = lambda a, b: a + b
        tag = self._coll_tag()
        gathered = yield from self.gather(obj, root=root, _tag=tag)
        if self.rank != root:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, obj: Any, op=None):
        """Generator: reduce at rank 0, then broadcast the result."""
        reduced = yield from self.reduce(obj, op=op, root=0)
        tag = self._coll_tag()
        result = yield from self.bcast(reduced, root=0, _tag=tag)
        return result

    def alltoall(self, objs: List[Any]):
        """Generator: pairwise exchange; returns list indexed by source."""
        if len(objs) != self.size:
            raise MPIError(f"alltoall needs exactly {self.size} items")
        tag = self._coll_tag()
        if self.size == 1:
            return [objs[0]]
        if self.collective_algo == "tree":
            result = yield from self._alltoall_flat(objs, tag)
        else:
            result = yield from self._alltoall_linear(objs, tag)
        return result

    def _alltoall_linear(self, objs: List[Any], tag: int):
        """Executable spec: one concurrent isend per destination.

        Spawns ``size - 1`` DES processes per member (O(P^2) live
        processes across the job) — correct, but the process churn is
        what the flat pairwise schedule exists to avoid.
        """
        result: List[Any] = [None] * self.size
        result[self.rank] = objs[self.rank]
        requests = []
        for dst in range(self.size):
            if dst != self.rank:
                requests.append(self._isend(objs[dst], dest=dst, tag=tag))
        for _ in range(self.size - 1):
            payload, status = yield from self._recv(source=ANY_SOURCE, tag=tag)
            result[status.source] = payload
        for request in requests:
            yield from request.wait()
        return result

    def _alltoall_flat(self, objs: List[Any], tag: int):
        """Pairwise-rounds exchange: flat sends, no process fan-out.

        Round ``r`` sends to ``rank + r`` and receives from
        ``rank - r`` (mod P): in any round every rank's destination is
        simultaneously receiving from that rank, so the schedule is
        deadlock-free.  Eager payloads ride the network's callback
        chain inline; only a rendezvous-sized payload needs one
        (sequential, not concurrent) helper process so its handshake
        can overlap this rank's receive.
        """
        size = self.size
        rank = self.rank
        network = self.job.network
        result: List[Any] = [None] * size
        result[rank] = objs[rank]
        for r in range(1, size):
            dst = (rank + r) % size
            src = (rank - r) % size
            obj = objs[dst]
            if network.is_eager(payload_nbytes(obj)):
                # Fire-and-forget: _send returns after sw_overhead.
                yield from self._send(obj, dest=dst, tag=tag)
                payload, _ = yield from self._recv(source=src, tag=tag)
            else:
                request = self._isend(obj, dest=dst, tag=tag)
                payload, _ = yield from self._recv(source=src, tag=tag)
                yield from request.wait()
            result[src] = payload
        return result

    # -- communicator management ----------------------------------------------
    def split(self, color: Optional[int], key: Optional[int] = None):
        """Generator: split into sub-communicators by ``color``.

        Ranks passing ``color=None`` receive ``None`` (MPI_UNDEFINED).
        Within a color, ranks are ordered by ``(key, old rank)``.
        This is how Rocpanda partitions MPI_COMM_WORLD into the client
        communicator and the server communicator at initialization
        (§4.1).
        """
        entry = (color, self.rank if key is None else key, self.rank)
        entries = yield from self.gather(entry, root=0, _tag=self._coll_tag())
        assignments = None
        if self.rank == 0:
            colors = sorted({c for c, _, _ in entries if c is not None})
            plans = {}
            for c in colors:
                members = sorted(
                    [(k, r) for cc, k, r in entries if cc == c]
                )
                ranks = [r for _, r in members]
                new_id = self.job.alloc_comm_id()
                group = tuple(self.group[r] for r in ranks)
                for new_rank, old_rank in enumerate(ranks):
                    plans[old_rank] = (new_id, group, new_rank)
            assignments = [plans.get(r) for r in range(self.size)]
        my_plan = yield from self.scatter(assignments, root=0, _tag=self._coll_tag())
        if my_plan is None:
            return None
        new_id, group, new_rank = my_plan
        sub = Comm(self.job, new_id, group, new_rank)
        # Sub-communicators keep the parent's collective algorithm.
        sub.collective_algo = self.collective_algo
        return sub

    def dup(self):
        """Generator: duplicate this communicator (fresh message space)."""
        new_comm = yield from self.split(color=0, key=self.rank)
        return new_comm

    def __repr__(self) -> str:
        return f"<Comm id={self.id} rank={self.rank}/{self.size}>"


class SendStream:
    """Prebound point-to-point sender for repeated sends to one target.

    Created by :meth:`Comm.stream`.  Every per-message constant —
    destination node, mailbox, recorder, global ranks — is resolved
    once here; :meth:`send` then replays :meth:`Comm.send`'s event
    sequence verbatim (it shares the communicator's send-sequence
    counter, so interleaving stream and plain sends stays well
    ordered).
    """

    __slots__ = (
        "comm", "dest", "tag", "_network", "_env",
        "_src_node", "_dst_node", "_mailbox", "_recorder",
        "_src_grank", "_dst_grank",
    )

    def __init__(self, comm: Comm, dest: int, tag: int):
        _check_send_tag(tag)
        comm._check_rank(dest, "dest")
        self.comm = comm
        self.dest = dest
        self.tag = tag
        self._network = comm.job.network
        self._env = comm.env
        self._src_node = comm._node(comm.rank)
        self._dst_node = comm._node(dest)
        self._mailbox = comm._mailbox(dest)
        self._recorder = comm._recorder
        self._src_grank = comm.global_rank()
        self._dst_grank = comm.group[dest]

    def send(self, obj: Any, nbytes: Optional[int] = None):
        """Generator: blocking send; event-for-event equal to Comm.send.

        ``nbytes`` short-circuits :func:`payload_nbytes` when the
        caller already knows the wire size (batched envelopes do).
        """
        comm = self.comm
        network = self._network
        env = self._env
        if nbytes is None:
            nbytes = payload_nbytes(obj)
        comm._send_seq += 1
        envelope = make_envelope(
            comm.job.envelope_pool,
            comm.id,
            comm.rank,
            self.dest,
            self.tag,
            obj,
            nbytes,
            MODE_EAGER if network.is_eager(nbytes) else MODE_RNDV,
            comm._send_seq,
        )
        if self._recorder is not None:
            self._recorder.count_send(
                self._src_grank, self._dst_grank, nbytes,
                eager=envelope.mode == MODE_EAGER,
            )
        fault = None
        if network.fault_filter is not None:
            fault = network.fault_decision(
                self._src_grank, self._dst_grank, self.tag, nbytes
            )
        yield env.sleep(network.spec.sw_overhead)
        src_node = self._src_node
        dst_node = self._dst_node
        if envelope.mode == MODE_EAGER:
            mailbox = self._mailbox
            if fault is not None:
                kind, extra = fault
                if kind == "drop":
                    return
                if kind == "duplicate":
                    network.schedule_delivery(
                        src_node, dst_node, nbytes, mailbox, envelope
                    )
                elif kind == "delay":
                    network.schedule_delivery(
                        src_node, dst_node, nbytes, mailbox, envelope,
                        extra_delay=extra,
                    )
                    return
            network.schedule_delivery(
                src_node, dst_node, nbytes, mailbox, envelope
            )
            return
        envelope.done_event = Event(env)
        yield from network.control_message(src_node, dst_node)
        if fault is not None:
            kind, extra = fault
            if kind == "drop":
                return
            if kind == "delay":
                yield env.timeout(extra)
        self._mailbox.deliver(envelope)
        yield envelope.done_event
