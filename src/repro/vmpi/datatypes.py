"""Common vmpi types: wildcards, status, message envelopes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Status",
    "Envelope",
    "MPIError",
    "payload_nbytes",
    "make_envelope",
    "release_envelope",
]

#: Wildcard source for recv/probe.
ANY_SOURCE = -1
#: Wildcard tag for recv/probe.
ANY_TAG = -1

#: Protocol modes.
MODE_EAGER = "eager"
MODE_RNDV = "rndv"


class MPIError(RuntimeError):
    """Raised on misuse of the vmpi API."""


@dataclass(frozen=True, slots=True)
class Status:
    """Result metadata of a receive or probe."""

    source: int
    tag: int
    nbytes: int


@dataclass(slots=True)
class Envelope:
    """An in-flight message (internal; one allocated per message)."""

    comm_id: int
    src: int  # comm-local source rank
    dst: int  # comm-local destination rank
    tag: int
    payload: Any
    nbytes: int
    mode: str
    seq: int
    #: Fired when the payload transfer completes (rendezvous mode).
    done_event: Any = None

    def matches(self, source: int, tag: int) -> bool:
        return (source in (ANY_SOURCE, self.src)) and (tag in (ANY_TAG, self.tag))

    def status(self) -> Status:
        return Status(source=self.src, tag=self.tag, nbytes=self.nbytes)


#: Freelist size cap: beyond this the pool stops absorbing releases
#: (a burst of in-flight messages must not pin memory forever).
_ENVELOPE_POOL_CAP = 4096


def make_envelope(pool, comm_id, src, dst, tag, payload, nbytes, mode, seq) -> Envelope:
    """Allocate an :class:`Envelope`, reusing a pooled instance if any.

    ``pool`` is the owning job's shared freelist; a popped instance has
    every field overwritten (``done_event`` included), so reuse is
    indistinguishable from a fresh allocation.
    """
    if pool:
        envelope = pool.pop()
        envelope.comm_id = comm_id
        envelope.src = src
        envelope.dst = dst
        envelope.tag = tag
        envelope.payload = payload
        envelope.nbytes = nbytes
        envelope.mode = mode
        envelope.seq = seq
        envelope.done_event = None
        return envelope
    return Envelope(
        comm_id=comm_id, src=src, dst=dst, tag=tag, payload=payload,
        nbytes=nbytes, mode=mode, seq=seq,
    )


def release_envelope(pool, envelope: Envelope) -> None:
    """Return a fully-consumed envelope to the freelist.

    Payload and completion-event references are dropped immediately so
    a pooled envelope never keeps a large array alive.  Callers must
    guarantee no other holder can still observe the envelope — the
    receive path only releases when no fault filter is installed,
    because duplicate-injection delivers one envelope twice.
    """
    envelope.payload = None
    envelope.done_event = None
    if len(pool) < _ENVELOPE_POOL_CAP:
        pool.append(envelope)


#: Exact-type fast path for the scalar payloads that dominate call
#: volume (allreduce/control traffic); subclasses fall through to the
#: isinstance chain below.
_SCALAR_NBYTES = {int: 16, float: 16, bool: 16, type(None): 16}


def payload_nbytes(obj: Any) -> int:
    """Estimated wire size of a message payload in bytes.

    NumPy arrays and buffer-like objects report their true size; small
    Python structures are estimated structurally.  The constant for
    opaque objects is deliberately small — control messages in the I/O
    protocols are tiny compared to data blocks.
    """
    t = type(obj)
    fixed = _SCALAR_NBYTES.get(t)
    if fixed is not None:
        return fixed
    if t is str:
        return 48 + len(obj)
    if t is tuple or t is list:
        # Control payloads are mostly small tuples of scalars; jumping
        # straight to the recursion skips four isinstance checks and a
        # getattr per element-bearing call.
        return 48 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    nb = getattr(obj, "nbytes", None)
    if nb is not None:
        try:
            return int(nb)
        except (TypeError, ValueError):
            pass
    if isinstance(obj, str):
        return 48 + len(obj)
    if isinstance(obj, (int, float, bool, type(None))):
        return 16
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 48 + sum(payload_nbytes(x) for x in obj)
    if isinstance(obj, dict):
        return 64 + sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items())
    return 64
