"""Virtual MPI: communicators, p2p + collectives, SPMD launcher.

A faithful-by-construction message-passing layer on the DES kernel:
real payload objects are delivered (so data-path correctness is
testable) while transfer times follow the machine's network model.
"""

from . import placement
from .comm import Comm, Request
from .datatypes import ANY_SOURCE, ANY_TAG, Envelope, MPIError, Status, payload_nbytes
from .launcher import Job, JobResult, RankContext, run_spmd
from .mailbox import Mailbox

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Status",
    "Envelope",
    "MPIError",
    "payload_nbytes",
    "Comm",
    "Request",
    "Mailbox",
    "Job",
    "JobResult",
    "RankContext",
    "run_spmd",
    "placement",
]
