"""SPMD job launcher: binds rank processes to a machine and runs them.

``run_spmd(machine, nprocs, main)`` starts ``nprocs`` DES processes,
each executing the generator function ``main(ctx)`` with its own
:class:`RankContext` (rank, world communicator, compute/timing helpers,
filesystem access).  It returns a :class:`JobResult` with every rank's
return value and run-level metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..cluster.machine import Machine
from ..cluster.node import ROLE_COMPUTE, ROLE_SERVER
from ..des import Environment, SimulationError
from ..obs.records import IOSpan, Recorder
from ..util.trace import Tracer
from .comm import Comm
from .mailbox import Mailbox
from . import placement as placement_policies

__all__ = ["RankContext", "Job", "JobResult", "run_spmd"]


class RankContext:
    """Everything one SPMD rank needs: identity, comms, time, storage."""

    def __init__(self, job: "Job", rank: int, node, cpu):
        self.job = job
        self.rank = rank
        self.node = node
        self.cpu = cpu
        #: MPI_COMM_WORLD equivalent for this rank.
        self.world = Comm(job, comm_id=0, group=tuple(range(job.nprocs)), rank=rank)
        #: Per-rank deterministic RNG stream.
        self.rng = np.random.default_rng((job.machine.seed << 20) ^ (rank + 1))
        #: Total simulated seconds spent in :meth:`compute`.
        self.compute_time = 0.0
        #: Scratch dict for application state (e.g. Roccom instance).
        self.state: Dict[str, Any] = {}

    # -- convenience accessors -------------------------------------------
    @property
    def env(self) -> Environment:
        return self.job.env

    @property
    def machine(self) -> Machine:
        return self.job.machine

    @property
    def fs(self):
        return self.job.machine.fs

    @property
    def disk(self):
        return self.job.machine.disk

    @property
    def tracer(self) -> Tracer:
        return self.job.tracer

    @property
    def recorder(self) -> Recorder:
        return self.job.recorder

    @property
    def now(self) -> float:
        return self.job.env.now

    # -- actions ------------------------------------------------------------
    def compute(self, nominal_seconds: float):
        """Generator: perform ``nominal_seconds`` of computation.

        The wall time charged includes CPU speed, external load and
        OS-noise effects from the machine model.
        """
        actual = self.machine.compute_time(self.node, nominal_seconds)
        self.compute_time += actual
        yield self.env.sleep(actual)

    def sleep(self, seconds: float):
        """Generator: idle wait (no compute accounting)."""
        yield self.env.sleep(seconds)

    def memcpy(self, nbytes: float):
        """Generator: local memory copy at the node's memory bandwidth.

        Used by T-Rochdf's buffered writes: the *visible* cost of a
        buffered output call is exactly this copy (§6.2).
        """
        yield self.env.sleep(nbytes / self.job.memcpy_bw)

    def set_role(self, role: str) -> None:
        """Re-label this rank's CPU (``"compute"`` or ``"server"``).

        Rocpanda marks its dedicated I/O processors as servers so the
        OS-noise model knows their CPU is mostly idle (§4.1).
        """
        self.cpu.role = role

    def trace(self, category: str, message: str) -> None:
        self.job.tracer.log(self.env.now, category, self.rank, message)

    def io_record(
        self,
        module: str,
        op: str,
        *,
        path: str = "",
        nbytes: int = 0,
        t_start: float,
        visible: bool = True,
    ) -> None:
        """Emit one instrumentation record ending now (see :mod:`repro.obs`)."""
        self.job.recorder.record_io(
            module,
            op,
            self.rank,
            path=path,
            nbytes=nbytes,
            t_start=t_start,
            t_end=self.env.now,
            visible=visible,
        )

    def io_span(
        self,
        module: str,
        op: str,
        *,
        path: str = "",
        nbytes: int = 0,
        visible: bool = True,
    ) -> IOSpan:
        """A DES-clock span timer that records itself on exit."""
        return self.job.recorder.span(
            self.env, module, op, self.rank, path=path, nbytes=nbytes, visible=visible
        )

    def __repr__(self) -> str:
        return f"<RankContext rank={self.rank} node={self.node.index} cpu={self.cpu.index}>"


@dataclass
class JobResult:
    """Outcome of an SPMD run."""

    #: Per-rank return values of ``main``.
    returns: List[Any]
    #: Total simulated wall time of the job.
    wall_time: float
    #: Per-rank compute seconds.
    compute_times: List[float]
    machine: Machine = None
    tracer: Tracer = None
    #: The job's instrumentation stream (see :mod:`repro.obs`).
    recorder: Recorder = None

    @property
    def max_compute_time(self) -> float:
        return max(self.compute_times) if self.compute_times else 0.0


class Job:
    """One SPMD job bound to a machine."""

    #: Node memory-copy bandwidth used by :meth:`RankContext.memcpy`.
    DEFAULT_MEMCPY_BW = 300 * 1024 * 1024

    def __init__(
        self,
        machine: Machine,
        nprocs: int,
        placement: Optional[Callable] = None,
        tracer: Optional[Tracer] = None,
        memcpy_bw: Optional[float] = None,
        mailbox_factory: Optional[Callable] = None,
    ):
        if nprocs <= 0:
            raise ValueError("nprocs must be > 0")
        self.machine = machine
        self.env = machine.env
        self.nprocs = nprocs
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: Instrumentation stream shared with the tracer shim: one
        #: recorder per job collects I/O records and comm counters.
        self.recorder = self.tracer.recorder
        self.memcpy_bw = (
            memcpy_bw
            if memcpy_bw
            else getattr(machine.spec, "memcpy_bw", self.DEFAULT_MEMCPY_BW)
        )
        self.network = machine.build_network(nprocs)

        policy = placement or placement_policies.block
        slots = policy(machine.spec, nprocs)
        if len(slots) != nprocs:
            raise ValueError("placement returned wrong number of slots")
        self.contexts: List[RankContext] = []
        for rank, (node_idx, cpu_idx) in enumerate(slots):
            node = machine.nodes[node_idx]
            cpu = node.cpus[cpu_idx]
            cpu.assign(rank, ROLE_COMPUTE)
            self.contexts.append(RankContext(self, rank, node, cpu))

        #: Mailbox implementation used for every rank/communicator pair
        #: (swappable so benchmarks can compare matcher implementations).
        self._mailbox_factory = mailbox_factory or Mailbox
        #: comm_id -> per-global-rank mailbox array.  Global ranks are
        #: dense, so each communicator holds a flat list instead of a
        #: (comm_id, rank)-keyed dict — one list index per message in
        #: place of a tuple hash.
        self._mailboxes: Dict[int, List[Optional[Mailbox]]] = {}
        self._next_comm_id = 1  # 0 = world
        #: Shared Envelope freelist (job-wide: envelopes are created by
        #: the sender's Comm and released by the receiver's).  Only the
        #: fault-free receive path recycles — a duplicate-fault filter
        #: can deliver one envelope twice, so recycling is disabled the
        #: moment a fault filter is installed.
        self.envelope_pool: list = []

    # -- registry used by Comm ----------------------------------------------
    def context(self, global_rank: int) -> RankContext:
        return self.contexts[global_rank]

    def mailbox(self, comm_id: int, global_rank: int) -> Mailbox:
        boxes = self._mailboxes.get(comm_id)
        if boxes is None:
            boxes = self._mailboxes[comm_id] = [None] * self.nprocs
        box = boxes[global_rank]
        if box is None:
            box = boxes[global_rank] = self._mailbox_factory(self.env)
        return box

    def alloc_comm_id(self) -> int:
        self._next_comm_id += 1
        return self._next_comm_id

    # -- execution --------------------------------------------------------------
    def run(self, main: Callable, until: Optional[float] = None) -> JobResult:
        """Run ``main(ctx)`` on every rank to completion."""
        procs = [
            self.env.process(main(ctx), name=f"rank{ctx.rank}") for ctx in self.contexts
        ]
        faults = getattr(self.machine, "faults", None)
        if faults is not None:
            faults.attach_job(self, procs)
        # A tiered fs (fs/tiers.py) adopts the job's recorder so drain
        # activity lands in the same instrumentation stream.
        attach_fs = getattr(self.machine.fs, "attach_job", None)
        if attach_fs is not None:
            attach_fs(self)
        done = self.env.all_of(procs)
        try:
            self.env.run(until=done if until is None else until)
        except SimulationError:
            stuck = [p.name for p in procs if p.is_alive]
            raise RuntimeError(
                f"deadlock: ranks {stuck} blocked with no pending events "
                f"(unmatched recv/probe or a lost message?)"
            ) from None
        if until is not None and not done.triggered:
            if self.env.peek() == float("inf"):
                stuck = [p.name for p in procs if p.is_alive]
                raise RuntimeError(
                    f"deadlock: ranks {stuck} blocked with no pending events "
                    f"(unmatched recv/probe or a lost message?)"
                )
            raise RuntimeError(f"job did not finish by t={until}")
        returns = [p.value for p in procs]
        return JobResult(
            returns=returns,
            wall_time=self.env.now,
            compute_times=[ctx.compute_time for ctx in self.contexts],
            machine=self.machine,
            tracer=self.tracer,
            recorder=self.recorder,
        )


def run_spmd(
    machine: Machine,
    nprocs: int,
    main: Callable,
    placement: Optional[Callable] = None,
    tracer: Optional[Tracer] = None,
) -> JobResult:
    """Convenience wrapper: build a :class:`Job` and run it."""
    return Job(machine, nprocs, placement=placement, tracer=tracer).run(main)
