"""Rank-to-CPU placement policies.

A placement maps global rank -> (node_index, cpu_index).  The paper's
experiments use three layouts on SMP nodes (§7.2, Fig 3(b)):

* ``block`` — fill every CPU of a node before moving on ("16NS" on
  Frost, and the default on Turing's dual-CPU nodes);
* ``leave_one_idle`` — use only ``ncpus - 1`` CPUs per node ("15NS");
* ``block`` combined with Rocpanda's stride server selection — the
  "15S" layout falls out of running 16 ranks/node where every node's
  first rank becomes an I/O server.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

__all__ = ["block", "leave_one_idle", "round_robin", "explicit", "Placement"]

#: A placement: list of (node_index, cpu_index), indexed by global rank.
Placement = List[Tuple[int, int]]


def block(machine_spec, nprocs: int) -> Placement:
    """Fill each node's CPUs in order before moving to the next node."""
    cpn = machine_spec.cpus_per_node
    _check(machine_spec, nprocs, machine_spec.nnodes * cpn)
    return [(rank // cpn, rank % cpn) for rank in range(nprocs)]


def leave_one_idle(machine_spec, nprocs: int) -> Placement:
    """Use only ``cpus_per_node - 1`` CPUs per node (one left idle)."""
    cpn = machine_spec.cpus_per_node
    if cpn < 2:
        raise ValueError("leave_one_idle needs at least 2 CPUs per node")
    usable = cpn - 1
    _check(machine_spec, nprocs, machine_spec.nnodes * usable)
    return [(rank // usable, rank % usable) for rank in range(nprocs)]


def round_robin(machine_spec, nprocs: int) -> Placement:
    """Cycle through nodes, one CPU at a time (spreads ranks widely)."""
    nnodes = machine_spec.nnodes
    cpn = machine_spec.cpus_per_node
    _check(machine_spec, nprocs, nnodes * cpn)
    return [(rank % nnodes, rank // nnodes) for rank in range(nprocs)]


def explicit(pairs: Placement) -> Callable:
    """Wrap a hand-written placement list as a policy."""

    def _policy(machine_spec, nprocs: int) -> Placement:
        if nprocs != len(pairs):
            raise ValueError(f"placement has {len(pairs)} slots, job has {nprocs}")
        return list(pairs)

    return _policy


def _check(machine_spec, nprocs: int, available: int) -> None:
    if nprocs <= 0:
        raise ValueError("nprocs must be > 0")
    if nprocs > available:
        raise ValueError(
            f"job of {nprocs} procs does not fit: {available} usable CPUs on "
            f"{machine_spec.name}"
        )
