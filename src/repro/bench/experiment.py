"""Experiment runner: repeated seeded runs + paper-style summaries.

Two repetition policies from §7:

* Turing numbers are the **best of five consecutive runs** (shared,
  unscheduled nodes -> large run-to-run variance);
* Frost numbers are **averaged over three experiments** with 95%
  confidence-interval error bars.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.machine import Machine, MachineSpec
from ..util.stats import Summary, best_of, mean_ci

__all__ = ["repeat_runs", "summarize", "bench_scale", "bench_runs"]


def bench_scale(default: float = 1.0) -> float:
    """Workload scale factor for benchmarks.

    ``REPRO_BENCH_SCALE`` overrides (e.g. 0.1 for a quick smoke pass).
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_runs(default: int) -> int:
    """Repetitions per configuration (``REPRO_BENCH_RUNS`` overrides)."""
    return int(os.environ.get("REPRO_BENCH_RUNS", default))


def repeat_runs(
    spec_factory: Callable[[], MachineSpec],
    run_once: Callable[[Machine, int], Dict[str, float]],
    nruns: int,
    seed_base: int = 0,
    shared_disk=None,
) -> List[Dict[str, float]]:
    """Run ``run_once`` on ``nruns`` fresh machines with distinct seeds.

    ``run_once(machine, seed)`` returns a dict of named metrics.
    """
    out = []
    for i in range(nruns):
        machine = Machine(spec_factory(), seed=seed_base + i, disk=shared_disk)
        out.append(run_once(machine, seed_base + i))
    return out


def summarize(
    samples: Sequence[Dict[str, float]], policy: str
) -> Dict[str, Summary]:
    """Collapse per-run metric dicts with ``"best"`` or ``"mean_ci"``."""
    if not samples:
        raise ValueError("no samples")
    if policy not in ("best", "mean_ci"):
        raise ValueError(f"unknown policy {policy!r}")
    keys = samples[0].keys()
    out = {}
    for key in keys:
        values = [s[key] for s in samples]
        out[key] = best_of(values) if policy == "best" else mean_ci(values)
    return out
