"""Figure 3(a) reproduction: apparent aggregate write throughput on Frost.

The "scalability" test: fixed data per compute processor (weak
scaling), 15 compute processors per 16-way SMP node; with Rocpanda the
16th processor of each node is a dedicated I/O server.  Apparent
aggregate write throughput = total output data / total visible output
cost (§7.2).  Mean of three runs with 95% confidence intervals.

Paper shape: Rocpanda rises from 1 to 15 clients (better use of
intra-node message bandwidth), then scales with the number of server
nodes, reaching ~875 MB/s at 512 total processors — several times the
parallel-HDF5 reference; Rochdf stays pinned near GPFS's raw bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.machine import Machine
from ..cluster.presets import frost
from ..genx.driver import GENxConfig, run_genx
from ..genx.workloads import scalability_cylinder
from ..util.stats import Summary, mean_ci
from ..util.units import MB
from ..vmpi import placement as placement_policies
from .report import render_series

__all__ = [
    "Fig3aResult",
    "run_fig3a",
    "run_fig3a_partial_read",
    "CLIENTS_PER_NODE",
]

#: 15 compute processors per 16-way node (§7.2).
CLIENTS_PER_NODE = 15

#: The FLASH parallel-HDF5 reference measured on Frost ([8], §7.2):
#: Rocpanda's 512-processor apparent throughput was "more than five
#: times higher".
PARALLEL_HDF5_REFERENCE_BPS = 160 * MB


@dataclass
class Fig3aResult:
    #: Compute-processor counts (x axis).
    proc_counts: List[int]
    #: io mode -> list of throughput Summaries (bytes/s), same order.
    throughput: Dict[str, List[Summary]]
    total_procs: List[int] = field(default_factory=list)

    def render(self) -> str:
        series = {}
        for mode, summaries in self.throughput.items():
            series[f"{mode} (MB/s)"] = [s.value / MB for s in summaries]
            series[f"{mode} ±"] = [s.halfwidth / MB for s in summaries]
        return render_series(
            "compute procs",
            self.proc_counts,
            series,
            title=(
                "Fig 3(a) — apparent aggregate write throughput on Frost "
                "(mean of N runs, 95% CI)"
            ),
        )


def _topology(nclients: int):
    """(total_procs, nservers) for the Rocpanda runs."""
    if nclients < CLIENTS_PER_NODE:
        return nclients + 1, 1
    if nclients % CLIENTS_PER_NODE:
        raise ValueError(
            f"nclients {nclients} must be a multiple of {CLIENTS_PER_NODE} "
            f"(or below it)"
        )
    nservers = nclients // CLIENTS_PER_NODE
    return nclients + nservers, nservers


def run_fig3a(
    proc_counts: Sequence[int] = (1, 3, 7, 15, 30, 60, 120, 240, 480),
    nruns: int = 3,
    per_client_bytes: float = 1 * MB,
    steps: int = 10,
    snapshot_interval: int = 5,
    seed_base: int = 300,
    modes: Sequence[str] = ("rocpanda", "rochdf"),
) -> Fig3aResult:
    """Run the weak-scaling throughput sweep.

    Frost-specific Panda calibration: the 375 MHz POWER3 servers ingest
    much slower than Turing's 1 GHz PIIIs (larger per-block protocol
    cost, slower buffering copies), and clients pay a noticeable
    per-block marshalling cost — which is why one client cannot keep a
    server busy and the curve rises up to 15 clients (§7.2).
    """
    from ..io.rocpanda import ServerConfig

    frost_server = ServerConfig(ingest_overhead=2.0e-3, ingest_bw=100 * MB)
    frost_pack = (3.0e-3, 80 * MB)
    workload = scalability_cylinder(
        per_client_bytes=per_client_bytes,
        steps=steps,
        snapshot_interval=snapshot_interval,
    )
    throughput: Dict[str, List[Summary]] = {m: [] for m in modes}
    totals: List[int] = []

    for nclients in proc_counts:
        total, nservers = _topology(nclients)
        totals.append(total)
        for mode in modes:
            samples = []
            for i in range(nruns):
                machine = Machine(frost(), seed=seed_base + i)
                if mode == "rocpanda":
                    config = GENxConfig(
                        workload=workload,
                        io_mode="rocpanda",
                        nservers=nservers,
                        prefix="f3a",
                        server_config=frost_server,
                        client_pack=frost_pack,
                    )
                    result = run_genx(machine, total, config)
                else:
                    # "Fifteen processors per SMP node are used for
                    # computation" (§7.2) in every configuration.
                    config = GENxConfig(
                        workload=workload, io_mode=mode, prefix="f3a"
                    )
                    result = run_genx(
                        machine,
                        nclients,
                        config,
                        placement=placement_policies.leave_one_idle,
                    )
                total_bytes = sum(c.io_stats.bytes_written for c in result.clients)
                visible = result.visible_io_time
                samples.append(total_bytes / visible if visible > 0 else 0.0)
            throughput[mode].append(mean_ci(samples))
    return Fig3aResult(
        proc_counts=list(proc_counts), throughput=throughput, total_procs=totals
    )


def run_fig3a_partial_read(
    nprocs: int = 15,
    nblocks_per_rank: int = 4,
    nelems: int = 4096,
    seed: int = 300,
    module: str = "rochdf",
) -> Dict[str, float]:
    """Virtual-time cost of a Fig 3(a)-style partial attribute read.

    Writes one snapshot holding several attributes per block, then
    restores (a) every attribute and (b) a single attribute.  Before
    the partial-read sieve, (b) cost exactly as much virtual time as
    (a) — every record was read and the unwanted arrays were discarded
    after decode.  With sieving, (b) reads only the wanted records, so
    ``partial_read_s`` is the "after" number and ``full_read_s``
    doubles as the "before" one.

    ``module`` selects the I/O module under test: ``"rochdf"`` or
    ``"trochdf"`` (T-Rochdf restarts the Rochdf way, §7.1 — its
    ``read_attribute`` inherits the same sieve, plus a drain of its own
    buffered snapshots first; the writer side syncs so the background
    thread's files are on disk before the machine is torn down).
    """
    import numpy as np

    from ..io import RochdfModule, TRochdfModule
    from ..roccom import AttributeSpec, LOC_ELEMENT, LOC_NODE, Roccom
    from ..vmpi import run_spmd

    if module not in ("rochdf", "trochdf"):
        raise ValueError(f"unknown module {module!r}")
    mod_factory = RochdfModule if module == "rochdf" else TRochdfModule
    attrs = ("pressure", "temperature", "velocity", "density")

    def _window(com, ctx):
        w = com.new_window("Fluid")
        w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
        for name in attrs:
            w.declare_attribute(AttributeSpec(name, LOC_ELEMENT))
        rng = np.random.default_rng(seed + ctx.rank)
        for i in range(nblocks_per_rank):
            pane_id = ctx.rank * nblocks_per_rank + i
            w.register_pane(pane_id, nelems, nelems)
            w.set_array("coords", pane_id, rng.random((nelems, 3)))
            for name in attrs:
                w.set_array(name, pane_id, rng.random(nelems))
        return w

    def writer_main(ctx):
        com = Roccom(ctx)
        com.load_module(mod_factory(ctx))
        _window(com, ctx)
        yield from com.call_function("OUT.write_attribute", "Fluid", None, "f3apr")
        # T-Rochdf buffers and writes in the background; sync before the
        # machine is torn down so the files are durable (no-op cost for
        # plain Rochdf, whose write already blocked).
        yield from com.call_function("OUT.sync")

    machine = Machine(frost(), seed=seed)
    run_spmd(machine, nprocs, writer_main)

    times = {}

    def _reader(attr_names, label):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(mod_factory(ctx))
            w = com.new_window("Fluid")
            for i in range(nblocks_per_rank):
                w.register_pane(ctx.rank * nblocks_per_rank + i, 0, 0)
            t0 = ctx.now
            yield from com.call_function(
                "OUT.read_attribute", "Fluid", attr_names, "f3apr"
            )
            times.setdefault(label, []).append(ctx.now - t0)
            return mod.stats.bytes_read

        return main

    reread = Machine(frost(), seed=seed, disk=machine.disk)
    full = run_spmd(reread, nprocs, _reader(None, "full"))
    reread2 = Machine(frost(), seed=seed, disk=machine.disk)
    partial = run_spmd(reread2, nprocs, _reader(["pressure"], "partial"))
    full_s = max(times["full"])
    partial_s = max(times["partial"])
    return {
        "module": module,
        "nprocs": nprocs,
        "full_read_s": full_s,
        "partial_read_s": partial_s,
        "full_read_bytes": float(sum(full.returns)),
        "partial_read_bytes": float(sum(partial.returns)),
        "speedup": full_s / partial_s if partial_s else float("inf"),
    }
