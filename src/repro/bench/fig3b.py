"""Figure 3(b) reproduction: SMP computation time vs processor layout.

Same weak-scaling test as Fig 3(a); measured quantity is the
*computation* time under three per-node layouts (§7.2):

* **16NS** — all 16 CPUs per node run compute ranks, I/O via Rochdf;
* **15NS** — 15 compute ranks per node, one CPU left idle, Rochdf;
* **15S**  — 15 compute ranks + one Rocpanda I/O server per node.

Paper shape: with growing scale the 16NS computation time becomes
visibly longer than both 15-per-node layouts (OS noise lands on
compute CPUs and is amplified by per-step synchronization); 15S sits
slightly above 15NS but well below 16NS — even though 15S does real
I/O while 15NS does none in this measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cluster.machine import Machine
from ..cluster.presets import frost
from ..genx.driver import GENxConfig, run_genx
from ..genx.workloads import scalability_cylinder
from ..util.stats import Summary, mean_ci
from ..util.units import MB
from ..vmpi import placement as placement_policies
from .report import render_series

__all__ = ["Fig3bResult", "run_fig3b", "LAYOUTS"]

LAYOUTS = ("16NS", "15NS", "15S")


@dataclass
class Fig3bResult:
    proc_counts: List[int]
    #: layout -> computation-time Summaries, same order as proc_counts.
    compute_time: Dict[str, List[Summary]]

    def render(self) -> str:
        series = {}
        for layout in LAYOUTS:
            series[f"{layout} (s)"] = [s.value for s in self.compute_time[layout]]
            series[f"{layout} ±"] = [s.halfwidth for s in self.compute_time[layout]]
        return render_series(
            "compute procs",
            self.proc_counts,
            series,
            title=(
                "Fig 3(b) — computation time vs per-node layout on Frost "
                "(mean of N runs, 95% CI)"
            ),
        )

    def values(self, layout: str) -> List[float]:
        return [s.value for s in self.compute_time[layout]]


def run_fig3b(
    proc_counts: Sequence[int] = (15, 30, 60, 120, 240, 480),
    nruns: int = 3,
    per_client_bytes: float = 0.5 * MB,
    steps: int = 20,
    step_seconds: float = 10.0,
    snapshot_interval: int = 10,
    seed_base: int = 500,
) -> Fig3bResult:
    """Run the layout comparison (proc counts must divide by 15)."""
    workload = scalability_cylinder(
        per_client_bytes=per_client_bytes,
        steps=steps,
        snapshot_interval=snapshot_interval,
        nominal_step_seconds=step_seconds,
    )
    out: Dict[str, List[Summary]] = {layout: [] for layout in LAYOUTS}
    for nclients in proc_counts:
        for layout in LAYOUTS:
            samples = []
            for i in range(nruns):
                machine = Machine(frost(), seed=seed_base + i)
                if layout == "16NS":
                    config = GENxConfig(
                        workload=workload, io_mode="rochdf", prefix="f3b"
                    )
                    result = run_genx(
                        machine, nclients, config,
                        placement=placement_policies.block,
                    )
                elif layout == "15NS":
                    config = GENxConfig(
                        workload=workload, io_mode="rochdf", prefix="f3b"
                    )
                    result = run_genx(
                        machine, nclients, config,
                        placement=placement_policies.leave_one_idle,
                    )
                else:  # 15S
                    nservers = max(1, nclients // 15)
                    config = GENxConfig(
                        workload=workload,
                        io_mode="rocpanda",
                        nservers=nservers,
                        prefix="f3b",
                    )
                    result = run_genx(
                        machine, nclients + nservers, config,
                        placement=placement_policies.block,
                    )
                samples.append(result.computation_time)
            out[layout].append(mean_ci(samples))
    return Fig3bResult(proc_counts=list(proc_counts), compute_time=out)
