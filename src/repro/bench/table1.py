"""Table 1 reproduction: computation and I/O times on the Turing cluster.

"We partitioned and distributed the same set of simulation data onto
different numbers of compute processors ... executed the simulation for
200 time-steps and performed snapshots every 50 time-steps, resulting
in five output phases (including the initial snapshot) ... approximately
64 MB of output data [per snapshot]" (§7.1).  Best of five consecutive
runs; Rocpanda uses extra dedicated servers at an 8:1 client:server
ratio.

Rows produced (matching the paper's): computation time; visible I/O
time for Rochdf / T-Rochdf / Rocpanda; restart time for Rochdf /
Rocpanda.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..cluster.machine import Machine
from ..cluster.presets import turing
from ..genx.driver import GENxConfig, run_genx
from ..genx.workloads import lab_scale_motor
from ..util.stats import Summary
from .experiment import summarize
from .report import render_table

__all__ = ["Table1Result", "run_table1", "CLIENT_SERVER_RATIO"]

#: The paper fixes the client:server ratio at 8:1 on Turing.
CLIENT_SERVER_RATIO = 8

_PAPER = {
    "computation": {16: 846.64, 32: 393.05, 64: 203.24},
    "rochdf": {16: 51.58, 32: 83.28, 64: 51.19},
    "trochdf": {16: 0.38, 32: 0.18, 64: 0.11},
    "rocpanda": {16: 2.40, 32: 1.48, 64: 1.94},
    "restart_rochdf": {16: 5.33, 32: 1.93, 64: 0.72},
    "restart_rocpanda": {16: 69.9, 32: 39.2, 64: 18.2},
}


@dataclass
class Table1Result:
    proc_counts: List[int]
    #: metric -> nprocs -> Summary
    measured: Dict[str, Dict[int, Summary]]
    paper: Dict[str, Dict[int, float]] = field(default_factory=lambda: _PAPER)

    def value(self, metric: str, nprocs: int) -> float:
        return self.measured[metric][nprocs].value

    def render(self) -> str:
        rows = []
        labels = [
            ("computation", "compu. time"),
            ("rochdf", "visible I/O: Rochdf"),
            ("trochdf", "visible I/O: T-Rochdf"),
            ("rocpanda", "visible I/O: Rocpanda"),
            ("restart_rochdf", "restart: Rochdf"),
            ("restart_rocpanda", "restart: Rocpanda"),
        ]
        for key, label in labels:
            row = [label]
            for n in self.proc_counts:
                row.append(self.value(key, n))
                row.append(self.paper[key].get(n))
            rows.append(row)
        headers = ["metric (s)"]
        for n in self.proc_counts:
            headers += [f"{n}p meas", f"{n}p paper"]
        return render_table(
            headers,
            rows,
            title="Table 1 — computation and I/O times on Turing (best of N runs)",
        )


def _nservers(nclients: int) -> int:
    return max(1, nclients // CLIENT_SERVER_RATIO)


def run_table1(
    proc_counts: Sequence[int] = (16, 32, 64),
    nruns: int = 5,
    scale: float = 1.0,
    steps: int = 200,
    snapshot_interval: int = 50,
    seed_base: int = 100,
    nblocks_fluid: int = 320,
    nblocks_solid: int = 160,
    nnodes: int = 208,
    storage_tier: str = "direct",
) -> Table1Result:
    """Run the full Table 1 experiment matrix.

    ``nblocks_*`` and ``nnodes`` open the historical 16/32/64-processor
    matrix up to the scaling sweep: the partitioner needs at least one
    block per client, and runs past 416 ranks need a larger simulated
    cluster than the real Turing's 208 nodes.

    ``storage_tier`` routes the *write* runs through the chosen tier
    ("direct" keeps the executable spec; "burst" fronts the filesystem
    with the burst buffer of :mod:`repro.fs.tiers`).  Restart runs stay
    direct: they read cold data from the durable disk either way.
    """
    workload = lab_scale_motor(
        scale=scale, steps=steps, snapshot_interval=snapshot_interval,
        nblocks_fluid=nblocks_fluid, nblocks_solid=nblocks_solid,
    )
    measured: Dict[str, Dict[int, Summary]] = {k: {} for k in _PAPER}

    for nclients in proc_counts:
        samples = []
        restart_samples = []
        for i in range(nruns):
            seed = seed_base + i
            run_metrics: Dict[str, float] = {}
            restart_metrics: Dict[str, float] = {}

            # --- Rochdf (baseline, blocking individual I/O) ----------
            m = Machine(turing(nnodes=nnodes), seed=seed)
            r_hdf = run_genx(
                m,
                nclients,
                GENxConfig(
                    workload=workload, io_mode="rochdf", prefix="t1",
                    storage_tier=storage_tier,
                ),
            )
            run_metrics["computation"] = r_hdf.computation_time
            run_metrics["rochdf"] = r_hdf.visible_io_time

            # Restart latency: re-read the last snapshot of that run.
            m2 = Machine(turing(nnodes=nnodes), seed=seed + 1000, disk=m.disk)
            r_restart = run_genx(
                m2,
                nclients,
                GENxConfig(
                    workload=workload,
                    io_mode="rochdf",
                    prefix="t1r",
                    steps=0,
                    initial_snapshot=False,
                    restart_step=steps,
                    restart_prefix="t1",
                ),
            )
            restart_metrics["restart_rochdf"] = r_restart.restart_time

            # --- T-Rochdf (threaded individual I/O) -------------------
            m = Machine(turing(nnodes=nnodes), seed=seed)
            r_thr = run_genx(
                m,
                nclients,
                GENxConfig(
                    workload=workload, io_mode="trochdf", prefix="t1",
                    storage_tier=storage_tier,
                ),
            )
            run_metrics["trochdf"] = r_thr.visible_io_time

            # --- Rocpanda (collective; extra dedicated servers) -------
            nservers = _nservers(nclients)
            m = Machine(turing(nnodes=nnodes), seed=seed)
            r_panda = run_genx(
                m,
                nclients + nservers,
                GENxConfig(
                    workload=workload,
                    io_mode="rocpanda",
                    nservers=nservers,
                    prefix="t1",
                    storage_tier=storage_tier,
                ),
            )
            run_metrics["rocpanda"] = r_panda.visible_io_time

            m2 = Machine(turing(nnodes=nnodes), seed=seed + 2000, disk=m.disk)
            r_prestart = run_genx(
                m2,
                nclients + nservers,
                GENxConfig(
                    workload=workload,
                    io_mode="rocpanda",
                    nservers=nservers,
                    prefix="t1r",
                    steps=0,
                    initial_snapshot=False,
                    restart_step=steps,
                    restart_prefix="t1",
                ),
            )
            restart_metrics["restart_rocpanda"] = r_prestart.restart_time

            samples.append(run_metrics)
            restart_samples.append(restart_metrics)

        summary = summarize(samples, policy="best")
        summary.update(summarize(restart_samples, policy="best"))
        for key, value in summary.items():
            measured[key][nclients] = value

    return Table1Result(proc_counts=list(proc_counts), measured=measured)
