"""Scaling benchmark: the simulator from 64 to 1024 compute processors.

The paper's own experiments stop at 480 processors (Fig 3a); this
harness pushes the *simulator* an order of magnitude past Table 1's
64-processor acceptance point and records how it holds up, PR-over-PR,
as ``BENCH_scaling.json``:

* **strong curve** — the Table 1 workload (:func:`lab_scale_motor`,
  repartitioned onto 1024 blocks so every client owns at least one)
  run under Rocpanda at 64/128/256/512/1024 clients.  Total data and
  computation are fixed; what scales is the rank count, and with it
  the collective traffic the tree algorithms (PR 7) exist to tame.
* **weak curve** — the Frost-style :func:`scalability_cylinder` with a
  small fixed per-client share, same client counts.  Total data grows
  with the job, stressing the DES core and the server fan-in instead.

Each point reports both clocks:

* ``host_wall_s`` / ``events_per_sec`` / ``max_queue_depth`` — how fast
  and how big the *simulator* ran (the scalability of the tool);
* ``virtual_wall_s`` / ``computation_s`` / ``visible_io_s`` — what the
  simulated machine spent (the scalability of the modeled system;
  ``computation_s`` includes time blocked in collectives, which is
  where O(P) -> O(log P) shows up).

``run_scalebench`` attaches per-point speedups against a committed
baseline payload when one of matching size is supplied, and
``check_scale_regressions`` turns them into a CI gate exactly like
:func:`repro.bench.perf.check_regressions` does for the
microbenchmarks.  Quick mode runs the 128-client point only (a size a
CI box absorbs) against ``BENCH_scaling_baseline_quick.json``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional, Sequence

__all__ = [
    "STRONG_POINTS",
    "QUICK_POINTS",
    "bench_scale_point",
    "run_scalebench",
    "attach_scale_speedups",
    "check_scale_regressions",
    "load_scale_baseline",
    "render_scale",
    "DEFAULT_SCALE_BASELINE_PATH",
    "DEFAULT_SCALE_QUICK_BASELINE_PATH",
]

#: Committed numbers the full and quick suites compare against.
DEFAULT_SCALE_BASELINE_PATH = os.path.join(
    "bench_results", "BENCH_scaling_baseline.json"
)
DEFAULT_SCALE_QUICK_BASELINE_PATH = os.path.join(
    "bench_results", "BENCH_scaling_baseline_quick.json"
)

#: Client counts for the full sweep and the CI quick pass.
STRONG_POINTS = (64, 128, 256, 512, 1024)
QUICK_POINTS = (128,)

#: The paper fixes the Rocpanda client:server ratio at 8:1.
_RATIO = 8


def _strong_workload():
    # Table 1's strong-scaling workload, shrunk to the acceptance size
    # (scale=0.05, 40 steps, 5 output phases) and repartitioned onto
    # 1024 fluid + 1024 solid blocks so 1024 clients each own >= 1.
    from ..genx.workloads import lab_scale_motor

    return lab_scale_motor(
        scale=0.05,
        steps=40,
        snapshot_interval=10,
        nblocks_fluid=1024,
        nblocks_solid=1024,
    )


def _weak_workload():
    # Frost-style weak scaling: a small fixed share per client so the
    # 1024-point job stays affordable while total data grows 16x over
    # the sweep.
    from ..genx.workloads import scalability_cylinder

    return scalability_cylinder(
        per_client_bytes=0.25 * 1024 * 1024,
        blocks_per_client_fluid=2,
        blocks_per_client_solid=1,
        steps=12,
        snapshot_interval=4,
    )


def bench_scale_point(
    workload, nclients: int, seed: int = 100, prefix: str = "scale"
) -> Dict[str, Any]:
    """Run one Rocpanda job at ``nclients`` and report both clocks."""
    from ..cluster.machine import Machine
    from ..cluster.presets import turing
    from ..genx.driver import GENxConfig, run_genx

    nservers = max(1, nclients // _RATIO)
    nranks = nclients + nservers
    # Turing's historical 208 nodes hold 416 ranks; larger jobs get a
    # proportionally larger simulated cluster with the same calibration.
    nnodes = max(208, (nranks + 1) // 2)
    machine = Machine(turing(nnodes=nnodes), seed=seed)
    t0 = time.perf_counter()
    result = run_genx(
        machine,
        nranks,
        GENxConfig(
            workload=workload,
            io_mode="rocpanda",
            nservers=nservers,
            prefix=f"{prefix}_{nclients}",
        ),
    )
    host_wall = time.perf_counter() - t0
    env = machine.env
    return {
        "nclients": nclients,
        "nservers": nservers,
        "nranks": nranks,
        "host_wall_s": round(host_wall, 3),
        "virtual_wall_s": round(result.wall_time, 6),
        "computation_s": round(result.computation_time, 6),
        "visible_io_s": round(result.visible_io_time, 6),
        "events_processed": int(env.events_processed),
        "events_per_sec": round(env.events_processed / host_wall, 1)
        if host_wall > 0
        else float("inf"),
        "max_queue_depth": int(env.max_queue_depth),
    }


def load_scale_baseline(path: str) -> Optional[Dict]:
    """Load a committed scaling baseline payload, or None when absent."""
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def run_scalebench(
    quick: bool = False,
    baseline: Optional[Dict] = None,
    points: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """Run both curves; returns the ``BENCH_scaling.json`` payload."""
    pts = list(points) if points is not None else list(
        QUICK_POINTS if quick else STRONG_POINTS
    )
    strong_workload = _strong_workload()
    weak_workload = _weak_workload()
    strong = [
        bench_scale_point(strong_workload, n, prefix="sstrong") for n in pts
    ]
    weak = [bench_scale_point(weak_workload, n, prefix="sweak") for n in pts]

    payload: Dict[str, Any] = {
        "schema": "scalebench-v1",
        "quick": quick,
        "points": pts,
        "strong": strong,
        "weak": weak,
    }

    attach_scale_speedups(payload, baseline)
    return payload


def attach_scale_speedups(
    payload: Dict[str, Any], baseline: Optional[Dict]
) -> Dict[str, Any]:
    """Attach per-point host-wall and event-rate speedups vs ``baseline``.

    A baseline measured on a different point set (quick vs full) is
    ignored rather than compared — rates from different sweeps would
    report phantom regressions.  ``<curve>_<n>`` entries compare host
    wall (bigger = faster); ``<curve>_<n>_events_per_sec`` entries
    compare the host event rate, the PR-8 headline metric.
    """
    if baseline is None or baseline.get("points") != payload["points"]:
        return payload
    speedups: Dict[str, float] = {}
    for curve in ("strong", "weak"):
        base_by_n = {p["nclients"]: p for p in baseline.get(curve, [])}
        for point in payload[curve]:
            base = base_by_n.get(point["nclients"])
            if not base or not base.get("host_wall_s"):
                continue
            if not point["host_wall_s"]:
                continue
            speedups[f"{curve}_{point['nclients']}"] = round(
                base["host_wall_s"] / point["host_wall_s"], 3
            )
            if base.get("events_per_sec") and point.get("events_per_sec"):
                speedups[f"{curve}_{point['nclients']}_events_per_sec"] = round(
                    point["events_per_sec"] / base["events_per_sec"], 3
                )
    payload["baseline"] = baseline
    payload["speedup_vs_baseline"] = speedups
    return payload


def check_scale_regressions(
    payload: Dict[str, Any], threshold: float = 0.25
) -> list:
    """Points slower than ``1 - threshold`` x the committed baseline.

    Returns ``(name, speedup)`` pairs for every curve point whose
    host-wall speedup falls below the floor; empty when no baseline of
    matching size was attached or nothing regressed.
    """
    speedups = payload.get("speedup_vs_baseline", {})
    floor = 1.0 - threshold
    return [
        (name, s)
        for name, s in sorted(speedups.items())
        if s is not None and s < floor
    ]


def render_scale(payload: Dict[str, Any]) -> str:
    """Plain-text table of both curves (and speedups if present)."""
    from .report import render_table

    speedups = payload.get("speedup_vs_baseline", {})
    rows = []
    for curve in ("strong", "weak"):
        for p in payload[curve]:
            rows.append([
                curve,
                p["nclients"],
                p["nranks"],
                p["host_wall_s"],
                p["virtual_wall_s"],
                p["computation_s"],
                p["visible_io_s"],
                p["events_per_sec"],
                p["max_queue_depth"],
                speedups.get(f"{curve}_{p['nclients']}"),
            ])
    return render_table(
        [
            "curve", "clients", "ranks", "host wall (s)", "virt wall (s)",
            "compute (s)", "visible I/O (s)", "events/s", "max queue",
            "speedup vs baseline",
        ],
        rows,
        title="scalebench — simulator scaling, 64 -> 1024 ranks (Rocpanda)",
    )
