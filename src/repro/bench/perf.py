"""Wall-clock microbenchmark harness for the simulator's hot paths.

Everything else in :mod:`repro.bench` measures *virtual* time — what the
simulated Turing/Frost machines would have spent.  This module measures
*wall-clock* time: how fast the simulator itself chews through events,
messages, and bytes.  That number caps how large a scenario we can
afford to simulate (the Fig 3a sweep at 480 processors runs millions of
DES events), so it is tracked PR-over-PR as ``BENCH_perf.json``.

Benchmarks:

* ``des_events`` — DES kernel event throughput (timeout alloc +
  schedule + heap pop + generator resume per event);
* ``mailbox_backlog`` / ``mailbox_waiters`` — vmpi matching throughput
  against a deep backlog / a deep selective-waiter list, for both the
  production matcher and the reference linear-scan matcher;
* ``vmpi_msgrate`` — end-to-end message rate through the full
  ``Comm.send``/``recv`` stack (fan-in with source-selective receives,
  the Rocpanda server pattern), again for both matchers;
* ``codec_encode`` / ``codec_decode`` / ``codec_decode_zero_copy`` —
  SHDF codec bandwidth in MB/s;
* ``ship_batched`` / ``ship_perblock`` — Rocpanda client→server block
  shipping through the full stack (Roccom call, pack, vmpi flights,
  server ingest + write), for both the two-phase batched path and the
  per-block executable spec;
* ``restart_twophase`` / ``restart_perblock`` — Rocpanda collective
  restart through the full stack (server scan, bulk or per-block
  reads, reply flights, client apply), for both the two-phase sieved
  path and the per-block executable spec;
* ``vfs_coalesce`` / ``vfs_percall`` — SHDF dataset writes through the
  write-coalescing scheduler vs one ``fs.write`` per dataset;
* ``vfs_read_coalesce`` — SHDF dataset reads through the structural
  scan + read-coalescing scheduler (one directory pass, sieved merged
  ``fs.read`` calls);
* ``tier_absorb_burst`` / ``tier_absorb_direct`` — the same coalesced
  SHDF write stream through the burst-buffer storage tier vs the bare
  filesystem, drain barrier included (the simulator-overhead cost of
  the tier bookkeeping);
* ``tier_drain_overlap`` — the tier under pressure: capacity below one
  snapshot, so every run crosses the watermarks, evicts clean files
  and spills synchronously while the drain works behind;
* ``table1_64p`` — one end-to-end wall-clock run of the Table 1
  experiment at 64 compute processors (the acceptance workload).

``run_perfbench`` executes the suite and, when a baseline payload is
supplied (normally the committed ``BENCH_perf_baseline.json`` captured
before the matching/DES/codec optimizations), attaches per-benchmark
speedup factors so the before/after comparison ships with the numbers.
``check_regressions`` turns those speedups into a CI gate.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Any, Callable, Dict, Optional

import numpy as np

__all__ = [
    "bench_des_events",
    "bench_des_dispatch",
    "bench_bulk_delivery",
    "bench_mailbox_backlog",
    "bench_mailbox_waiters",
    "bench_vmpi_msgrate",
    "bench_codec",
    "bench_ship",
    "bench_restart",
    "bench_vfs_coalesce",
    "bench_vfs_read_coalesce",
    "bench_tier_absorb",
    "bench_tier_drain_overlap",
    "bench_table1_e2e",
    "run_perfbench",
    "profile_stats",
    "check_regressions",
    "load_baseline",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_QUICK_BASELINE_PATH",
]

#: Committed pre-optimization numbers this harness compares against.
DEFAULT_BASELINE_PATH = os.path.join("bench_results", "BENCH_perf_baseline.json")
#: Quick-size counterpart (``--quick`` runs use smaller workloads, so
#: size-dependent rates like codec MB/s cannot be compared to the full
#: baseline).
DEFAULT_QUICK_BASELINE_PATH = os.path.join(
    "bench_results", "BENCH_perf_baseline_quick.json"
)


def _timed(fn: Callable[[], int]) -> Dict[str, float]:
    """Run ``fn`` (returns an op count) and report ops/sec.

    Garbage collection is paused for the measurement (the same policy
    as ``timeit``): a collection pause is milliseconds long, which at
    quick sizes is the whole benchmark, and whether one lands inside
    the timed region is a coin flip that the regression gate would
    otherwise inherit.
    """
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        ops = fn()
        seconds = time.perf_counter() - t0
    finally:
        if was_enabled:
            gc.enable()
    return {
        "ops": int(ops),
        "seconds": round(seconds, 6),
        "ops_per_sec": round(ops / seconds, 2) if seconds > 0 else float("inf"),
    }


# -- DES kernel -------------------------------------------------------------

def bench_des_events(nevents: int = 200_000) -> Dict[str, float]:
    """Timeout-chain throughput: one alloc/schedule/pop/resume per event."""
    from ..des import Environment

    env = Environment()

    def ticker():
        timeout = env.timeout
        for _ in range(nevents):
            yield timeout(1.0)

    env.process(ticker(), name="ticker")

    def run() -> int:
        env.run()
        return nevents

    return _timed(run)


def bench_des_dispatch(nevents: int = 200_000, queue: str = "bucketed") -> Dict[str, float]:
    """Raw schedule+pop dispatch rate through one queue implementation.

    The fill mixes same-``(time, priority)`` bursts (the tree-collective
    / coalesced-flush shape that the bucketed queue turns into deque
    appends) with distinct-key singletons (pure heap churn), so the
    bucketed/heapq pair quantifies the queue-structure win in isolation
    from process-resume cost.
    """
    from ..des import NORMAL, Environment, Event

    env = Environment(queue=queue)

    def run() -> int:
        schedule = env.schedule
        n = 0
        delay = 1.0
        while n < nevents:
            for _ in range(16):  # one same-key burst
                ev = Event(env)
                ev._ok = True
                ev._value = None
                schedule(ev, NORMAL, delay)
                n += 1
            delay += 0.5
            for _ in range(8):  # distinct-key singletons
                ev = Event(env)
                ev._ok = True
                ev._value = None
                schedule(ev, NORMAL, delay)
                delay += 0.25
                n += 1
        env.run()
        return n

    return _timed(run)


def bench_bulk_delivery(
    ndeliveries: int = 200_000, fanout: int = 64, queue: str = "bucketed"
) -> Dict[str, float]:
    """Same-timestamp callback fan-out via :meth:`Environment.schedule_callback`.

    The bucketed queue fuses each ``fanout``-sized burst into one bulk
    entry dispatched in a single pop; the heapq spec pays one entry per
    callback.  ``events_processed`` counts the fan-out identically on
    both, so the ops/sec ratio is the pure fusion win.
    """
    from ..des import Environment

    env = Environment(queue=queue)

    def _sink(_arg) -> None:
        return None

    def run() -> int:
        sc = env.schedule_callback
        n = 0
        delay = 1.0
        while n < ndeliveries:
            for _ in range(fanout):
                sc(_sink, n, delay=delay)
                n += 1
            delay += 1.0
        env.run()
        assert env.events_processed == n
        return n

    return _timed(run)


# -- vmpi matching ----------------------------------------------------------

def _make_envelope(src: int, tag: int, seq: int):
    from ..vmpi.datatypes import Envelope

    return Envelope(
        comm_id=0, src=src, dst=0, tag=tag,
        payload=None, nbytes=64, mode="eager", seq=seq,
    )


def _resolve_mailbox(mailbox: str):
    from ..vmpi import mailbox as mb

    if mailbox == "reference":
        return getattr(mb, "LinearScanMailbox", mb.Mailbox)
    return mb.Mailbox


def bench_mailbox_backlog(
    nsources: int = 64, rounds: int = 60, mailbox: str = "indexed"
) -> Dict[str, float]:
    """Deliver a full backlog, then take source-selectively in reverse.

    A linear matcher scans (and ``del``-shifts) deep into the arrival
    list for every take; an indexed matcher pops per-key deques.
    """
    from ..des import Environment

    cls = _resolve_mailbox(mailbox)
    env = Environment()
    box = cls(env)

    def run() -> int:
        seq = 0
        for r in range(rounds):
            for s in range(nsources):
                seq += 1
                box.deliver(_make_envelope(s, r, seq))
            for s in reversed(range(nsources)):
                assert box.take(s, r) is not None
        return rounds * nsources

    return _timed(run)


def bench_mailbox_waiters(
    nsources: int = 64, rounds: int = 60, mailbox: str = "indexed"
) -> Dict[str, float]:
    """Post selective waiters, then deliver in worst-case order.

    Exercises the waiter-rescan loop: every delivery re-examines the
    pending waiter list (O(waiters x items) in the reference matcher).
    """
    from ..des import Environment

    cls = _resolve_mailbox(mailbox)
    env = Environment()
    box = cls(env)

    def run() -> int:
        for r in range(rounds):
            events = [box.get_matching(s, r) for s in range(nsources)]
            for s in reversed(range(nsources)):
                box.deliver(_make_envelope(s, r, s + 1))
            env.run()
            assert all(e.triggered for e in events)
        return rounds * nsources

    return _timed(run)


def bench_vmpi_msgrate(
    nranks: int = 32, nmsgs: int = 40, mailbox: str = "indexed"
) -> Dict[str, float]:
    """Fan-in message rate through the full Comm stack.

    ``nranks - 1`` senders stream eager messages at rank 0, which
    receives source-selectively from the highest rank down — the
    Rocpanda server pattern (probe/receive specific clients while a
    backlog of other clients' requests is pending).
    """
    from ..cluster import Machine, testbox
    from ..vmpi.launcher import Job

    cls = _resolve_mailbox(mailbox)
    machine = Machine(testbox(nnodes=8, cpus_per_node=8), seed=0)
    total = (nranks - 1) * nmsgs

    def main(ctx):
        if ctx.rank == 0:
            for m in range(nmsgs):
                for src in range(ctx.world.size - 1, 0, -1):
                    yield from ctx.world.recv(source=src, tag=m)
        else:
            payload = b"x" * 64
            for m in range(nmsgs):
                yield from ctx.world.send(payload, dest=0, tag=m)

    job = Job(machine, nranks, mailbox_factory=cls)

    def run() -> int:
        job.run(main)
        return total

    return _timed(run)


# -- SHDF codec -------------------------------------------------------------

def _codec_image(ndatasets: int = 16, nbytes_each: int = 1 << 20):
    from ..shdf.model import Dataset, FileImage

    rng = np.random.default_rng(7)
    image = FileImage({"run": "perfbench", "step": 0})
    n = nbytes_each // 8
    for i in range(ndatasets):
        data = rng.standard_normal(n)
        image.add(Dataset(f"win/b{i:04d}/field", data, {"ncomp": 1, "unit": "Pa"}))
    return image


def bench_codec(
    ndatasets: int = 16, nbytes_each: int = 1 << 20, repeats: int = 8
) -> Dict[str, Dict[str, float]]:
    """SHDF encode/decode bandwidth (MB/s) over a multi-dataset image."""
    from ..shdf.codec import decode_file, encode_file
    import inspect

    image = _codec_image(ndatasets, nbytes_each)
    buf = bytes(encode_file(image))
    total_mb = len(buf) / (1024 * 1024)

    def report(fn) -> Dict[str, float]:
        t0 = time.perf_counter()
        for _ in range(repeats):
            fn()
        seconds = time.perf_counter() - t0
        return {
            "mbytes": round(total_mb, 3),
            "repeats": repeats,
            "seconds": round(seconds, 6),
            "mb_per_sec": round(total_mb * repeats / seconds, 2),
        }

    out = {"encode": report(lambda: encode_file(image))}
    out["decode"] = report(lambda: decode_file(buf))
    # Zero-copy decode exists only after the codec optimization; report
    # it when available so baselines from older trees still load.
    if "copy" in inspect.signature(decode_file).parameters:
        out["decode_zero_copy"] = report(lambda: decode_file(buf, copy=False))
    return out


# -- I/O stack --------------------------------------------------------------

def bench_ship(
    nblocks: int = 24,
    nsnapshots: int = 4,
    cells: int = 2048,
    batched: bool = True,
) -> Dict[str, float]:
    """Block shipping rate (blocks/sec) through the full Rocpanda stack.

    One client streams ``nsnapshots`` snapshots of ``nblocks`` blocks at
    one server: Roccom interface call, marshalling, vmpi flights, server
    ingest and SHDF write all included.  ``batched`` selects two-phase
    shipping vs the per-block executable spec — the pair quantifies the
    aggregation win at identical virtual behaviour.
    """
    from ..cluster import Machine, testbox
    from ..io import PandaServer, RocpandaModule, rocpanda_init
    from ..roccom import AttributeSpec, LOC_ELEMENT, Roccom
    from ..vmpi import run_spmd

    rng = np.random.default_rng(11)
    fields = [rng.random(cells) for _ in range(nblocks)]

    def main(ctx):
        topo = yield from rocpanda_init(ctx, 1)
        if topo.is_server:
            yield from PandaServer(ctx, topo).run()
            return
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo, batched=batched))
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("f", LOC_ELEMENT))
        for i in range(nblocks):
            w.register_pane(i, 0, cells)
            w.set_array("f", i, fields[i])
        for snap in range(nsnapshots):
            yield from com.call_function(
                "OUT.write_attribute", "W", None, f"ship_{snap:03d}"
            )
        yield from panda.finalize()

    def run() -> int:
        machine = Machine(testbox(), seed=0)
        run_spmd(machine, 2, main)
        return nblocks * nsnapshots

    return _timed(run)


def bench_restart(
    nblocks: int = 24,
    cells: int = 2048,
    repeats: int = 3,
    batched_restart: bool = True,
) -> Dict[str, float]:
    """Collective restart rate (blocks/sec) through the full Rocpanda stack.

    One server writes a snapshot once (setup, untimed); the timed part
    runs ``repeats`` fresh restart jobs against that disk — request
    collection, server-side file scan (sieved bulk regions or the
    per-dataset loop), reply flights, and client-side block apply all
    included.  ``batched_restart`` selects the two-phase collective
    read vs the per-block executable spec.
    """
    from ..cluster import Machine, testbox
    from ..io import PandaServer, RocpandaModule, rocpanda_init
    from ..roccom import AttributeSpec, LOC_ELEMENT, Roccom
    from ..vmpi import run_spmd

    rng = np.random.default_rng(17)
    fields = [rng.random(cells) for _ in range(nblocks)]

    def write_main(ctx):
        topo = yield from rocpanda_init(ctx, 1)
        if topo.is_server:
            yield from PandaServer(ctx, topo).run()
            return
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("f", LOC_ELEMENT))
        for i in range(nblocks):
            w.register_pane(i, 0, cells)
            w.set_array("f", i, fields[i])
        yield from com.call_function("OUT.write_attribute", "W", None, "rst")
        yield from com.call_function("OUT.sync")
        yield from panda.finalize()

    def restart_main(ctx):
        topo = yield from rocpanda_init(ctx, 1)
        if topo.is_server:
            yield from PandaServer(ctx, topo).run()
            return 0
        com = Roccom(ctx)
        panda = com.load_module(
            RocpandaModule(ctx, topo, batched_restart=batched_restart)
        )
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("f", LOC_ELEMENT))
        for i in range(nblocks):
            w.register_pane(i, 0, cells)
        ids = yield from com.call_function("OUT.read_attribute", "W", None, "rst")
        yield from panda.finalize()
        return len(ids)

    machine = Machine(testbox(), seed=0)
    run_spmd(machine, 2, write_main)

    def run() -> int:
        restored = 0
        for r in range(repeats):
            rm = Machine(testbox(), seed=1 + r, disk=machine.disk)
            result = run_spmd(rm, 2, restart_main)
            restored += sum(result.returns)
        assert restored == nblocks * repeats
        return restored

    return _timed(run)


def bench_vfs_coalesce(
    ndatasets: int = 256, cells: int = 512, repeats: int = 4,
    coalesce: bool = True,
) -> Dict[str, float]:
    """SHDF dataset write rate (datasets/sec) with and without coalescing.

    ``coalesce`` routes the whole file through
    :meth:`~repro.shdf.file.SHDFWriter.write_records` (one merged
    VirtualDisk transfer via the write-coalescing scheduler); off, each
    dataset pays its own ``fs.write`` — the pre-aggregation path.
    """
    from ..des import Environment
    from ..fs import NFSModel
    from ..shdf.codec import encode_dataset
    from ..shdf.drivers import hdf4_driver
    from ..shdf.file import SHDFWriter
    from ..shdf.model import Dataset

    rng = np.random.default_rng(13)
    datasets = [
        Dataset(f"W/b{i:04d}/f", rng.random(cells), {"ncomp": 1})
        for i in range(ndatasets)
    ]

    def run() -> int:
        env = Environment()
        fs = NFSModel(env)

        def writes():
            for r in range(repeats):
                writer = SHDFWriter(env, fs, f"co_{r}.shdf", hdf4_driver())
                yield from writer.open()
                if coalesce:
                    yield from writer.write_records(
                        [(d.name, encode_dataset(d), d.nbytes) for d in datasets]
                    )
                else:
                    for d in datasets:
                        yield from writer.write_dataset(d)
                yield from writer.close()

        env.process(writes(), name="writes")
        env.run()
        return ndatasets * repeats

    return _timed(run)


def bench_vfs_read_coalesce(
    ndatasets: int = 256, cells: int = 512, repeats: int = 4,
) -> Dict[str, float]:
    """SHDF dataset read rate (datasets/sec) through the sieved path.

    The read-side mirror of :func:`bench_vfs_coalesce`: one file is
    written (coalesced, part of the timed work but amortized over the
    repeats), then each repeat re-opens it by structural scan and pulls
    every dataset through :meth:`~repro.shdf.file.SHDFReader.read_batch`
    — one directory pass plus merged ``fs.read`` calls via the
    read-coalescing scheduler.
    """
    from ..des import Environment
    from ..fs import NFSModel
    from ..shdf.codec import encode_dataset
    from ..shdf.drivers import hdf4_driver
    from ..shdf.file import SHDFReader, SHDFWriter
    from ..shdf.model import Dataset

    rng = np.random.default_rng(19)
    datasets = [
        Dataset(f"W/b{i:04d}/f", rng.random(cells), {"ncomp": 1})
        for i in range(ndatasets)
    ]

    def run() -> int:
        env = Environment()
        fs = NFSModel(env)

        def reads():
            writer = SHDFWriter(env, fs, "rd.shdf", hdf4_driver())
            yield from writer.open()
            yield from writer.write_records(
                [(d.name, encode_dataset(d), d.nbytes) for d in datasets]
            )
            yield from writer.close()
            for _ in range(repeats):
                reader = SHDFReader(env, fs, "rd.shdf", hdf4_driver())
                yield from reader.open_scan()
                out = yield from reader.read_batch()
                assert len(out) == ndatasets
                yield from reader.close()

        env.process(reads(), name="reads")
        env.run()
        return ndatasets * repeats

    return _timed(run)


def bench_tier_absorb(
    ndatasets: int = 256, cells: int = 512, repeats: int = 4,
    tier: str = "burst",
) -> Dict[str, float]:
    """SHDF dataset write rate (datasets/sec) through a storage tier.

    The tier-side mirror of :func:`bench_vfs_coalesce`: the same
    coalesced ``write_records`` stream, but the filesystem is fronted
    by the burst buffer (``tier="burst"``) or left bare
    (``tier="direct"``), and the run ends with the drain barrier so
    both variants pay for full durability.  The pair prices the
    simulator-side cost of the tier bookkeeping (mutation
    notifications, journal, drain process) — the *virtual-time* win is
    Table 1's job, not this one's.
    """
    from ..des import Environment
    from ..fs import BurstBufferTier, NFSModel
    from ..shdf.codec import encode_dataset
    from ..shdf.drivers import hdf4_driver
    from ..shdf.file import SHDFWriter
    from ..shdf.model import Dataset

    rng = np.random.default_rng(23)
    datasets = [
        Dataset(f"W/b{i:04d}/f", rng.random(cells), {"ncomp": 1})
        for i in range(ndatasets)
    ]

    def run() -> int:
        env = Environment()
        fs = NFSModel(env)
        if tier == "burst":
            fs = BurstBufferTier(env, fs)

        def writes():
            for r in range(repeats):
                writer = SHDFWriter(env, fs, f"tier_{r}.shdf", hdf4_driver())
                yield from writer.open()
                yield from writer.write_records(
                    [(d.name, encode_dataset(d), d.nbytes) for d in datasets]
                )
                yield from writer.close()
            barrier = getattr(fs, "drain_barrier", None)
            if barrier is not None:
                yield from barrier()
                assert fs.backlog_bytes == 0

        env.process(writes(), name="writes")
        env.run()
        return ndatasets * repeats

    return _timed(run)


def bench_tier_drain_overlap(
    ndatasets: int = 256, cells: int = 512, repeats: int = 4,
) -> Dict[str, float]:
    """Tier write rate under pressure (datasets/sec): capacity below
    one snapshot, drain chunked small.

    Every repeat crosses the high watermark, evicts clean files and
    spills dirty bytes synchronously while the drain flushes behind —
    the worst-case bookkeeping path (watermark scans, journal epochs,
    requeues) that a healthy tier only touches under backlog.
    """
    from ..des import Environment
    from ..fs import BurstBufferTier, NFSModel, TierConfig
    from ..shdf.codec import encode_dataset
    from ..shdf.drivers import hdf4_driver
    from ..shdf.file import SHDFWriter
    from ..shdf.model import Dataset

    rng = np.random.default_rng(29)
    datasets = [
        Dataset(f"W/b{i:04d}/f", rng.random(cells), {"ncomp": 1})
        for i in range(ndatasets)
    ]
    # Half a file's payload: forces eviction + spill on every repeat.
    capacity = max(4096, ndatasets * cells * 8 // 2)

    def run() -> int:
        env = Environment()
        fs = BurstBufferTier(
            env, NFSModel(env),
            TierConfig(capacity_bytes=capacity, drain_chunk_bytes=64 * 1024),
        )

        def writes():
            for r in range(repeats):
                writer = SHDFWriter(env, fs, f"ovl_{r}.shdf", hdf4_driver())
                yield from writer.open()
                yield from writer.write_records(
                    [(d.name, encode_dataset(d), d.nbytes) for d in datasets]
                )
                yield from writer.close()
                # A compute phase between snapshots: the drain overlaps.
                yield env.sleep(0.05)
            yield from fs.drain_barrier()
            assert fs.backlog_bytes == 0

        env.process(writes(), name="writes")
        env.run()
        assert fs.stats.spills + fs.stats.evictions > 0
        return ndatasets * repeats

    return _timed(run)


# -- end-to-end -------------------------------------------------------------

def bench_table1_e2e(quick: bool = False) -> Dict[str, Any]:
    """One wall-clock run of the Table 1 matrix at 64 compute procs.

    Also reports the *virtual-time* results so before/after payloads
    prove the optimizations left simulated behaviour bit-identical.
    """
    from .table1 import run_table1

    scale = 0.05 if quick else 0.25
    steps = 40 if quick else 200
    snapshot_interval = 10 if quick else 50
    t0 = time.perf_counter()
    result = run_table1(
        proc_counts=(64,), nruns=1, scale=scale,
        steps=steps, snapshot_interval=snapshot_interval,
    )
    seconds = time.perf_counter() - t0
    virtual = {
        metric: result.value(metric, 64) for metric in sorted(result.measured)
    }
    return {
        "nprocs": 64,
        "scale": scale,
        "steps": steps,
        "wall_seconds": round(seconds, 3),
        "virtual_seconds": virtual,
    }


# -- suite ------------------------------------------------------------------

def load_baseline(path: str = DEFAULT_BASELINE_PATH) -> Optional[Dict]:
    """Load a committed baseline payload, or None when absent."""
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def _speedup(after: Optional[Dict], before: Optional[Dict], key: str) -> Optional[float]:
    try:
        a, b = after[key], before[key]
    except (TypeError, KeyError):
        return None
    if not a or not b:
        return None
    return round(a / b, 3) if key.endswith("_per_sec") else round(b / a, 3)


def run_perfbench(
    quick: bool = False,
    baseline: Optional[Dict] = None,
    skip_e2e: bool = False,
) -> Dict[str, Any]:
    """Run the full suite; returns the ``BENCH_perf.json`` payload."""
    if quick:
        sizes = dict(nevents=20_000, nsources=32, rounds=10, nranks=16,
                     nmsgs=10, ndatasets=4, repeats=3,
                     ship_blocks=8, ship_snaps=2, vfs_datasets=64,
                     vfs_repeats=2, restart_blocks=8, restart_repeats=2,
                     vfs_read_datasets=64, vfs_read_repeats=2,
                     tier_datasets=64, tier_repeats=2)
    else:
        sizes = dict(nevents=200_000, nsources=64, rounds=60, nranks=32,
                     nmsgs=40, ndatasets=16, repeats=8,
                     ship_blocks=24, ship_snaps=4, vfs_datasets=256,
                     vfs_repeats=4, restart_blocks=24, restart_repeats=3,
                     vfs_read_datasets=256, vfs_read_repeats=4,
                     tier_datasets=256, tier_repeats=4)

    # Quick sizes finish in well under a millisecond per micro, where a
    # single scheduler hiccup swings the measured rate several-fold and
    # turns the CI regression gate into a coin flip.  Best-of-N strips
    # that downward noise; full sizes run long enough for one pass.
    passes = 3 if quick else 1

    def best(fn: Callable[[], Dict[str, float]]) -> Dict[str, float]:
        return min((fn() for _ in range(passes)),
                   key=lambda numbers: numbers["seconds"])

    micro: Dict[str, Any] = {}
    micro["des_events"] = best(lambda: bench_des_events(sizes["nevents"]))
    for impl in ("bucketed", "heapq"):
        micro[f"des_dispatch_{impl}"] = best(
            lambda i=impl: bench_des_dispatch(sizes["nevents"], queue=i))
        micro[f"bulk_delivery_{impl}"] = best(
            lambda i=impl: bench_bulk_delivery(sizes["nevents"], queue=i))
    for impl in ("indexed", "reference"):
        micro[f"mailbox_backlog_{impl}"] = best(
            lambda i=impl: bench_mailbox_backlog(
                sizes["nsources"], sizes["rounds"], mailbox=i))
        micro[f"mailbox_waiters_{impl}"] = best(
            lambda i=impl: bench_mailbox_waiters(
                sizes["nsources"], sizes["rounds"], mailbox=i))
        micro[f"vmpi_msgrate_{impl}"] = best(
            lambda i=impl: bench_vmpi_msgrate(
                sizes["nranks"], sizes["nmsgs"], mailbox=i))
    codec_runs = [
        bench_codec(ndatasets=sizes["ndatasets"], repeats=sizes["repeats"])
        for _ in range(passes)
    ]
    for name in codec_runs[0]:
        micro[f"codec_{name}"] = min(
            (run[name] for run in codec_runs),
            key=lambda numbers: numbers["seconds"])
    for name, batched in (("ship_batched", True), ("ship_perblock", False)):
        micro[name] = best(lambda b=batched: bench_ship(
            sizes["ship_blocks"], sizes["ship_snaps"], batched=b))
    for name, batched_restart in (
        ("restart_twophase", True), ("restart_perblock", False)
    ):
        micro[name] = best(lambda b=batched_restart: bench_restart(
            sizes["restart_blocks"], repeats=sizes["restart_repeats"],
            batched_restart=b))
    for name, coalesce in (("vfs_coalesce", True), ("vfs_percall", False)):
        micro[name] = best(lambda c=coalesce: bench_vfs_coalesce(
            sizes["vfs_datasets"], repeats=sizes["vfs_repeats"], coalesce=c))
    micro["vfs_read_coalesce"] = best(lambda: bench_vfs_read_coalesce(
        sizes["vfs_read_datasets"], repeats=sizes["vfs_read_repeats"]))
    for name, tier in (
        ("tier_absorb_burst", "burst"), ("tier_absorb_direct", "direct")
    ):
        micro[name] = best(lambda t=tier: bench_tier_absorb(
            sizes["tier_datasets"], repeats=sizes["tier_repeats"], tier=t))
    micro["tier_drain_overlap"] = best(lambda: bench_tier_drain_overlap(
        sizes["tier_datasets"], repeats=sizes["tier_repeats"]))

    payload: Dict[str, Any] = {
        "schema": "perfbench-v1",
        "quick": quick,
        "sizes": sizes,
        "micro": micro,
    }
    if not skip_e2e:
        payload["e2e"] = {"table1_64p": bench_table1_e2e(quick=quick)}

    if baseline is not None and baseline.get("sizes") != sizes:
        # A quick run against a full baseline (or vice versa) would
        # compare rates measured on different workload sizes; drop the
        # comparison rather than report phantom regressions.
        baseline = None
    if baseline is not None:
        speedups: Dict[str, Any] = {}
        base_micro = baseline.get("micro", {})
        for name, numbers in micro.items():
            s = _speedup(numbers, base_micro.get(name), "ops_per_sec")
            if s is None:
                s = _speedup(numbers, base_micro.get(name), "mb_per_sec")
            if s is not None:
                speedups[name] = s
        base_e2e = baseline.get("e2e", {}).get("table1_64p")
        if not skip_e2e and base_e2e:
            s = _speedup(payload["e2e"]["table1_64p"], base_e2e, "wall_seconds")
            if s is not None:
                speedups["table1_64p_wall"] = s
        payload["baseline"] = baseline
        payload["speedup_vs_baseline"] = speedups
    return payload


def profile_stats(profiler, top: int = 20) -> str:
    """Render a cProfile run as its top-``top`` cumulative-time lines."""
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def check_regressions(
    payload: Dict[str, Any], threshold: float = 0.25
) -> list:
    """Micros slower than ``1 - threshold`` x the committed baseline.

    Returns ``(name, speedup)`` pairs for every microbenchmark whose
    ``speedup_vs_baseline`` entry falls below the floor (e.g. with the
    default 0.25, anything slower than 0.75x baseline).  Empty when no
    baseline was attached or nothing regressed.  The end-to-end wall
    number is excluded: it is the *acceptance* metric, judged on its
    own target, and too noisy for a hard per-run gate at quick sizes.
    """
    speedups = payload.get("speedup_vs_baseline", {})
    floor = 1.0 - threshold
    return [
        (name, s)
        for name, s in sorted(speedups.items())
        if name != "table1_64p_wall" and s is not None and s < floor
    ]


def render_perf(payload: Dict[str, Any]) -> str:
    """Plain-text table of the suite's numbers (and speedups if present)."""
    from .report import render_table

    speedups = payload.get("speedup_vs_baseline", {})
    rows = []
    for name, numbers in payload["micro"].items():
        rate = numbers.get("ops_per_sec") or numbers.get("mb_per_sec")
        unit = "ops/s" if "ops_per_sec" in numbers else "MB/s"
        rows.append([name, rate, unit, numbers["seconds"], speedups.get(name)])
    e2e = payload.get("e2e", {}).get("table1_64p")
    if e2e:
        rows.append([
            "table1_64p (e2e)", e2e["wall_seconds"], "s wall", e2e["wall_seconds"],
            speedups.get("table1_64p_wall"),
        ])
    return render_table(
        ["benchmark", "rate", "unit", "seconds", "speedup vs baseline"],
        rows,
        title="perfbench — simulator wall-clock hot paths",
    )
