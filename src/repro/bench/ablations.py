"""Ablation studies of the design choices DESIGN.md calls out.

* A1 — active buffering on/off (the §6.1 mechanism);
* A2 — HDF4 vs HDF5 driver scaling with the number of datasets per
  file (the [13] observation the I/O architecture choices lean on),
  plus the driver x storage-tier matrix (the burst buffer sits below
  the format layer, so its win must be driver-independent);
* A3 — client:server ratio sweep (the paper fixes >= 8:1);
* A4 — server buffer-size sweep (graceful overflow handling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..cluster.machine import Machine
from ..cluster.presets import turing
from ..des import Environment
from ..fs.models import NFSModel
from ..genx.driver import GENxConfig, run_genx
from ..genx.workloads import lab_scale_motor
from ..io.rocpanda import ServerConfig
from ..shdf.drivers import HDFDriver, hdf4_driver, hdf5_driver
from ..shdf.file import SHDFReader, SHDFWriter
from ..shdf.model import Dataset
from ..util.units import MB
from .report import render_series, render_table

__all__ = [
    "run_active_buffering_ablation",
    "run_hdf_driver_scaling",
    "run_driver_tier_matrix",
    "run_ratio_sweep",
    "run_buffer_size_sweep",
    "run_client_buffering_ablation",
    "run_load_balancing_ablation",
]


def _small_motor(scale=0.2, steps=20, interval=10):
    return lab_scale_motor(
        scale=scale, nblocks_fluid=64, nblocks_solid=32,
        steps=steps, snapshot_interval=interval,
    )


def run_active_buffering_ablation(
    nclients: int = 32, nservers: int = 4, seed: int = 900
) -> Dict[str, float]:
    """A1: visible I/O time with and without active buffering."""
    workload = _small_motor()
    out = {}
    for label, buffering in (("buffered", True), ("write_through", False)):
        machine = Machine(turing(), seed=seed)
        result = run_genx(
            machine,
            nclients + nservers,
            GENxConfig(
                workload=workload,
                io_mode="rocpanda",
                nservers=nservers,
                prefix=f"a1_{label}",
                server_config=ServerConfig(active_buffering=buffering),
            ),
        )
        out[label] = result.visible_io_time
    return out


def run_hdf_driver_scaling(
    dataset_counts: Sequence[int] = (50, 200, 800, 3200),
    dataset_bytes: int = 8192,
) -> Dict[str, Dict[int, Tuple[float, float]]]:
    """A2: (write_time, read_time) per driver vs datasets per file.

    Pure SHDF + NFS micro-benchmark, no GENx in the loop.
    """
    out: Dict[str, Dict[int, Tuple[float, float]]] = {}
    for driver_factory in (hdf4_driver, hdf5_driver):
        driver = driver_factory()
        out[driver.name] = {}
        for count in dataset_counts:
            env = Environment()
            fs = NFSModel(env, write_bw=200 * MB, read_bw=200 * MB)
            data = np.zeros(dataset_bytes // 8)

            def program():
                writer = SHDFWriter(env, fs, "a2.shdf", driver)
                yield from writer.open()
                for i in range(count):
                    yield from writer.write_dataset(Dataset(f"d{i}", data))
                yield from writer.close()
                t_write = env.now
                reader = SHDFReader(env, fs, "a2.shdf", driver)
                yield from reader.open()
                yield from reader.read_all()
                yield from reader.close()
                return t_write, env.now - t_write

            proc = env.process(program())
            env.run(until=proc)
            out[driver.name][count] = proc.value
    return out


def run_driver_tier_matrix(
    ndatasets: int = 800,
    dataset_bytes: int = 8192,
    drivers=(hdf4_driver, hdf5_driver),
    tiers: Sequence[str] = ("direct", "burst"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """A2b: driver x storage-tier matrix — visible write vs durable time.

    The same pure SHDF + NFS micro as :func:`run_hdf_driver_scaling`,
    crossed with the storage tier: ``direct`` pays the backing cost in
    the visible write; ``burst`` absorbs at memory bandwidth and drains
    behind, so the visible number collapses while ``durable_s`` (when
    the drain barrier releases) stays at backing cost.  The tier sits
    *below* the format drivers, so the visible-write ratio between the
    tiers should be of the same order for HDF4 and HDF5 — that
    driver-independence is what this matrix checks.
    """
    from ..fs.tiers import BurstBufferTier

    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for driver_factory in drivers:
        driver = driver_factory()
        out[driver.name] = {}
        for tier in tiers:
            env = Environment()
            fs = NFSModel(env, write_bw=200 * MB, read_bw=200 * MB)
            if tier == "burst":
                fs = BurstBufferTier(env, fs)
            data = np.zeros(dataset_bytes // 8)

            def program():
                writer = SHDFWriter(env, fs, "a2t.shdf", driver)
                yield from writer.open()
                for i in range(ndatasets):
                    yield from writer.write_dataset(Dataset(f"d{i}", data))
                yield from writer.close()
                t_visible = env.now
                barrier = getattr(fs, "drain_barrier", None)
                if barrier is not None:
                    yield from barrier()
                return t_visible, env.now

            proc = env.process(program())
            env.run(until=proc)
            t_visible, t_durable = proc.value
            out[driver.name][tier] = {
                "visible_write_s": t_visible,
                "durable_s": t_durable,
            }
    return out


def run_ratio_sweep(
    ratios: Sequence[int] = (4, 8, 16, 32),
    nclients: int = 32,
    seed: int = 920,
) -> Dict[int, Dict[str, float]]:
    """A3: client:server ratio vs visible I/O time and file count."""
    workload = _small_motor()
    out = {}
    for ratio in ratios:
        nservers = max(1, nclients // ratio)
        machine = Machine(turing(), seed=seed)
        result = run_genx(
            machine,
            nclients + nservers,
            GENxConfig(
                workload=workload,
                io_mode="rocpanda",
                nservers=nservers,
                prefix=f"a3_{ratio}",
            ),
        )
        out[ratio] = {
            "visible_io": result.visible_io_time,
            "files": float(result.files_created),
            "total_procs": float(nclients + nservers),
        }
    return out


def run_buffer_size_sweep(
    buffer_fractions: Sequence[float] = (0.05, 0.25, 1.0, 4.0),
    nclients: int = 16,
    nservers: int = 2,
    seed: int = 940,
) -> Dict[float, Dict[str, float]]:
    """A4: server buffer capacity (fraction of per-server snapshot data)
    vs visible I/O time and overflow flush count."""
    workload = _small_motor()
    # Estimate one server's share of one snapshot.
    probe = Machine(turing(), seed=seed)
    probe_result = run_genx(
        probe,
        nclients + nservers,
        GENxConfig(
            workload=workload, io_mode="rocpanda", nservers=nservers, prefix="a4p"
        ),
    )
    per_server_snapshot = (
        probe_result.bytes_written_per_snapshot / nservers
    )
    out = {}
    for fraction in buffer_fractions:
        machine = Machine(turing(), seed=seed)
        result = run_genx(
            machine,
            nclients + nservers,
            GENxConfig(
                workload=workload,
                io_mode="rocpanda",
                nservers=nservers,
                prefix=f"a4_{fraction}",
                server_config=ServerConfig(
                    buffer_bytes=max(4096, fraction * per_server_snapshot)
                ),
            ),
        )
        flushes = sum(s.stats.overflow_flushes for s in result.servers)
        out[fraction] = {
            "visible_io": result.visible_io_time,
            "overflow_flushes": float(flushes),
        }
    return out


def run_client_buffering_ablation(
    nclients: int = 16, nservers: int = 2, seed: int = 960
) -> Dict[str, float]:
    """A5: the full active-buffering hierarchy of [13].

    Server-side-only buffering (GENx's production setting) vs adding a
    client-side buffer level; visible I/O shrinks from send cost to a
    local memcpy.
    """
    workload = _small_motor()
    out = {}
    for label, client_buffering in (("server_only", False), ("client+server", True)):
        machine = Machine(turing(), seed=seed)
        result = run_genx(
            machine,
            nclients + nservers,
            GENxConfig(
                workload=workload,
                io_mode="rocpanda",
                nservers=nservers,
                prefix=f"a5_{client_buffering}",
                client_buffering=client_buffering,
            ),
        )
        out[label] = result.visible_io_time
    return out


def run_load_balancing_ablation(
    nranks: int = 4, steps: int = 24, seed: int = 980
) -> Dict[str, float]:
    """A6: dynamic load balancing repairs a bad static partition (§4.1).

    Blocks are assigned naively (contiguous chunks of the size-sorted
    list — the kind of distribution a mesh generator hands you), which
    concentrates the big blocks on one rank.  With per-step barriers the
    overloaded rank sets the pace; runtime migration flattens it.
    """
    import numpy as _np

    from ..cluster.presets import testbox
    from ..genx.loadbalance import LoadBalancer
    from ..genx.meshblock import cylinder_blocks
    from ..genx.physics import Rocflo
    from ..roccom.registry import Roccom
    from ..vmpi.launcher import run_spmd

    specs = sorted(
        cylinder_blocks(4 * nranks, 120_000, irregularity=0.9, seed=seed),
        key=lambda s: -s.ncells,
    )

    def make_main(use_lb: bool):
        def main(ctx):
            com = Roccom(ctx)
            fluid = Rocflo()
            # Naive contiguous assignment: rank 0 gets the biggest blocks.
            chunk = len(specs) // ctx.world.size
            mine = specs[ctx.rank * chunk : (ctx.rank + 1) * chunk]
            fluid.setup(com, mine, _np.random.default_rng(seed + ctx.rank))
            balancer = LoadBalancer(threshold=1.05, max_moves_per_rank=2)
            last = 0.0
            for step in range(1, steps + 1):
                yield from fluid.advance(ctx, 1e-6, step)
                yield from ctx.world.barrier()  # per-step sync
                if use_lb and step % 4 == 0:
                    load = ctx.compute_time - last
                    last = ctx.compute_time
                    yield from balancer.rebalance(
                        ctx, com, ctx.world, [fluid], load
                    )
            return ctx.now

        return main

    out = {}
    for label, use_lb in (("static", False), ("balanced", True)):
        machine = Machine(testbox(nnodes=nranks, cpus_per_node=2), seed=seed)
        result = run_spmd(machine, nranks, make_main(use_lb))
        out[label] = result.wall_time
    return out
