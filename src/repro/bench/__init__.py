"""Benchmark harness: Table 1, Fig 3(a), Fig 3(b), and ablations."""

from .ablations import (
    run_active_buffering_ablation,
    run_buffer_size_sweep,
    run_client_buffering_ablation,
    run_driver_tier_matrix,
    run_hdf_driver_scaling,
    run_load_balancing_ablation,
    run_ratio_sweep,
)
from .experiment import bench_runs, bench_scale, repeat_runs, summarize
from .faults import render_faults, run_faultbench, scenario_names
from .fig3a import Fig3aResult, run_fig3a, run_fig3a_partial_read
from .fig3b import Fig3bResult, run_fig3b
from .perf import (
    bench_codec,
    bench_des_events,
    bench_mailbox_backlog,
    bench_mailbox_waiters,
    bench_table1_e2e,
    bench_vmpi_msgrate,
    load_baseline,
    render_perf,
    run_perfbench,
)
from .report import (
    render_instrumentation,
    render_series,
    render_table,
    write_bench_json,
)
from .scale import (
    bench_scale_point,
    check_scale_regressions,
    load_scale_baseline,
    render_scale,
    run_scalebench,
)
from .table1 import Table1Result, run_table1

__all__ = [
    "run_table1",
    "Table1Result",
    "run_fig3a",
    "run_fig3a_partial_read",
    "Fig3aResult",
    "run_fig3b",
    "Fig3bResult",
    "run_active_buffering_ablation",
    "run_hdf_driver_scaling",
    "run_driver_tier_matrix",
    "run_ratio_sweep",
    "run_buffer_size_sweep",
    "run_client_buffering_ablation",
    "run_load_balancing_ablation",
    "render_table",
    "render_series",
    "render_instrumentation",
    "write_bench_json",
    "repeat_runs",
    "summarize",
    "bench_scale",
    "bench_runs",
    "run_perfbench",
    "render_perf",
    "run_faultbench",
    "render_faults",
    "scenario_names",
    "load_baseline",
    "bench_des_events",
    "bench_mailbox_backlog",
    "bench_mailbox_waiters",
    "bench_vmpi_msgrate",
    "bench_codec",
    "bench_table1_e2e",
    "run_scalebench",
    "render_scale",
    "check_scale_regressions",
    "load_scale_baseline",
    "bench_scale_point",
]
