"""Plain-text rendering of benchmark tables and series.

Also the glue between the benches and the instrumentation layer
(:mod:`repro.obs`): :func:`render_instrumentation` turns a job's
recorder into a per-module rollup table and :func:`write_bench_json`
persists the aggregated payload as a ``BENCH_<name>.json`` trajectory
file next to the rendered text.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

__all__ = [
    "render_table",
    "render_series",
    "render_instrumentation",
    "write_bench_json",
]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (paper-style rows)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence],
    title: Optional[str] = None,
) -> str:
    """Render figure data as a table: one x column + one column/series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title)


def render_instrumentation(recorder, title: Optional[str] = None) -> str:
    """Per-module rollup table of one job's instrumentation stream."""
    from ..obs import summary_payload

    payload = summary_payload(recorder)
    rows = []
    for name, mod in payload["modules"].items():
        rows.append([
            name,
            mod["visible_time"],
            mod["background_time"],
            mod["overlap_ratio"],
            mod["bytes_total"],
            mod["nrecords"],
        ])
    return render_table(
        ["module", "visible (s)", "background (s)", "overlap", "bytes", "records"],
        rows,
        title=title or "I/O instrumentation",
    )


def write_bench_json(out_dir: str, name: str, payload: Dict) -> str:
    """Write ``payload`` to ``<out_dir>/BENCH_<name>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path
