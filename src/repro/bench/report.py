"""Plain-text rendering of benchmark tables and series."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["render_table", "render_series"]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (paper-style rows)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence],
    title: Optional[str] = None,
) -> str:
    """Render figure data as a table: one x column + one column/series."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title)
