"""Faultbench: the chaos matrix for the resilience layer (fault type x I/O module).

Every scenario runs one checkpoint-write job under an injected
:mod:`repro.faults` plan, then restarts from the surviving files in a
*fresh* fault-free machine sharing the same disk, and compares the
restored arrays (as a SHA-256 digest) against a fault-free reference
run of the identical workload.  A scenario *recovers* when the digests
match bit-for-bit.  Each faulted scenario also runs twice with the same
seed; ``runs_identical`` proves the whole fault schedule — crashes,
retries, failovers and all — replays deterministically from the
:class:`~repro.cluster.Machine` seed.

The matrix exercises:

* Rocpanda: I/O-server crash mid-checkpoint (block assignments fail
  over to the surviving server and restart runs with a *different*
  server count), transient ``EIO``, disk-full windows, message
  drop/duplication/extra-delay, and a straggler node;
* Rochdf / T-Rochdf: transient ``EIO`` and disk-full windows absorbed
  by the write-retry path (for T-Rochdf, on the background I/O thread).

``run_faultbench`` also measures the *no-fault overhead* of the
resilience code: one wall-clock run of the Table 1 experiment at 64
processors, compared against the committed ``BENCH_perf.json`` number,
which must stay within noise (<= 5%).  The result ships as
``BENCH_faults.json``.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..cluster import Machine
from ..cluster import testbox as make_testbox
from ..faults import (
    DiskFull,
    FaultPlan,
    MessageFault,
    RetryPolicy,
    ServerCrash,
    Straggler,
    TransientEIO,
)
from ..fs.tiers import TierConfig
from ..shdf.drivers import apply_storage_tier
from ..io import (
    PandaServer,
    RochdfModule,
    RocpandaModule,
    ServerConfig,
    TRochdfModule,
    rocpanda_init,
)
from ..io.rocpanda.protocol import TAG_BLOCK, TAG_CTRL
from ..roccom import AttributeSpec, LOC_ELEMENT, LOC_NODE, Roccom
from ..vmpi import run_spmd
from .perf import bench_table1_e2e, load_baseline
from .report import render_table

__all__ = [
    "run_faultbench",
    "render_faults",
    "scenario_names",
    "DEFAULT_PERF_PATH",
    "OVERHEAD_BUDGET",
]

#: Committed perf numbers the no-fault overhead check compares against.
DEFAULT_PERF_PATH = os.path.join("bench_results", "BENCH_perf.json")

#: Acceptance: resilience code must cost <= 5% wall-clock when no
#: faults are injected.
OVERHEAD_BUDGET = 0.05

# Rocpanda scenario geometry: 8 procs / 2 servers (ranks 0 and 4) when
# writing, restart on 6 procs / 3 servers -- a different server count,
# so failover must preserve the round-robin block->server restart scan.
_PANDA_NPROCS = 8
_PANDA_NSERVERS = 2
_PANDA_NBLOCKS = 3  # per client => 18 blocks total
_PANDA_TOTAL_BLOCKS = (_PANDA_NPROCS - _PANDA_NSERVERS) * _PANDA_NBLOCKS
_RESTART_NPROCS = 6
_RESTART_NSERVERS = 3

# Rochdf/T-Rochdf scenario geometry: 4 writers, 2 blocks each.
_HDF_NPROCS = 4
_HDF_NBLOCKS = 2

#: Generous backoff for the disk-full scenarios: the capacity window
#: lasts 0.2 s, so the cumulative backoff (~4 s at 12 attempts) must
#: outlast it or the retries exhaust while the disk is still full.
_PATIENT_RETRY = RetryPolicy(max_attempts=12, base_delay=2e-3)

#: Burst-tier config for the drain scenarios: faults land on the
#: *backing* disk, so the write-behind drain (not the module) must
#: outlast the fault window with its own patient backoff.
_BURST_TIER = TierConfig(retry=_PATIENT_RETRY)


def _digest_blocks(blockmap: Dict[int, Dict[str, np.ndarray]]) -> str:
    """Order-independent SHA-256 over restored (block_id, array) data."""
    h = hashlib.sha256()
    for block_id in sorted(blockmap):
        h.update(str(block_id).encode())
        for name in sorted(blockmap[block_id]):
            arr = np.ascontiguousarray(blockmap[block_id][name])
            h.update(name.encode())
            h.update(arr.tobytes())
    return h.hexdigest()


def _counters(recorder) -> Dict[str, Dict[str, float]]:
    return {
        module: dict(sorted(bucket.items()))
        for module, bucket in sorted(recorder.counters.items())
    }


# -- rocpanda workload ------------------------------------------------------

def _panda_write_main(client_retry: RetryPolicy, server_config: ServerConfig):
    def main(ctx):
        topo = yield from rocpanda_init(ctx, _PANDA_NSERVERS)
        if topo.is_server:
            server = PandaServer(ctx, topo, server_config)
            stats = yield from server.run()
            return ("server", stats)
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo, retry=client_retry))
        w = com.new_window("Fluid")
        w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
        w.declare_attribute(AttributeSpec("pressure", LOC_ELEMENT))
        # Data keyed by client rank only, so the fault-free reference
        # and every faulted run write identical arrays.
        rng = np.random.default_rng(1000 + topo.comm.rank)
        for i in range(_PANDA_NBLOCKS):
            pane_id = topo.comm.rank * _PANDA_NBLOCKS + i
            nn, ne = 1200 + i, 600 + i  # ~34 KB coords => rendezvous sends
            w.register_pane(pane_id, nn, ne)
            w.set_array("coords", pane_id, rng.random((nn, 3)))
            w.set_array("pressure", pane_id, rng.random(ne))
        # Delay the write past the init collectives so injected faults
        # (scheduled at t ~= 0.05) land mid-checkpoint.
        yield from ctx.sleep(0.05)
        yield from com.call_function("OUT.write_attribute", "Fluid", None, "ck")
        yield from com.call_function("OUT.sync")
        yield from panda.finalize()
        return ("client", (panda.stats.retries, panda.stats.failovers))

    return main


def _panda_restart_main(client_retry: Optional[RetryPolicy] = None):
    per_client = _PANDA_TOTAL_BLOCKS // (_RESTART_NPROCS - _RESTART_NSERVERS)

    def main(ctx):
        topo = yield from rocpanda_init(ctx, _RESTART_NSERVERS)
        if topo.is_server:
            stats = yield from PandaServer(ctx, topo).run()
            return ("server", stats)
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo, retry=client_retry))
        w = com.new_window("Fluid")
        first = topo.comm.rank * per_client
        for pane_id in range(first, first + per_client):
            w.register_pane(pane_id, 0, 0)
        ids = yield from com.call_function("OUT.read_attribute", "Fluid", None, "ck")
        restored = {
            pid: {
                "coords": w.get_array("coords", pid).copy(),
                "pressure": w.get_array("pressure", pid).copy(),
            }
            for pid in ids
        }
        yield from panda.finalize()
        return ("client", (restored, panda.stats.retries, panda.stats.failovers))

    return main


def _run_rocpanda_scenario(
    plan: Optional[FaultPlan],
    seed: int,
    client_retry: RetryPolicy,
    server_config: ServerConfig,
    storage_tier: str = "direct",
) -> Tuple[str, Dict[str, Any]]:
    """Write under faults, restart fault-free on a different server count."""
    machine = Machine(make_testbox(nnodes=8, cpus_per_node=4), seed=seed)
    if plan is not None:
        machine.install_faults(plan)
    apply_storage_tier(machine, storage_tier, _BURST_TIER)
    result = run_spmd(
        machine, _PANDA_NPROCS, _panda_write_main(client_retry, server_config)
    )
    counters = _counters(result.recorder)
    retries = sum(r[1][0] for r in result.returns if r[0] == "client")
    failovers = sum(r[1][1] for r in result.returns if r[0] == "client")

    restart_machine = Machine(
        make_testbox(nnodes=8, cpus_per_node=4), seed=seed + 1, disk=machine.disk
    )
    restart = run_spmd(restart_machine, _RESTART_NPROCS, _panda_restart_main())
    blockmap: Dict[int, Dict[str, np.ndarray]] = {}
    for kind, value in restart.returns:
        if kind == "client":
            blockmap.update(value[0])
    info = {"client_retries": retries, "client_failovers": failovers}
    if len(blockmap) != _PANDA_TOTAL_BLOCKS:
        info["missing_blocks"] = _PANDA_TOTAL_BLOCKS - len(blockmap)
    return _digest_blocks(blockmap), dict(info, counters=counters)


def _run_rocpanda_restart_fault_scenario(
    plan: FaultPlan,
    seed: int,
    client_retry: RetryPolicy,
) -> Tuple[str, Dict[str, Any]]:
    """Write fault-free, then restart *under faults* on a different
    server count.

    The mirror image of :func:`_run_rocpanda_scenario`: the checkpoint
    lands intact, and the injected faults target the two-phase
    collective read — a server crash mid-bulk-read (clients resume the
    dead server's file share from its heir) or transient read ``EIO``
    during the sieved region reads (absorbed by the server's read-retry
    path).  Recovery still means the restored arrays digest-match the
    fully fault-free reference.
    """
    machine = Machine(make_testbox(nnodes=8, cpus_per_node=4), seed=seed)
    run_spmd(
        machine, _PANDA_NPROCS, _panda_write_main(RetryPolicy(), ServerConfig())
    )

    restart_machine = Machine(
        make_testbox(nnodes=8, cpus_per_node=4), seed=seed + 1, disk=machine.disk
    )
    restart_machine.install_faults(plan)
    restart = run_spmd(
        restart_machine, _RESTART_NPROCS, _panda_restart_main(client_retry)
    )
    counters = _counters(restart.recorder)
    blockmap: Dict[int, Dict[str, np.ndarray]] = {}
    retries = 0
    failovers = 0
    for kind, value in restart.returns:
        if kind == "client":
            restored, client_retries, client_failovers = value
            blockmap.update(restored)
            retries += client_retries
            failovers += client_failovers
    info = {"client_retries": retries, "client_failovers": failovers}
    if len(blockmap) != _PANDA_TOTAL_BLOCKS:
        info["missing_blocks"] = _PANDA_TOTAL_BLOCKS - len(blockmap)
    return _digest_blocks(blockmap), dict(info, counters=counters)


# -- rochdf / trochdf workload ----------------------------------------------

def _hdf_write_main(module_name: str, retry: RetryPolicy):
    def main(ctx):
        com = Roccom(ctx)
        if module_name == "rochdf":
            mod = com.load_module(RochdfModule(ctx, retry=retry))
        else:
            mod = com.load_module(TRochdfModule(ctx, retry=retry))
        w = com.new_window("Fluid")
        w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
        w.declare_attribute(AttributeSpec("pressure", LOC_ELEMENT))
        rng = np.random.default_rng(2000 + ctx.rank)
        for i in range(_HDF_NBLOCKS):
            pane_id = ctx.rank * _HDF_NBLOCKS + i
            nn, ne = 400 + i, 200 + i
            w.register_pane(pane_id, nn, ne)
            w.set_array("coords", pane_id, rng.random((nn, 3)))
            w.set_array("pressure", pane_id, rng.random(ne))
        yield from com.call_function("OUT.write_attribute", "Fluid", None, "ck")
        yield from com.call_function("OUT.sync")
        if module_name == "trochdf":
            yield from com.unload_module(module_name)
        return mod.stats.retries

    return main


def _hdf_restart_main():
    def main(ctx):
        com = Roccom(ctx)
        com.load_module(RochdfModule(ctx))
        w = com.new_window("Fluid")
        for i in range(_HDF_NBLOCKS):
            w.register_pane(ctx.rank * _HDF_NBLOCKS + i, 0, 0)
        ids = yield from com.call_function("OUT.read_attribute", "Fluid", None, "ck")
        return {
            pid: {
                "coords": w.get_array("coords", pid).copy(),
                "pressure": w.get_array("pressure", pid).copy(),
            }
            for pid in ids
        }

    return main


def _run_hdf_scenario(
    plan: Optional[FaultPlan],
    seed: int,
    module_name: str,
    retry: RetryPolicy,
    storage_tier: str = "direct",
) -> Tuple[str, Dict[str, Any]]:
    machine = Machine(make_testbox(nnodes=4, cpus_per_node=4), seed=seed)
    if plan is not None:
        machine.install_faults(plan)
    apply_storage_tier(machine, storage_tier, _BURST_TIER)
    result = run_spmd(machine, _HDF_NPROCS, _hdf_write_main(module_name, retry))
    counters = _counters(result.recorder)
    retries = sum(result.returns)

    restart_machine = Machine(
        make_testbox(nnodes=4, cpus_per_node=4), seed=seed + 1, disk=machine.disk
    )
    restart = run_spmd(restart_machine, _HDF_NPROCS, _hdf_restart_main())
    blockmap: Dict[int, Dict[str, np.ndarray]] = {}
    for value in restart.returns:
        blockmap.update(value)
    return _digest_blocks(blockmap), {"client_retries": retries, "counters": counters}


# -- the matrix -------------------------------------------------------------

def _scenarios() -> List[Dict[str, Any]]:
    """The chaos matrix: (fault plan, module, runner) per scenario.

    Fault start times target t ~= 0.05, when the Rocpanda checkpoint
    write is in flight (after the init collectives, which are not part
    of the recovery protocol).  Message faults never target ``TAG_CTRL``
    drops: a silently dropped eager control message is indistinguishable
    from a slow one at the transport, and the reply-timeout layer above
    covers it instead (drops here target the rendezvous block channel).
    """
    default = RetryPolicy()
    quiet_server = ServerConfig()
    patient_server = ServerConfig(retry=_PATIENT_RETRY)

    def panda(plan, client_retry=default, server_config=quiet_server,
              storage_tier="direct"):
        return lambda seed: _run_rocpanda_scenario(
            plan, seed, client_retry, server_config, storage_tier
        )

    def hdf(plan, module_name, retry=default, storage_tier="direct"):
        return lambda seed: _run_hdf_scenario(
            plan, seed, module_name, retry, storage_tier
        )

    def panda_restart(plan, client_retry=default):
        return lambda seed: _run_rocpanda_restart_fault_scenario(
            plan, seed, client_retry
        )

    return [
        {
            "scenario": "server_crash",
            "module": "rocpanda",
            "run": panda(FaultPlan((ServerCrash(rank=4, at_time=0.055),))),
        },
        {
            "scenario": "transient_eio",
            "module": "rocpanda",
            "run": panda(FaultPlan((TransientEIO(start=0.05, count=3),))),
        },
        {
            "scenario": "disk_full",
            "module": "rocpanda",
            "run": panda(
                FaultPlan(
                    (DiskFull(at_time=0.05, capacity_bytes=100_000, duration=0.2),)
                ),
                client_retry=_PATIENT_RETRY,
                server_config=patient_server,
            ),
        },
        {
            "scenario": "msg_drop",
            "module": "rocpanda",
            "run": panda(
                FaultPlan((MessageFault("drop", tag=TAG_BLOCK, start=0.05, count=2),))
            ),
        },
        {
            "scenario": "msg_duplicate",
            "module": "rocpanda",
            "run": panda(
                FaultPlan(
                    (MessageFault("duplicate", tag=TAG_CTRL, start=0.05, count=2),)
                )
            ),
        },
        {
            "scenario": "msg_delay",
            "module": "rocpanda",
            "run": panda(
                FaultPlan(
                    (
                        MessageFault(
                            "delay", tag=TAG_BLOCK, start=0.05, count=2, delay=0.1
                        ),
                    )
                )
            ),
        },
        {
            "scenario": "straggler",
            "module": "rocpanda",
            "run": panda(
                FaultPlan((Straggler(node=1, start=0.0, duration=0.5, factor=8.0),))
            ),
        },
        {
            # I/O server dies mid-bulk-read during the two-phase
            # restart: clients resume its file share from the heir.
            "scenario": "restart_server_crash",
            "module": "rocpanda",
            "run": panda_restart(
                FaultPlan((ServerCrash(rank=2, at_time=0.004),))
            ),
        },
        {
            # Transient read EIO inside the sieved region reads,
            # absorbed by the server-side read-retry path.
            "scenario": "restart_read_eio",
            "module": "rocpanda",
            "run": panda_restart(
                FaultPlan((TransientEIO(op="read", path_prefix="ck", count=2),))
            ),
        },
        {
            # Server crash while the burst tier is still draining its
            # file: the torn front copy drains to the backing disk
            # without a commit footer (detectable), the heir's failover
            # generation file drains complete, and restart — which reads
            # the shared backing disk directly — recovers every block.
            "scenario": "drain_server_crash",
            "module": "rocpanda",
            "run": panda(
                FaultPlan((ServerCrash(rank=4, at_time=0.055),)),
                storage_tier="burst",
            ),
        },
        {
            # The *backing* disk hits its capacity window while the
            # drain is flushing: the tier absorbs the snapshot at
            # memory speed regardless, and the drain's patient backoff
            # outlasts the window (tier backpressure + retry).
            "scenario": "drain_disk_full",
            "module": "rochdf",
            "run": hdf(
                FaultPlan((DiskFull(at_time=0.0, capacity_bytes=4096, duration=0.05),)),
                "rochdf",
                storage_tier="burst",
            ),
        },
        {
            "scenario": "transient_eio",
            "module": "rochdf",
            "run": hdf(FaultPlan((TransientEIO(count=2),)), "rochdf"),
        },
        {
            "scenario": "disk_full",
            "module": "rochdf",
            "run": hdf(
                FaultPlan((DiskFull(at_time=0.0, capacity_bytes=4096, duration=0.05),)),
                "rochdf",
                retry=_PATIENT_RETRY,
            ),
        },
        {
            "scenario": "transient_eio",
            "module": "trochdf",
            "run": hdf(FaultPlan((TransientEIO(count=2),)), "trochdf"),
        },
        {
            "scenario": "disk_full",
            "module": "trochdf",
            "run": hdf(
                FaultPlan((DiskFull(at_time=0.0, capacity_bytes=4096, duration=0.05),)),
                "trochdf",
                retry=_PATIENT_RETRY,
            ),
        },
    ]


def scenario_names() -> List[str]:
    """``scenario/module`` labels of the chaos matrix, in run order."""
    return [f"{s['scenario']}/{s['module']}" for s in _scenarios()]


def _reference_digests(seed: int, modules) -> Dict[str, str]:
    """Fault-free digests, one per distinct workload (module)."""
    refs = {}
    default = RetryPolicy()
    if "rocpanda" in modules:
        refs["rocpanda"], _ = _run_rocpanda_scenario(
            None, seed, default, ServerConfig()
        )
    for module_name in ("rochdf", "trochdf"):
        if module_name in modules:
            refs[module_name], _ = _run_hdf_scenario(
                None, seed, module_name, default
            )
    return refs


def run_faultbench(
    quick: bool = False,
    seed: int = 0,
    skip_overhead: bool = False,
    perf_path: str = DEFAULT_PERF_PATH,
    only: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Run the chaos matrix; returns the ``BENCH_faults.json`` payload.

    Each scenario executes twice with the same seed (determinism check)
    and its restored data is compared against the fault-free reference
    digest of the same workload (recovery check).  ``quick`` only
    affects the overhead measurement's Table 1 scale; the matrix itself
    is cheap enough to always run in full.  ``only`` restricts the
    matrix to the named ``scenario/module`` rows (see
    :func:`scenario_names`).
    """
    selected = _scenarios()
    if only is not None:
        wanted = set(only)
        selected = [
            s for s in selected if f"{s['scenario']}/{s['module']}" in wanted
        ]
        unknown = wanted - {f"{s['scenario']}/{s['module']}" for s in selected}
        if unknown:
            raise ValueError(f"unknown faultbench scenarios: {sorted(unknown)}")

    # Measure overhead before the matrix: dozens of scenario machines
    # leave the heap large enough to inflate the e2e wall clock past
    # the noise budget when measured afterwards.
    overhead = None if skip_overhead else _measure_overhead(quick, perf_path)
    references = _reference_digests(seed, {s["module"] for s in selected})
    matrix: List[Dict[str, Any]] = []
    for spec in selected:
        row: Dict[str, Any] = {
            "scenario": spec["scenario"],
            "module": spec["module"],
            "reference_digest": references[spec["module"]],
        }
        try:
            digest_a, info_a = spec["run"](seed)
            digest_b, info_b = spec["run"](seed)
        except Exception as exc:  # a non-recovered run is a result, not a crash
            row.update(
                recovered=False,
                runs_identical=False,
                error=f"{type(exc).__name__}: {exc}",
            )
        else:
            row.update(
                recovered=digest_a == references[spec["module"]],
                runs_identical=(digest_a, info_a) == (digest_b, info_b),
                digest=digest_a,
                **info_a,
            )
        matrix.append(row)

    nrows = max(len(matrix), 1)
    payload: Dict[str, Any] = {
        "schema": "faultbench-v1",
        "quick": quick,
        "seed": seed,
        "matrix": matrix,
        "recovery_rate": round(sum(r["recovered"] for r in matrix) / nrows, 4),
        "determinism_rate": round(
            sum(r["runs_identical"] for r in matrix) / nrows, 4
        ),
    }

    if overhead is not None:
        payload["overhead"] = overhead
    return payload


def _measure_overhead(quick: bool, perf_path: str) -> Dict[str, Any]:
    """No-fault wall-clock cost of the resilience code vs BENCH_perf.json."""
    e2e = bench_table1_e2e(quick=quick)
    out: Dict[str, Any] = {"table1_64p": e2e, "baseline_path": perf_path}
    baseline = load_baseline(perf_path)
    entry = ((baseline or {}).get("e2e") or {}).get("table1_64p") or {}
    comparable = (
        entry.get("scale") == e2e["scale"] and entry.get("steps") == e2e["steps"]
    )
    if comparable and entry.get("wall_seconds"):
        frac = e2e["wall_seconds"] / entry["wall_seconds"] - 1.0
        out.update(
            baseline_wall_seconds=entry["wall_seconds"],
            overhead_frac=round(frac, 4),
            within_noise=frac <= OVERHEAD_BUDGET,
        )
    else:
        out["baseline_wall_seconds"] = None  # scale mismatch or no committed perf
    return out


def render_faults(payload: Dict[str, Any]) -> str:
    """Human-readable BENCH_faults report (mirrors ``render_perf``)."""
    rows = []
    for r in payload["matrix"]:
        notes = []
        if r.get("client_retries"):
            notes.append(f"retries={r['client_retries']}")
        if r.get("client_failovers"):
            notes.append(f"failovers={r['client_failovers']}")
        if r.get("missing_blocks"):
            notes.append(f"missing_blocks={r['missing_blocks']}")
        if r.get("error"):
            notes.append(r["error"])
        rows.append(
            [
                r["scenario"],
                r["module"],
                "yes" if r["recovered"] else "NO",
                "yes" if r["runs_identical"] else "NO",
                " ".join(notes) or "-",
            ]
        )
    lines = [
        render_table(
            ["scenario", "module", "recovered", "deterministic", "notes"],
            rows,
            title="Faultbench chaos matrix",
        ),
        "",
        f"recovery rate:    {payload['recovery_rate'] * 100:.1f}%",
        f"determinism rate: {payload['determinism_rate'] * 100:.1f}%",
    ]
    overhead = payload.get("overhead")
    if overhead:
        wall = overhead["table1_64p"]["wall_seconds"]
        lines.append("")
        lines.append(f"no-fault table1_64p wall: {wall:.3f} s")
        if overhead.get("baseline_wall_seconds"):
            lines.append(
                f"committed baseline:       {overhead['baseline_wall_seconds']:.3f} s"
                f" (overhead {overhead['overhead_frac'] * 100:+.1f}%,"
                f" budget {OVERHEAD_BUDGET * 100:.0f}%:"
                f" {'OK' if overhead['within_noise'] else 'EXCEEDED'})"
            )
        else:
            lines.append("committed baseline:       n/a (scale mismatch or missing)")
    return "\n".join(lines)
