"""Rocfrac analogue: explicit structural dynamics on tetrahedral blocks.

Node displacement/velocity advanced by a damped wave-equation update
with element stress recovery — an Arbitrary Lagrangian-Eulerian solid
solver stand-in.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...roccom.attribute import AttributeSpec
from .base import PhysicsModule

__all__ = ["Rocfrac"]


class Rocfrac(PhysicsModule):
    """Explicit solid-mechanics solver (fracture-capable in real GENx)."""

    window_name = "Rocfrac"
    name = "rocfrac"
    cost_per_cell = 7.8e-5

    def attribute_specs(self) -> List[AttributeSpec]:
        return [
            AttributeSpec("displacement", "node", ncomp=3, unit="m"),
            AttributeSpec("velocity", "node", ncomp=3, unit="m/s"),
            AttributeSpec("stress", "element", ncomp=6, unit="Pa"),
            AttributeSpec("traction", "element", unit="Pa"),
        ]

    def nodes_per_elem(self) -> int:
        return 4

    def init_fields(self, window, block, rng) -> None:
        nn, ne = block.nnodes, block.nelems
        bid = block.block_id
        window.set_array("displacement", bid, np.zeros((nn, 3)))
        window.set_array("velocity", bid, np.zeros((nn, 3)))
        window.set_array("stress", bid, np.zeros((ne, 6)))
        window.set_array("traction", bid, np.zeros(ne))

    def kernel(self, window, block, dt: float, step: int) -> None:
        bid = block.block_id
        u = window.get_array("displacement", bid)
        v = window.get_array("velocity", bid)
        s = window.get_array("stress", bid)
        t = window.get_array("traction", bid)
        # Damped wave update: internal force ~ -k*u, surface traction
        # drives the normal component.
        accel = -4.0e4 * u
        n = min(len(t), len(accel))
        accel[:n, 0] += t[:n] * 1e-6
        v += dt * accel
        v *= 0.999
        u += dt * v
        # Stress recovery: proportional to local displacement magnitude.
        # (np.linalg.norm unrolled to its definition — sqrt of the
        # row-wise square sum — which is bit-identical and skips the
        # dispatch overhead that dominates on these small blocks.)
        mag = np.sqrt(np.add.reduce(u * u, axis=1))
        ne = s.shape[0]
        src = mag[:ne] if len(mag) >= ne else np.resize(mag, ne)
        s[:, :3] = (2.0e9 * src)[:, None]
        s[:, 3:] = (0.8e9 * src)[:, None]

    def local_dt_limit(self) -> float:
        return 2e-6

    def apply_traction(self, block_id: int, pressure: float) -> None:
        """Receive interface pressure from the fluid (via Rocface)."""
        t = self.com.window(self.window_name).get_array("traction", block_id)
        t[:] = pressure
