"""Rocsolid analogue: implicit structural mechanics on hex blocks.

The second structural solver of GEN2.5 (§3.1).  Uses a relaxation
sweep standing in for the implicit solve; heavier per-cell cost, hex
connectivity, same attribute surface as Rocfrac so Rocface can drive
either interchangeably.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...roccom.attribute import AttributeSpec
from .base import PhysicsModule, fastmean, rolled

__all__ = ["Rocsolid"]


class Rocsolid(PhysicsModule):
    """Implicit solid-mechanics solver."""

    window_name = "Rocsolid"
    name = "rocsolid"
    # Implicit solves cost more per cell per step.
    cost_per_cell = 1.7e-4

    def attribute_specs(self) -> List[AttributeSpec]:
        return [
            AttributeSpec("displacement", "node", ncomp=3, unit="m"),
            AttributeSpec("velocity", "node", ncomp=3, unit="m/s"),
            AttributeSpec("stress", "element", ncomp=6, unit="Pa"),
            AttributeSpec("traction", "element", unit="Pa"),
        ]

    def nodes_per_elem(self) -> int:
        return 8

    def init_fields(self, window, block, rng) -> None:
        nn, ne = block.nnodes, block.nelems
        bid = block.block_id
        window.set_array("displacement", bid, np.zeros((nn, 3)))
        window.set_array("velocity", bid, np.zeros((nn, 3)))
        window.set_array("stress", bid, np.zeros((ne, 6)))
        window.set_array("traction", bid, np.zeros(ne))

    def kernel(self, window, block, dt: float, step: int) -> None:
        bid = block.block_id
        u = window.get_array("displacement", bid)
        t = window.get_array("traction", bid)
        s = window.get_array("stress", bid)
        # Two Jacobi relaxation sweeps toward the traction-loaded
        # equilibrium (the "implicit" solve).
        load = float(fastmean(t)) * 5e-13
        for _ in range(2):
            u[:, 0] = 0.5 * (rolled(u[:, 0], 1) + rolled(u[:, 0], -1)) + load
            u[:, 1:] *= 0.999
        mag = np.linalg.norm(u, axis=1)
        ne = s.shape[0]
        src = mag[:ne] if len(mag) >= ne else np.resize(mag, ne)
        s[:, :3] = (2.4e9 * src)[:, None]

    def local_dt_limit(self) -> float:
        return 5e-6  # implicit: looser limit

    def apply_traction(self, block_id: int, pressure: float) -> None:
        t = self.com.window(self.window_name).get_array("traction", block_id)
        t[:] = pressure
