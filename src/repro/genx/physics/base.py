"""Physics-module base: window management + compute-cost accounting.

Each physics module owns one Roccom window holding its mesh and field
attributes on the locally-assigned blocks, advances those fields every
timestep with a real (if simplified) numpy kernel, and charges virtual
compute time proportional to its cell count.  The I/O path reads
whatever is registered — physics modules never talk to the I/O modules
directly (§5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ...roccom.attribute import AttributeSpec
from ...roccom.registry import Roccom
from ..meshblock import BlockSpec, MeshBlock, build_block

__all__ = ["PhysicsModule", "fastmean", "rolled"]


def fastmean(a: np.ndarray) -> float:
    """``a.mean()`` for 1-D arrays without the ufunc-dispatch overhead.

    ``ndarray.mean`` routes through ``np.add.reduce`` (same pairwise
    summation) and divides by the count, so this is bitwise identical
    for 1-D float arrays while skipping the ``_methods._mean`` wrapper
    the kernels would otherwise pay per block per step.
    """
    return np.add.reduce(a) / a.size


class _PaneArrays:
    """Window facade over one pane for the kernel hot loop.

    ``kernel`` looks fields up per block per step through
    ``window.get_array``; binding the pane's array dict once per
    (block, step) turns each lookup into a plain dict hit while the
    kernels keep the window-shaped call they use in tests.
    """

    __slots__ = ("_arrays",)

    def __init__(self, arrays):
        self._arrays = arrays

    def get_array(self, attr_name: str, pane_id: int) -> np.ndarray:
        return self._arrays[attr_name]


def rolled(a: np.ndarray, shift: int) -> np.ndarray:
    """``np.roll`` for 1-D arrays with shift ±1, without its overhead.

    The physics kernels roll small per-block field vectors thousands of
    times per run; ``np.roll``'s generality (normalize axis tuples,
    build index expressions) costs more than the copy itself at these
    sizes.  Results are bitwise identical — the two slice-assignments
    below are exactly the element moves ``np.roll`` performs.  Other
    shapes/shifts fall back to ``np.roll``.
    """
    if a.ndim != 1:
        return np.roll(a, shift)
    n = a.shape[0]
    out = np.empty(n, dtype=a.dtype)
    if n == 0:
        return out
    if shift == 1:
        out[0] = a[n - 1]
        out[1:] = a[: n - 1]
    elif shift == -1:
        out[n - 1] = a[0]
        out[: n - 1] = a[1:]
    else:
        return np.roll(a, shift)
    return out


class PhysicsModule:
    """Base class for GENx physics components."""

    #: Window name (subclasses set; unique per module).
    window_name: str = ""
    #: Module label.
    name: str = ""
    #: Nominal compute cost per cell per timestep, seconds.
    cost_per_cell: float = 1.0e-4

    def __init__(self, cost_per_cell: Optional[float] = None):
        if cost_per_cell is not None:
            self.cost_per_cell = cost_per_cell
        self.blocks: List[MeshBlock] = []
        self.com: Optional[Roccom] = None
        self._total_cells = 0

    # -- interface for subclasses -----------------------------------------
    def attribute_specs(self) -> List[AttributeSpec]:
        """Field attributes (beyond mesh coords/connectivity)."""
        raise NotImplementedError

    def init_fields(self, window, block: MeshBlock, rng: np.random.Generator) -> None:
        """Fill the initial field arrays of one block."""
        raise NotImplementedError

    def kernel(self, window, block: MeshBlock, dt: float, step: int) -> None:
        """Advance one block's fields by ``dt`` (pure numpy, no DES)."""
        raise NotImplementedError

    # -- common machinery ------------------------------------------------------
    def setup(self, com: Roccom, specs: Sequence[BlockSpec], rng: np.random.Generator):
        """Create the window, realize blocks, register panes + arrays."""
        self.com = com
        window = com.new_window(self.window_name)
        window.declare_attribute(AttributeSpec("coords", "node", ncomp=3))
        nodes_per_elem = self.nodes_per_elem()
        window.declare_attribute(
            AttributeSpec("conn", "element", ncomp=nodes_per_elem, dtype="i8")
        )
        for spec in self.attribute_specs():
            window.declare_attribute(spec)
        for bspec in specs:
            block = build_block(bspec, rng)
            self.blocks.append(block)
            window.register_pane(bspec.block_id, block.nnodes, block.nelems)
            window.set_array("coords", bspec.block_id, block.coords)
            conn = block.conn
            if conn.shape[1] != nodes_per_elem:
                conn = np.resize(conn, (block.nelems, nodes_per_elem))
            window.set_array("conn", bspec.block_id, conn % block.nnodes)
            self.init_fields(window, block, rng)
            self._total_cells += block.nelems
        return window

    def nodes_per_elem(self) -> int:
        return 8

    @property
    def total_cells(self) -> int:
        return self._total_cells

    def nominal_step_cost(self) -> float:
        """Virtual compute seconds per timestep on this rank."""
        return self.cost_per_cell * self._total_cells

    def advance(self, ctx, dt: float, step: int):
        """Generator: one timestep — real data update + virtual time."""
        window = self.com.window(self.window_name)
        panes = window._panes
        for block in self.blocks:
            self.kernel(_PaneArrays(panes[block.block_id]._arrays), block, dt, step)
        yield from ctx.compute(self.nominal_step_cost())

    def local_dt_limit(self) -> float:
        """Stability limit contributed by this module (for allreduce)."""
        return 1.0

    def __repr__(self) -> str:
        return f"<{type(self).__name__}: {len(self.blocks)} blocks, {self._total_cells} cells>"
