"""Rocflu-MP analogue: unstructured-mesh gas dynamics.

Same physical fields as Rocflo but on tetrahedral blocks with an
edge-smoothing update driven by the explicit connectivity — the
unstructured data layout is what matters for the I/O path.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...roccom.attribute import AttributeSpec
from .base import PhysicsModule

__all__ = ["Rocflu"]

_P0 = 6.0e6


class Rocflu(PhysicsModule):
    """Unstructured-mesh fluid solver."""

    window_name = "Rocflu"
    name = "rocflu"
    # Unstructured solvers cost more per cell (indirect addressing).
    cost_per_cell = 1.1e-4

    def attribute_specs(self) -> List[AttributeSpec]:
        return [
            AttributeSpec("pressure", "element", unit="Pa"),
            AttributeSpec("density", "element", unit="kg/m^3"),
            AttributeSpec("velocity", "node", ncomp=3, unit="m/s"),
        ]

    def nodes_per_elem(self) -> int:
        return 4

    def init_fields(self, window, block, rng) -> None:
        ne, nn = block.nelems, block.nnodes
        bid = block.block_id
        window.set_array("pressure", bid, np.full(ne, _P0) + rng.normal(0, 1e3, ne))
        window.set_array("density", bid, np.full(ne, 8.0))
        window.set_array("velocity", bid, rng.normal(0, 1.0, (nn, 3)))

    def kernel(self, window, block, dt: float, step: int) -> None:
        bid = block.block_id
        p = window.get_array("pressure", bid)
        rho = window.get_array("density", bid)
        v = window.get_array("velocity", bid)
        conn = window.get_array("conn", bid)
        # Smooth cell pressure toward the mean over each cell's nodes'
        # incident values (gather via connectivity: indirect access).
        node_p = np.zeros(block.nnodes)
        np.add.at(node_p, conn.ravel() % block.nnodes, np.repeat(p / 4.0, 4))
        cell_avg = node_p[conn[:, 0] % block.nnodes]
        p += 0.05 * (cell_avg - p)
        rho += dt * 1e-8 * (p - _P0)
        v *= 0.9995
