"""GENx physics modules: fluids, solids, combustion."""

from .base import PhysicsModule
from .rocburn import BURN_MODELS, Rocburn, apn_rate, py_rate, zn_rate
from .rocflo import Rocflo
from .rocflu import Rocflu
from .rocfrac import Rocfrac
from .rocsolid import Rocsolid

__all__ = [
    "PhysicsModule",
    "Rocflo",
    "Rocflu",
    "Rocfrac",
    "Rocsolid",
    "Rocburn",
    "BURN_MODELS",
    "apn_rate",
    "zn_rate",
    "py_rate",
]
