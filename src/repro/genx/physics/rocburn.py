"""Rocburn-2D analogue: propellant combustion with 1-D burn-rate models.

The combustion solver "is composed of a two-dimensional framework ...
and three nonlinear one-dimensional burn-rate models with integrated
ignition models" (§3.1).  We provide the framework plus the three
classic rate laws:

* **APN** — Saint-Robert/Vieille power law, r = a * P^n;
* **ZN** — a Zeldovich-Novozhilov-style rate with surface-temperature
  feedback;
* **PY** — a pyrolysis (Arrhenius) surface-regression law.

Each element carries an ignition state: it only burns after its
temperature crossed ``T_ignite`` (the "integrated ignition model").
The burned distance feeds mesh regression, which is what makes GENx's
mesh blocks "change as the propellant burns" (§3.2).
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ...roccom.attribute import AttributeSpec
from .base import PhysicsModule, rolled

__all__ = ["Rocburn", "BURN_MODELS", "apn_rate", "zn_rate", "py_rate"]

_P_REF = 6.895e6  # reference pressure (1000 psi), Pa


def apn_rate(pressure, surf_temp, a=0.005, n=0.35):
    """Saint-Robert power law r = a * (P/P_ref)^n (m/s)."""
    return a * np.maximum(pressure / _P_REF, 0.0) ** n


def zn_rate(pressure, surf_temp, a=0.004, n=0.3, sigma=0.002, t_ref=700.0):
    """ZN-style law: power law modulated by surface-temperature feedback."""
    return apn_rate(pressure, surf_temp, a, n) * np.exp(
        sigma * (surf_temp - t_ref) / 100.0
    )


def py_rate(pressure, surf_temp, a_pyr=120.0, e_over_r=9000.0):
    """Pyrolysis (Arrhenius) law r = A * exp(-E/(R*Ts))."""
    return a_pyr * np.exp(-e_over_r / np.maximum(surf_temp, 300.0))


BURN_MODELS: Dict[str, Callable] = {"apn": apn_rate, "zn": zn_rate, "py": py_rate}


class Rocburn(PhysicsModule):
    """Combustion on the propellant interface elements."""

    window_name = "Rocburn"
    name = "rocburn"
    cost_per_cell = 4.7e-5
    #: Ignition temperature, K.
    T_ignite = 600.0

    def __init__(self, model: str = "apn", cost_per_cell=None):
        super().__init__(cost_per_cell)
        if model not in BURN_MODELS:
            raise ValueError(f"unknown burn model {model!r}; pick from {list(BURN_MODELS)}")
        self.model = model
        self._rate = BURN_MODELS[model]

    def attribute_specs(self) -> List[AttributeSpec]:
        return [
            AttributeSpec("burn_rate", "element", unit="m/s"),
            AttributeSpec("surf_temp", "element", unit="K"),
            AttributeSpec("burn_distance", "element", unit="m"),
            AttributeSpec("ignited", "element", dtype="i8"),
            AttributeSpec("pressure_bc", "element", unit="Pa"),
        ]

    def nodes_per_elem(self) -> int:
        return 4

    def init_fields(self, window, block, rng) -> None:
        ne = block.nelems
        bid = block.block_id
        window.set_array("burn_rate", bid, np.zeros(ne))
        # A few elements start hot (igniter).
        temp = np.full(ne, 300.0)
        temp[: max(1, ne // 20)] = 1200.0
        window.set_array("surf_temp", bid, temp)
        window.set_array("burn_distance", bid, np.zeros(ne))
        window.set_array("ignited", bid, (temp >= self.T_ignite).astype(np.int64))
        window.set_array("pressure_bc", bid, np.full(ne, _P_REF))

    def kernel(self, window, block, dt: float, step: int) -> None:
        bid = block.block_id
        rate = window.get_array("burn_rate", bid)
        temp = window.get_array("surf_temp", bid)
        dist = window.get_array("burn_distance", bid)
        ignited = window.get_array("ignited", bid)
        p = window.get_array("pressure_bc", bid)
        # Flame spreading: heat diffuses along the surface.
        temp += 40.0 * (rolled(temp, 1) - 2 * temp + rolled(temp, -1)) * 0.01
        temp += 2.0 * ignited  # burning elements stay hot
        # In-place OR instead of a boolean fancy-index store: ignition
        # is monotone (0 -> 1), so OR-ing the threshold mask is the
        # same update without the advanced-indexing machinery.
        ignited |= temp >= self.T_ignite
        r = self._rate(p, temp)
        # r >= 0 for every burn model, so masking by multiply matches
        # np.where(ignited == 1, r, 0.0) bit-for-bit without the
        # intermediate allocation.
        np.multiply(r, ignited == 1, out=rate)
        dist += rate * dt * 1e3  # scaled so regression is visible

    def set_pressure_bc(self, block_id: int, pressure: float) -> None:
        """Receive chamber pressure from the fluid (via Rocface)."""
        p = self.com.window(self.window_name).get_array("pressure_bc", block_id)
        p[:] = pressure

    def fraction_ignited(self) -> float:
        """Diagnostic: ignited fraction over all local blocks."""
        total = 0
        lit = 0
        window = self.com.window(self.window_name)
        for block in self.blocks:
            ig = window.get_array("ignited", block.block_id)
            total += len(ig)
            lit += int(ig.sum())
        return lit / total if total else 0.0
