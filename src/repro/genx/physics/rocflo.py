"""Rocflo-MP analogue: multi-block structured-mesh gas dynamics.

A deliberately small explicit solver: cell-centered density/pressure/
temperature with node-centered velocity, advanced by a damped
diffusion + acoustic-coupling update.  The fields evolve genuinely
(checkpoints carry real state) and the per-cell cost model carries the
timing.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...roccom.attribute import AttributeSpec
from .base import PhysicsModule, fastmean, rolled

__all__ = ["Rocflo"]

_GAMMA = 1.4
_P0 = 6.0e6  # chamber pressure scale, Pa
_RHO0 = 8.0  # gas density scale, kg/m^3


class Rocflo(PhysicsModule):
    """Structured-mesh fluid solver."""

    window_name = "Rocflo"
    name = "rocflo"
    cost_per_cell = 8.6e-5

    def attribute_specs(self) -> List[AttributeSpec]:
        return [
            AttributeSpec("pressure", "element", unit="Pa"),
            AttributeSpec("density", "element", unit="kg/m^3"),
            AttributeSpec("temperature", "element", unit="K"),
            AttributeSpec("velocity", "node", ncomp=3, unit="m/s"),
        ]

    def nodes_per_elem(self) -> int:
        return 8

    def init_fields(self, window, block, rng) -> None:
        ne, nn = block.nelems, block.nnodes
        bid = block.block_id
        z = block.coords[:, 2]
        # Axial pressure gradient down the chamber + small perturbation.
        p_node = _P0 * (1.0 - 0.05 * (z - z.min()))
        p = p_node[: ne] if nn >= ne else np.resize(p_node, ne)
        window.set_array("pressure", bid, p + rng.normal(0, 1e3, ne))
        window.set_array("density", bid, np.full(ne, _RHO0))
        window.set_array(
            "temperature", bid, np.full(ne, 3300.0) + rng.normal(0, 5.0, ne)
        )
        v = np.zeros((nn, 3))
        v[:, 2] = 40.0  # axial flow
        window.set_array("velocity", bid, v)

    def kernel(self, window, block, dt: float, step: int) -> None:
        bid = block.block_id
        p = window.get_array("pressure", bid)
        rho = window.get_array("density", bid)
        T = window.get_array("temperature", bid)
        v = window.get_array("velocity", bid)
        # 1-D (block-local ordering) diffusion of pressure + acoustic
        # density coupling; keeps values bounded and evolving.
        lap = rolled(p, 1) - 2.0 * p + rolled(p, -1)
        p += 0.1 * lap + dt * 1e3 * (rho - _RHO0)
        rho += dt * 1e-7 * (rolled(p, -1) - p)
        T *= 1.0 - 1e-6 * dt
        T += 1e-6 * dt * 3300.0
        # Node velocities relax toward axial flow with pressure kick.
        v[:, 2] += dt * 1e-7 * (fastmean(p) - _P0)
        v *= 0.9999

    def local_dt_limit(self) -> float:
        # Acoustic CFL stand-in: smaller blocks -> tighter limit.
        return 1e-6 * (1.0 + 0.1 * (self._total_cells % 7))

    def interface_pressure(self, block_id: int) -> float:
        """Mean boundary pressure of a block (used by Rocface)."""
        p = self.com.window(self.window_name).get_array("pressure", block_id)
        return float(fastmean(p))
