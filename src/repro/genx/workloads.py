"""The paper's two experimental workloads (§7.1, §7.2).

* :func:`lab_scale_motor` — the Turing test: a lab-scale solid rocket
  motor (design/data after the Naval Air Warfare Center test case).
  The *same* pre-partitioned block set is distributed onto however many
  compute processors are used, so total computation and output are
  fixed (strong scaling); 200 timesteps, snapshot every 50 (five
  output phases including the initial one), about 64 MB per snapshot.

* :func:`scalability_cylinder` — the Frost test: an extendible
  cylinder of the rocket body; the amount of data is fixed *per
  processor* and total size scales with the job (weak scaling).

All sizes accept a ``scale`` so tests can shrink the workload while
benchmarks keep the paper-faithful defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..util.units import MB
from .meshblock import BlockSpec, cylinder_blocks

__all__ = ["WorkloadSpec", "lab_scale_motor", "scalability_cylinder"]

#: Approximate stored bytes per cell for each solver family (mesh +
#: fields, from the attribute sets in repro.genx.physics).
_FLUID_BYTES_PER_CELL = 107.0
_SOLID_BYTES_PER_CELL = 105.0


@dataclass
class WorkloadSpec:
    """A runnable experiment configuration."""

    name: str
    #: Maps number of clients -> {"fluid": [...], "solid": [...],
    #: "burn": [...]} block-spec lists.
    blocks_for: Callable[[int], Dict[str, List[BlockSpec]]]
    steps: int = 200
    snapshot_interval: int = 50
    dt: float = 1.0e-6
    fluid_kind: str = "rocflo"
    solid_kind: str = "rocfrac"
    burn_model: str = "apn"
    #: Multiplier on every module's per-cell compute cost.
    compute_scale: float = 1.0

    def nsnapshots(self) -> int:
        """Output phases per run (including the initial snapshot)."""
        return 1 + self.steps // self.snapshot_interval


def _burn_specs(fluid_specs: List[BlockSpec]) -> List[BlockSpec]:
    """One combustion patch per fluid block (interface subset)."""
    out = []
    for spec in fluid_specs:
        ne = max(4, spec.nelems // 20)
        out.append(
            BlockSpec(
                block_id=spec.block_id,
                kind="unstructured",
                nnodes=max(4, int(ne * 0.5)),
                nelems=ne,
                theta0=spec.theta0,
                z0=spec.z0,
            )
        )
    return out


def lab_scale_motor(
    scale: float = 1.0,
    snapshot_bytes: float = 64 * MB,
    nblocks_fluid: int = 320,
    nblocks_solid: int = 160,
    steps: int = 200,
    snapshot_interval: int = 50,
    seed: int = 2003,
) -> WorkloadSpec:
    """The lab-scale motor test (strong scaling, fixed block set)."""
    target = snapshot_bytes * scale
    fluid_cells = int(target * (2.0 / 3.0) / _FLUID_BYTES_PER_CELL)
    solid_cells = int(target * (1.0 / 3.0) / _SOLID_BYTES_PER_CELL)
    nbf = nblocks_fluid
    nbs = nblocks_solid
    fluid = cylinder_blocks(nbf, max(fluid_cells, nbf), seed=seed)
    solid = cylinder_blocks(
        nbs,
        max(solid_cells, nbs),
        kind_mix=("unstructured",),
        seed=seed + 1,
    )
    burn = _burn_specs(fluid)
    fixed = {"fluid": fluid, "solid": solid, "burn": burn}

    def blocks_for(nclients: int) -> Dict[str, List[BlockSpec]]:
        # Strong scaling: the block set is independent of nclients.
        return fixed

    return WorkloadSpec(
        name="lab_scale_motor",
        blocks_for=blocks_for,
        steps=steps,
        snapshot_interval=snapshot_interval,
        fluid_kind="rocflo",
        solid_kind="rocfrac",
    )


def scalability_cylinder(
    per_client_bytes: float = 4 * MB,
    blocks_per_client_fluid: int = 6,
    blocks_per_client_solid: int = 3,
    steps: int = 30,
    snapshot_interval: int = 10,
    nominal_step_seconds: Optional[float] = None,
    seed: int = 2003,
) -> WorkloadSpec:
    """The Frost "scalability" test (weak scaling, fixed data/processor).

    ``nominal_step_seconds`` pins each client's compute time per step
    (used by Fig 3(b), where computation time is the measurement).
    """

    fluid_cells_pc = int(per_client_bytes * (2.0 / 3.0) / _FLUID_BYTES_PER_CELL)
    solid_cells_pc = int(per_client_bytes * (1.0 / 3.0) / _SOLID_BYTES_PER_CELL)

    def blocks_for(nclients: int) -> Dict[str, List[BlockSpec]]:
        nbf = blocks_per_client_fluid * nclients
        nbs = blocks_per_client_solid * nclients
        fluid = cylinder_blocks(
            nbf, max(fluid_cells_pc * nclients, nbf), seed=seed
        )
        solid = cylinder_blocks(
            nbs,
            max(solid_cells_pc * nclients, nbs),
            kind_mix=("unstructured",),
            seed=seed + 1,
        )
        return {"fluid": fluid, "solid": solid, "burn": _burn_specs(fluid)}

    spec = WorkloadSpec(
        name="scalability_cylinder",
        blocks_for=blocks_for,
        steps=steps,
        snapshot_interval=snapshot_interval,
        fluid_kind="rocflo",
        solid_kind="rocfrac",
    )
    if nominal_step_seconds is not None:
        total_cells_pc = fluid_cells_pc + solid_cells_pc
        # Average cost-per-cell so one step costs the requested time.
        spec.compute_scale = nominal_step_seconds / (
            total_cells_pc * 8.6e-5 + 1e-12
        )
    return spec
