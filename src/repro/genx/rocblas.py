"""Rocblas analogue: parallel algebraic operators on window attributes.

"Rocblas provides parallel algebraic operators for jump conditions"
(§3.1).  Operators act on qualified attributes (``"Window.attr"``)
across all local panes; the reduction variants combine with an
allreduce over the compute communicator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..roccom.registry import Roccom

__all__ = ["axpy", "scale", "copy_attr", "local_dot", "global_dot", "global_minmax"]


def _panes_arrays(com: Roccom, qualified: str):
    window_name, _, attr = qualified.partition(".")
    window = com.window(window_name)
    for pane in window.panes():
        if window.has_array(attr, pane.id):
            yield pane.id, window.get_array(attr, pane.id)


def axpy(com: Roccom, alpha: float, x: str, y: str) -> None:
    """``y += alpha * x`` over every local pane (in place)."""
    y_window, _, y_attr = y.partition(".")
    window = com.window(y_window)
    for pane_id, x_arr in _panes_arrays(com, x):
        y_arr = window.get_array(y_attr, pane_id)
        if x_arr.shape != y_arr.shape:
            raise ValueError(
                f"axpy shape mismatch on pane {pane_id}: {x_arr.shape} vs {y_arr.shape}"
            )
        y_arr += alpha * x_arr


def scale(com: Roccom, alpha: float, x: str) -> None:
    """``x *= alpha`` over every local pane (in place)."""
    for _pane_id, arr in _panes_arrays(com, x):
        arr *= alpha


def copy_attr(com: Roccom, src: str, dst: str) -> None:
    """``dst[:] = src`` over every local pane."""
    d_window, _, d_attr = dst.partition(".")
    window = com.window(d_window)
    for pane_id, src_arr in _panes_arrays(com, src):
        dst_arr = window.get_array(d_attr, pane_id)
        dst_arr[...] = src_arr


def local_dot(com: Roccom, x: str, y: Optional[str] = None) -> float:
    """Local dot product of two attributes (y defaults to x)."""
    if y is None or y == x:
        return float(sum(np.vdot(a, a).real for _, a in _panes_arrays(com, x)))
    pairs = {pid: a for pid, a in _panes_arrays(com, x)}
    total = 0.0
    for pane_id, y_arr in _panes_arrays(com, y):
        if pane_id in pairs:
            total += float(np.vdot(pairs[pane_id], y_arr).real)
    return total


def global_dot(com: Roccom, comm, x: str, y: Optional[str] = None):
    """Generator: allreduce-summed dot product over the communicator."""
    local = local_dot(com, x, y)
    result = yield from comm.allreduce(local)
    return result


def global_minmax(com: Roccom, comm, x: str):
    """Generator: global (min, max) of an attribute over the job."""
    lo = min((float(a.min()) for _, a in _panes_arrays(com, x)), default=np.inf)
    hi = max((float(a.max()) for _, a in _panes_arrays(com, x)), default=-np.inf)
    pair = yield from comm.allreduce(
        (lo, hi), op=lambda p, q: (min(p[0], q[0]), max(p[1], q[1]))
    )
    return pair
