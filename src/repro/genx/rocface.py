"""Rocface analogue: fluid-solid interface data transfer (§3.1).

"Rocface is responsible for transferring data at the fluid-solid
interface."  The real Rocface solves a parallel mesh-association
problem; here the interface coupling is reduced to its data-flow
essence:

1. every rank computes its local mean chamber pressure from the fluid
   window;
2. one allreduce over the compute communicator produces the global
   chamber pressure (this is also GENx's per-timestep synchronization
   point — the mechanism that amplifies OS noise in Fig 3(b));
3. the pressure is applied as traction on the solid blocks and as the
   pressure boundary condition of the combustion model, and the solid's
   regression feedback nudges the fluid boundary.

A per-interface-cell compute cost models the transfer work itself.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..roccom.registry import Roccom
from .physics.base import fastmean

__all__ = ["Rocface"]


class Rocface:
    """Interface-transfer service between a fluid, a solid, and a burner."""

    name = "rocface"
    #: Transfer cost per interface element, seconds.
    cost_per_iface_cell = 2.0e-5

    def __init__(self, fluid, solid, burn=None):
        self.fluid = fluid
        self.solid = solid
        self.burn = burn
        #: Last transferred global chamber pressure (diagnostic).
        self.last_pressure: Optional[float] = None

    def _local_pressure(self, com: Roccom):
        window = com.window(self.fluid.window_name)
        total = 0.0
        cells = 0
        for pane in window.panes():
            p = window.get_array("pressure", pane.id)
            # np.add.reduce is ndarray.sum minus the method wrapper
            # (bitwise-identical pairwise summation).
            total += float(np.add.reduce(p))
            cells += p.size
        return total, cells

    def _iface_cells(self) -> int:
        # The interface is the block surface: ~ ncells^(2/3) per block.
        return int(
            sum(max(1, round(b.nelems ** (2.0 / 3.0))) for b in self.solid.blocks)
        )

    def transfer(self, ctx, com: Roccom, comm, step: int):
        """Generator: one interface transfer (fluid -> solid/burn)."""
        total, cells = self._local_pressure(com)
        g_total, g_cells = yield from comm.allreduce(
            (total, cells), op=lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        pressure = g_total / max(1, g_cells)
        self.last_pressure = pressure
        for block in self.solid.blocks:
            self.solid.apply_traction(block.block_id, pressure)
        if self.burn is not None:
            for block in self.burn.blocks:
                self.burn.set_pressure_bc(block.block_id, pressure)
        # Feedback: burned distance stiffens the fluid boundary slightly
        # (regression changes the chamber volume).
        if self.burn is not None and self.burn.blocks:
            window = com.window(self.burn.window_name)
            regression = float(
                np.mean(
                    [
                        fastmean(window.get_array("burn_distance", b.block_id))
                        for b in self.burn.blocks
                    ]
                )
            )
            fw = com.window(self.fluid.window_name)
            for pane in fw.panes():
                fw.get_array("pressure", pane.id)[:] *= 1.0 + 1e-9 * regression
        yield from ctx.compute(self.cost_per_iface_cell * self._iface_cells())
        return pressure
