"""Mini-GENx: the multi-component rocket simulation workload.

Mesh blocks + partitioner, the physics modules (Rocflo/Rocflu fluids,
Rocfrac/Rocsolid solids, Rocburn combustion), Rocface interface
transfer, Rocblas algebraic operators, the Rocman orchestrator, the
paper's two experimental workloads, and the top-level driver.
"""

from . import physics, rocblas
from .adaptation import MeshAdaptor, resize_block
from .loadbalance import LoadBalancer, MigrationPlan, plan_migrations
from .driver import (
    ClientReport,
    GENxConfig,
    GENxRunResult,
    ServerReport,
    genx_main,
    run_genx,
)
from .meshblock import BlockSpec, MeshBlock, build_block, cylinder_blocks
from .partition import assignment_stats, migrate, partition_blocks
from .rocface import Rocface
from .rocman import Rocman, RocmanConfig, snapshot_prefix
from .workloads import WorkloadSpec, lab_scale_motor, scalability_cylinder

__all__ = [
    "BlockSpec",
    "MeshBlock",
    "build_block",
    "cylinder_blocks",
    "partition_blocks",
    "assignment_stats",
    "migrate",
    "physics",
    "rocblas",
    "Rocface",
    "Rocman",
    "RocmanConfig",
    "snapshot_prefix",
    "WorkloadSpec",
    "lab_scale_motor",
    "scalability_cylinder",
    "MeshAdaptor",
    "resize_block",
    "LoadBalancer",
    "MigrationPlan",
    "plan_migrations",
    "GENxConfig",
    "GENxRunResult",
    "ClientReport",
    "ServerReport",
    "genx_main",
    "run_genx",
]
