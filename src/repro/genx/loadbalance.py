"""Dynamic load balancing: migrating data blocks between processors.

GENx's Charm++ configuration provides "additional functionality such
as dynamic load balancing" (§3.1), and the collective I/O architecture
was explicitly designed so that "data blocks may be migrated among
processors, without affecting how I/O is done" (§4.1): the servers
collect whatever blocks each client currently owns, so migration needs
no interaction with the I/O layer at all.

:class:`LoadBalancer` implements a measurement-driven rebalancing pass
for a running job:

1. all ranks allgather their measured per-step compute time;
2. if the max/mean imbalance exceeds ``threshold``, overloaded ranks
   pick donor blocks (greedily, largest first) for the most underloaded
   ranks;
3. blocks travel as ordinary :class:`~repro.io.base.DataBlock`
   messages; the receiver registers the panes, the sender deregisters
   them — the physics module and Roccom window stay consistent.

The plan is computed identically on every rank from the allgathered
loads (deterministic), so no extra coordination is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..io.base import DataBlock, apply_block, collect_blocks
from ..roccom.registry import Roccom
from .meshblock import BlockSpec, MeshBlock

__all__ = ["LoadBalancer", "MigrationPlan", "plan_migrations"]

#: Internal vmpi tag space for migration traffic.
_MIGRATE_TAG = 1 << 18


@dataclass(frozen=True)
class Migration:
    """One block move: (window, block_id, cells) from src to dst rank."""

    window: str
    block_id: int
    cells: int
    src: int
    dst: int


@dataclass
class MigrationPlan:
    """The agreed set of moves for one rebalancing pass."""

    moves: List[Migration] = field(default_factory=list)

    def outgoing(self, rank: int) -> List[Migration]:
        return [m for m in self.moves if m.src == rank]

    def incoming(self, rank: int) -> List[Migration]:
        return [m for m in self.moves if m.dst == rank]

    @property
    def nmoves(self) -> int:
        return len(self.moves)


def plan_migrations(
    loads: List[float],
    blocks_by_rank: List[List[Tuple[str, int, int]]],
    threshold: float = 1.10,
    max_moves_per_rank: int = 2,
) -> MigrationPlan:
    """Compute a deterministic migration plan from measured loads.

    ``blocks_by_rank[r]`` lists ``(window, block_id, cells)`` for rank
    r's movable blocks.  Returns an empty plan when the max/mean load
    ratio is below ``threshold``.
    """
    nranks = len(loads)
    plan = MigrationPlan()
    if nranks < 2:
        return plan
    mean = sum(loads) / nranks
    if mean <= 0 or max(loads) / mean < threshold:
        return plan

    # Cells stand in for work; convert load imbalance to cell deficit.
    cells_of = [sum(c for _, _, c in blocks) for blocks in blocks_by_rank]
    total_cells = sum(cells_of)
    if total_cells == 0:
        return plan
    target = total_cells / nranks

    surplus = sorted(
        (r for r in range(nranks) if cells_of[r] > target),
        key=lambda r: -(cells_of[r] - target),
    )
    balance = list(cells_of)
    for src in surplus:
        moved = 0
        # Donor blocks: largest first, but never the last block.
        donors = sorted(blocks_by_rank[src], key=lambda b: -b[2])
        for window, block_id, cells in donors:
            if moved >= max_moves_per_rank:
                break
            if balance[src] - cells < target * 0.5:
                continue  # would overshoot
            dst = min(range(nranks), key=lambda r: (balance[r], r))
            if dst == src or balance[dst] + cells > target * 1.05:
                continue
            plan.moves.append(Migration(window, block_id, cells, src, dst))
            balance[src] -= cells
            balance[dst] += cells
            moved += 1
    return plan


class LoadBalancer:
    """Runtime block migration for a set of physics modules."""

    def __init__(self, threshold: float = 1.10, max_moves_per_rank: int = 2):
        self.threshold = threshold
        self.max_moves_per_rank = max_moves_per_rank
        #: Completed migrations (diagnostics).
        self.history: List[Migration] = []
        self._epoch = 0

    def _movable_blocks(self, modules) -> List[Tuple[str, int, int]]:
        out = []
        for module in modules:
            if len(module.blocks) <= 1:
                continue  # never strand a module without blocks
            for block in module.blocks:
                out.append((module.window_name, block.block_id, block.nelems))
        return out

    def rebalance(self, ctx, com: Roccom, comm, modules, measured_load: float):
        """Generator: one collective rebalancing pass.

        Every rank must call this collectively with its own
        ``measured_load`` (e.g. seconds of the last step).  Returns the
        number of blocks this rank sent + received.
        """
        self._epoch += 1
        loads = yield from comm.allgather(float(measured_load))
        movable = self._movable_blocks(modules)
        all_blocks = yield from comm.allgather(movable)
        plan = plan_migrations(
            loads, all_blocks, self.threshold, self.max_moves_per_rank
        )
        if not plan.nmoves:
            return 0

        by_window = {m.window_name: m for m in modules}
        rank = comm.rank
        tag = _MIGRATE_TAG + (self._epoch % 1024)
        moved = 0

        # Post outgoing blocks non-blocking (two ranks may trade blocks
        # simultaneously — blocking sends could deadlock), then drop
        # them locally.
        requests = []
        for move in plan.outgoing(rank):
            module = by_window[move.window]
            window = com.window(move.window)
            [payload] = [
                b
                for b in collect_blocks(com, move.window)
                if b.block_id == move.block_id
            ]
            mesh = next(b for b in module.blocks if b.block_id == move.block_id)
            requests.append(
                comm.isend((payload, mesh.spec), dest=move.dst, tag=tag)
            )
            module.blocks.remove(mesh)
            module._total_cells -= mesh.nelems
            window.deregister_pane(move.block_id)
            moved += 1

        # Receive incoming blocks and install them.
        for move in plan.incoming(rank):
            (payload, spec), _status = yield from comm.recv(
                source=move.src, tag=tag
            )
            module = by_window[move.window]
            apply_block(com, payload)
            mesh = MeshBlock(
                spec,
                coords=payload.arrays["coords"],
                conn=payload.arrays["conn"],
            )
            module.blocks.append(mesh)
            module.blocks.sort(key=lambda b: b.block_id)
            module._total_cells += mesh.nelems
            moved += 1

        for request in requests:
            yield from request.wait()

        self.history.extend(
            m for m in plan.moves if rank in (m.src, m.dst)
        )
        ctx.trace("loadbalance", f"epoch {self._epoch}: {moved} blocks moved")
        return moved
