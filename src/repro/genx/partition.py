"""Block-to-processor partitioning.

The partitioner assigns pre-cut mesh blocks to compute processors,
balancing total cell count (a stand-in for both compute load and I/O
volume — with "fine-grained data distribution and dynamic load-
balancing, the clients are likely to receive a balanced data
assignment, resulting in a balanced I/O workload at the servers
automatically", §4.1).

Also provides :func:`migrate`, a toy dynamic-load-balancing move used
to demonstrate that block migration "may ... happen among processors,
without affecting how I/O is done" (§4.1).
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

from .meshblock import BlockSpec

__all__ = ["partition_blocks", "assignment_stats", "migrate"]

#: Memo of recent partition results, keyed by the workload fingerprint.
#: Every rank of an SPMD job partitions the identical spec list each
#: step, so a 64-rank run recomputes the same LPT answer 64x per
#: (re)partition point; the memo stores *index* lists (not spec
#: objects), so each caller still gets fresh lists over its own specs.
_MEMO_CAP = 64
_memo: "OrderedDict[Tuple, List[List[int]]]" = OrderedDict()

#: Identity fast path over the fingerprint memo.  Strong-scaling
#: workloads hand every rank the *same* spec-list object, so even the
#: O(nblocks) fingerprint build above repeats nprocs times per
#: (re)partition point.  Keyed by ``id(specs)`` with the list itself
#: pinned in the value (so the id cannot be recycled while the entry
#: lives) this drops the per-rank cost to one dict hit.
_id_memo: "OrderedDict[Tuple[int, int], Tuple[Sequence, List[List[int]]]]" = (
    OrderedDict()
)


def partition_blocks(
    specs: Sequence[BlockSpec], nprocs: int
) -> List[List[BlockSpec]]:
    """LPT (longest-processing-time) greedy balance by cell count.

    Returns ``nprocs`` lists of block specs.  Deterministic: ties break
    on processor index, blocks sorted by (cells desc, id asc).
    """
    if nprocs <= 0:
        raise ValueError("nprocs must be > 0")
    if len(specs) < nprocs:
        raise ValueError(
            f"cannot give {nprocs} processors at least one of {len(specs)} blocks"
        )
    id_key = (id(specs), nprocs)
    hit = _id_memo.get(id_key)
    if hit is not None and hit[0] is specs:
        buckets = hit[1]
        return [[specs[i] for i in bucket] for bucket in buckets]
    key = (nprocs, tuple((s.block_id, s.ncells) for s in specs))
    buckets = _memo.get(key)
    if buckets is None:
        indices = sorted(
            range(len(specs)),
            key=lambda i: (-specs[i].ncells, specs[i].block_id),
        )
        # (load, proc) heap: pops reproduce min(range(nprocs),
        # key=lambda p: (loads[p], p)) exactly — lexicographic order on
        # the tuples is the same tie-break.
        heap = [(0, p) for p in range(nprocs)]
        buckets = [[] for _ in range(nprocs)]
        for i in indices:
            load, target = heapq.heappop(heap)
            buckets[target].append(i)
            heapq.heappush(heap, (load + specs[i].ncells, target))
        for bucket in buckets:
            # Stable index sort == stable object sort by block_id when
            # ids repeat: indices preserve the LPT assignment order.
            bucket.sort(key=lambda i: specs[i].block_id)
        _memo[key] = buckets
        if len(_memo) > _MEMO_CAP:
            _memo.popitem(last=False)
    else:
        _memo.move_to_end(key)
    _id_memo[id_key] = (specs, buckets)
    if len(_id_memo) > _MEMO_CAP:
        _id_memo.popitem(last=False)
    return [[specs[i] for i in bucket] for bucket in buckets]


def assignment_stats(assignment: List[List[BlockSpec]]) -> Dict[str, float]:
    """Balance diagnostics: max/mean cell load and block counts."""
    loads = [sum(s.ncells for s in bucket) for bucket in assignment]
    counts = [len(bucket) for bucket in assignment]
    mean = sum(loads) / len(loads)
    return {
        "max_load": float(max(loads)),
        "mean_load": float(mean),
        "imbalance": float(max(loads) / mean) if mean else 0.0,
        "min_blocks": float(min(counts)),
        "max_blocks": float(max(counts)),
    }


def migrate(
    assignment: List[List[BlockSpec]], block_id: int, to_proc: int
) -> Tuple[int, int]:
    """Move one block to another processor (dynamic load balancing).

    Returns ``(from_proc, to_proc)``.  Raises KeyError if the block is
    not assigned anywhere.
    """
    if not 0 <= to_proc < len(assignment):
        raise ValueError(f"no processor {to_proc}")
    for proc, bucket in enumerate(assignment):
        for i, spec in enumerate(bucket):
            if spec.block_id == block_id:
                if proc != to_proc:
                    bucket.pop(i)
                    assignment[to_proc].append(spec)
                    assignment[to_proc].sort(key=lambda s: s.block_id)
                return proc, to_proc
    raise KeyError(f"block {block_id} not assigned to any processor")
