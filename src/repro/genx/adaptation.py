"""Adaptive mesh change driven by propellant regression (§3.2).

"These mesh blocks change as the propellant burns in the simulation,
requiring adaptive refinement over time."  As the burn front advances,
solid propellant is consumed — solid blocks shrink — and the gas
chamber grows — fluid blocks gain cells.

The I/O architecture was designed so this needs **zero** interaction
with the I/O layer: panes are re-sized in place and the next collective
output simply collects the current arrays ("the mesh blocks can expand
or shrink over time ... and the simulation developers need not to
redefine the data distribution for I/O", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..roccom.attribute import LOC_ELEMENT, LOC_NODE
from ..roccom.registry import Roccom

__all__ = ["MeshAdaptor", "resize_block"]


def resize_block(com: Roccom, module, block, new_nnodes: int, new_nelems: int) -> None:
    """Resize one mesh block in place, preserving existing values.

    Arrays grow by repeating trailing entries (new cells inherit the
    state at the burn front) and shrink by truncation (consumed cells
    vanish).  The Roccom pane and the module's cell accounting stay
    consistent.
    """
    if new_nnodes <= 0 or new_nelems <= 0:
        raise ValueError("blocks must keep at least one node and element")
    window = com.window(module.window_name)
    pane = window.pane(block.block_id)
    old = {}
    for name in window.attribute_names():
        spec = window.attribute(name)
        if spec.location in (LOC_NODE, LOC_ELEMENT) and window.has_array(
            name, block.block_id
        ):
            old[name] = window.get_array(name, block.block_id)
    pane.resize(nnodes=new_nnodes, nelems=new_nelems)
    for name, array in old.items():
        spec = window.attribute(name)
        n = new_nnodes if spec.location == LOC_NODE else new_nelems
        if array.ndim == 1:
            resized = np.resize(array, (n,))
        else:
            resized = np.resize(array, (n,) + array.shape[1:])
        if name == "conn":
            resized = resized % max(1, new_nnodes)
        window.set_array(name, block.block_id, resized)
    module._total_cells += new_nelems - block.conn.shape[0]
    block.coords = window.get_array("coords", block.block_id)
    block.conn = window.get_array("conn", block.block_id)
    block.spec = type(block.spec)(
        block_id=block.spec.block_id,
        kind=block.spec.kind,
        nnodes=new_nnodes,
        nelems=new_nelems,
        theta0=block.spec.theta0,
        z0=block.spec.z0,
    )


@dataclass
class AdaptationStats:
    passes: int = 0
    solid_cells_removed: int = 0
    fluid_cells_added: int = 0


class MeshAdaptor:
    """Regression-driven block resizing, run as a Rocman per-step hook."""

    def __init__(
        self,
        fluid,
        solid,
        burn,
        interval: int = 10,
        regression_threshold: float = 1e-7,
        change_fraction: float = 0.05,
        min_cells: int = 4,
    ):
        self.fluid = fluid
        self.solid = solid
        self.burn = burn
        self.interval = interval
        self.regression_threshold = regression_threshold
        self.change_fraction = change_fraction
        self.min_cells = min_cells
        self.stats = AdaptationStats()
        self._consumed: Dict[int, float] = {}

    def hook(self, ctx, com: Roccom, comm, step: int):
        """Generator: Rocman per-step hook (local work only)."""
        if step % self.interval:
            return
        burn_window = com.window(self.burn.window_name)
        total_regression = 0.0
        for bblock in self.burn.blocks:
            dist = float(
                burn_window.get_array("burn_distance", bblock.block_id).mean()
            )
            already = self._consumed.get(bblock.block_id, 0.0)
            if dist - already < self.regression_threshold:
                continue
            self._consumed[bblock.block_id] = dist
            total_regression += dist - already
        if total_regression <= 0:
            return
        self.stats.passes += 1

        # Shrink solid blocks; grow fluid blocks by the same share.
        for block in self.solid.blocks:
            ne = block.conn.shape[0]
            removed = max(1, int(ne * self.change_fraction))
            new_ne = max(self.min_cells, ne - removed)
            if new_ne < ne:
                new_nn = max(self.min_cells, int(block.coords.shape[0] * new_ne / ne))
                resize_block(com, self.solid, block, new_nn, new_ne)
                self.stats.solid_cells_removed += ne - new_ne
        for block in self.fluid.blocks:
            ne = block.conn.shape[0]
            added = max(1, int(ne * self.change_fraction))
            new_nn = int(block.coords.shape[0] * (ne + added) / ne)
            resize_block(com, self.fluid, block, max(new_nn, 1), ne + added)
            self.stats.fluid_cells_added += added
        # Re-meshing costs compute time proportional to touched cells.
        touched = self.fluid.total_cells + self.solid.total_cells
        yield from ctx.compute(2e-6 * touched)
