"""The GENx driver: assemble modules, run the coupled simulation SPMD.

This is the top of the public API: pick a machine, a workload, and an
I/O mode; :func:`run_genx` launches the whole job (including dedicated
Rocpanda servers when requested) and returns an aggregate result with
the paper's headline metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..cluster.machine import Machine
from ..io.rochdf import RochdfModule
from ..io.rocpanda import PandaServer, RocpandaModule, ServerConfig, rocpanda_init
from ..io.trochdf import TRochdfModule
from ..roccom.module import IO_WINDOW
from ..roccom.registry import Roccom
from ..shdf.drivers import STORAGE_TIERS, HDFDriver, apply_storage_tier, hdf4_driver
from ..util.trace import Tracer
from ..vmpi.launcher import run_spmd
from . import physics as phys
from .partition import partition_blocks
from .rocface import Rocface
from .rocman import Rocman, RocmanConfig, RocmanReport
from .workloads import WorkloadSpec

__all__ = ["GENxConfig", "ClientReport", "ServerReport", "GENxRunResult", "run_genx", "genx_main"]

IO_MODES = ("rochdf", "trochdf", "rocpanda")

_FLUID = {"rocflo": phys.Rocflo, "rocflu": phys.Rocflu}
_SOLID = {"rocfrac": phys.Rocfrac, "rocsolid": phys.Rocsolid}


@dataclass
class GENxConfig:
    """Everything one GENx run needs besides the machine."""

    workload: WorkloadSpec
    io_mode: str = "rocpanda"
    #: Rocpanda servers (required iff io_mode == "rocpanda").
    nservers: int = 0
    #: Scientific-format driver factory.
    driver_factory: Callable[[], HDFDriver] = hdf4_driver
    server_config: Optional[ServerConfig] = None
    #: Optional (overhead_seconds, bytes_per_second) override of the
    #: Rocpanda client's per-block marshalling cost (platform tuning).
    client_pack: Optional[tuple] = None
    #: Full active-buffering hierarchy ([13]): buffer on the clients
    #: too, shipping to servers from a background sender thread.
    client_buffering: bool = False
    #: Two-phase shipping: aggregate each snapshot's blocks into one
    #: pre-encoded batch per server (off = per-block executable spec;
    #: fault-free virtual time is bit-identical either way).
    batched_shipping: bool = True
    #: Two-phase collective restart: servers bulk-read their file
    #: shares in sieved regions (with read-ahead) and scatter
    #: aggregated block batches (off = per-block executable spec; both
    #: modes restore bit-identical window data).
    batched_restart: bool = True
    prefix: str = "genx"
    #: Restart: read state written at this step of ``restart_prefix``.
    restart_step: Optional[int] = None
    restart_prefix: Optional[str] = None
    #: Steps to run (defaults to the workload's).
    steps: Optional[int] = None
    initial_snapshot: bool = True
    #: Regression-driven mesh adaptation (solid shrinks, fluid grows).
    adapt_mesh: bool = False
    adapt_interval: int = 10
    #: Dynamic load balancing: migrate blocks between compute ranks.
    load_balance: bool = False
    lb_interval: int = 10
    lb_threshold: float = 1.10
    #: Where writes land: "direct" (executable spec) or "burst"
    #: (burst-buffer tier fronting the machine's fs; see fs/tiers.py).
    storage_tier: str = "direct"
    #: Optional :class:`~repro.fs.tiers.TierConfig` for the burst tier.
    tier_config: Optional[Any] = None

    def __post_init__(self):
        if self.io_mode not in IO_MODES:
            raise ValueError(f"io_mode must be one of {IO_MODES}")
        if self.io_mode == "rocpanda" and self.nservers <= 0:
            raise ValueError("rocpanda mode needs nservers > 0")
        if self.storage_tier not in STORAGE_TIERS:
            raise ValueError(f"storage_tier must be one of {STORAGE_TIERS}")


@dataclass
class ClientReport:
    """Per-compute-rank outcome."""

    rank: int
    rocman: RocmanReport
    io_stats: Any
    restart_time: float = 0.0
    final_sync_time: float = 0.0
    wall_time: float = 0.0


@dataclass
class ServerReport:
    """Per-I/O-server outcome."""

    rank: int
    stats: Any


@dataclass
class GENxRunResult:
    """Aggregate of one GENx run (what the benches consume)."""

    clients: List[ClientReport]
    servers: List[ServerReport]
    wall_time: float
    machine: Machine
    #: The job's instrumentation stream (see :mod:`repro.obs`).
    recorder: Any = None

    @property
    def computation_time(self) -> float:
        """Total time on timestep iterations (max over clients), §7.1."""
        return max(c.rocman.compute_wall_time for c in self.clients)

    @property
    def visible_io_time(self) -> float:
        """Total time in output-interface calls (max over clients)."""
        return max(c.rocman.output_wall_time for c in self.clients)

    @property
    def restart_time(self) -> float:
        return max(c.restart_time for c in self.clients)

    @property
    def bytes_written_per_snapshot(self) -> float:
        total = sum(c.io_stats.bytes_written for c in self.clients)
        snaps = max(1, self.clients[0].rocman.snapshots)
        return total / snaps

    @property
    def files_created(self) -> int:
        client_files = sum(c.io_stats.files_created for c in self.clients)
        server_files = sum(s.stats.files_created for s in self.servers)
        return client_files + server_files


def _build_physics(config: GENxConfig, ctx, com, comm, rng):
    workload = config.workload
    nclients = comm.size
    crank = comm.rank
    spec_map = workload.blocks_for(nclients)

    fluid = _FLUID[workload.fluid_kind]()
    solid = _SOLID[workload.solid_kind]()
    burn = phys.Rocburn(model=workload.burn_model)
    for module in (fluid, solid, burn):
        module.cost_per_cell *= workload.compute_scale

    for module, key in ((fluid, "fluid"), (solid, "solid"), (burn, "burn")):
        mine = partition_blocks(spec_map[key], nclients)[crank]
        module.setup(com, mine, rng)
    rocface = Rocface(fluid, solid, burn)
    return [fluid, solid, burn], rocface


def genx_main(config: GENxConfig):
    """Build the SPMD main function for one GENx run."""

    def main(ctx):
        workload = config.workload
        if config.io_mode == "rocpanda":
            topo = yield from rocpanda_init(ctx, config.nservers)
            if topo.is_server:
                server = PandaServer(ctx, topo, config.server_config)
                stats = yield from server.run()
                return ServerReport(rank=ctx.rank, stats=stats)
            comm = topo.comm
        else:
            topo = None
            comm = ctx.world

        com = Roccom(ctx)
        if config.io_mode == "rocpanda":
            pack = config.client_pack or (None, None)
            io_module = RocpandaModule(
                ctx,
                topo,
                pack_overhead=pack[0],
                pack_bw=pack[1],
                client_buffering=config.client_buffering,
                batched=config.batched_shipping,
                batched_restart=config.batched_restart,
            )
        elif config.io_mode == "trochdf":
            io_module = TRochdfModule(ctx, config.driver_factory())
        else:
            io_module = RochdfModule(ctx, config.driver_factory())
        com.load_module(io_module)

        rng = np.random.default_rng(1000 + comm.rank)
        physics, rocface = _build_physics(config, ctx, com, comm, rng)

        hooks = []
        if config.adapt_mesh:
            from .adaptation import MeshAdaptor

            fluid, solid, burn = physics
            adaptor = MeshAdaptor(
                fluid, solid, burn, interval=config.adapt_interval
            )
            hooks.append(adaptor.hook)
        if config.load_balance:
            from .loadbalance import LoadBalancer

            balancer = LoadBalancer(threshold=config.lb_threshold)
            last_compute = [0.0]

            def lb_hook(hctx, hcom, hcomm, step):
                if step % config.lb_interval:
                    return
                load = hctx.compute_time - last_compute[0]
                last_compute[0] = hctx.compute_time
                yield from balancer.rebalance(hctx, hcom, hcomm, physics, load)

            hooks.append(lb_hook)

        rocman = Rocman(
            ctx,
            com,
            comm,
            physics,
            rocface,
            RocmanConfig(
                steps=config.steps if config.steps is not None else workload.steps,
                snapshot_interval=workload.snapshot_interval,
                dt=workload.dt,
                prefix=config.prefix,
                initial_snapshot=config.initial_snapshot,
            ),
            hooks=hooks,
        )

        restart_time = 0.0
        if config.restart_step is not None:
            restart_time = yield from rocman.restore(
                config.restart_step, config.restart_prefix
            )

        t_start = ctx.now
        yield from rocman.run()
        # Final sync: make sure overlapped output is on disk before the
        # job ends (outside the paper's visible-I/O accounting).
        t_sync = ctx.now
        yield from com.call_function(f"{IO_WINDOW}.sync")
        final_sync = ctx.now - t_sync

        if config.io_mode == "rocpanda":
            yield from io_module.finalize()

        return ClientReport(
            rank=ctx.rank,
            rocman=rocman.report,
            io_stats=io_module.stats,
            restart_time=restart_time,
            final_sync_time=final_sync,
            wall_time=ctx.now - t_start,
        )

    return main


def run_genx(
    machine: Machine,
    nprocs: int,
    config: GENxConfig,
    placement: Optional[Callable] = None,
    tracer: Optional[Tracer] = None,
) -> GENxRunResult:
    """Launch a full GENx job and aggregate the results."""
    if config.io_mode == "rocpanda" and nprocs - config.nservers < config.nservers:
        # Fail at setup instead of deadlocking mid-run: the topology
        # contract (PR 6) requires at least as many clients as servers.
        raise ValueError(
            f"Rocpanda needs nclients >= nservers: {nprocs} ranks with "
            f"{config.nservers} servers leaves only "
            f"{nprocs - config.nservers} clients"
        )
    apply_storage_tier(machine, config.storage_tier, config.tier_config)
    job = run_spmd(machine, nprocs, genx_main(config), placement=placement, tracer=tracer)
    clients = [r for r in job.returns if isinstance(r, ClientReport)]
    servers = [r for r in job.returns if isinstance(r, ServerReport)]
    if not clients:
        raise RuntimeError("run produced no client reports")
    return GENxRunResult(
        clients=clients,
        servers=servers,
        wall_time=job.wall_time,
        machine=machine,
        recorder=job.recorder,
    )
