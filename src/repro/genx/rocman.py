"""Rocman analogue: orchestrator of the coupled simulation (§3.1).

Rocman "orchestrates the control- and data-flow of the overall
simulation": the timestep loop (fluid -> interface transfer -> solid ->
combustion -> global dt reduction) and the periodic snapshot policy.
Snapshots go through the uniform Roccom I/O interface, so Rocman is
identical no matter which I/O service module is loaded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..roccom.module import IO_WINDOW
from ..roccom.registry import Roccom
from .rocface import Rocface

__all__ = ["RocmanConfig", "Rocman", "snapshot_prefix"]


def snapshot_prefix(run_prefix: str, step: int, window: str) -> str:
    """Output path prefix for one window's part of one snapshot."""
    return f"{run_prefix}_{step:06d}_{window.lower()}"


@dataclass
class RocmanConfig:
    """Timestep-loop and output policy."""

    steps: int = 200
    snapshot_interval: int = 50
    dt: float = 1.0e-6
    #: Run-level output prefix (snapshot files extend it).
    prefix: str = "genx"
    #: Take the initial (step-0) snapshot (the paper's runs do: "five
    #: output phases (including the initial snapshot)", §7.1).
    initial_snapshot: bool = True
    #: Issue OUT.sync after each snapshot (debugging/timing aid, §5).
    sync_each_snapshot: bool = False


@dataclass
class RocmanReport:
    """Per-rank timing breakdown of one run."""

    steps: int = 0
    snapshots: int = 0
    #: Wall time inside the timestep loop, excluding output calls.
    compute_wall_time: float = 0.0
    #: Wall time inside output (write_attribute) calls.
    output_wall_time: float = 0.0
    #: Wall time inside sync calls.
    sync_wall_time: float = 0.0
    #: Trajectory diagnostics (global chamber pressure per sample).
    pressure_history: List[float] = field(default_factory=list)


class Rocman:
    """The manager module: drives modules and snapshots via Roccom."""

    def __init__(
        self,
        ctx,
        com: Roccom,
        comm,
        physics: List,
        rocface: Optional[Rocface],
        config: RocmanConfig,
        hooks: Optional[List] = None,
    ):
        self.ctx = ctx
        self.com = com
        self.comm = comm
        self.physics = physics
        self.rocface = rocface
        self.config = config
        #: Per-step service hooks: generator callables
        #: ``hook(ctx, com, comm, step)`` run after the physics update
        #: (mesh adaptation, dynamic load balancing, diagnostics...).
        self.hooks = list(hooks or [])
        self.report = RocmanReport()

    # -- output -----------------------------------------------------------
    def snapshot(self, step: int):
        """Generator: write every physics window through OUT (§5).

        One high-level call per module window — "write the mesh
        coordinates and the pressure value on all the mesh blocks" —
        with back-to-back requests for the multi-component state.
        """
        t0 = self.ctx.now
        sid = f"{self.config.prefix}@{step}"
        for module in self.physics:
            path = snapshot_prefix(self.config.prefix, step, module.window_name)
            yield from self.com.call_function(
                f"{IO_WINDOW}.write_attribute",
                module.window_name,
                None,
                path,
                file_attrs={"time_step": step, "prefix": self.config.prefix},
                **_maybe_snapshot_id(self.com, sid),
            )
        self.report.snapshots += 1
        self.report.output_wall_time += self.ctx.now - t0
        if self.config.sync_each_snapshot:
            t1 = self.ctx.now
            yield from self.com.call_function(f"{IO_WINDOW}.sync")
            self.report.sync_wall_time += self.ctx.now - t1

    def restore(self, step: int, run_prefix: Optional[str] = None):
        """Generator: collective restart of all physics windows."""
        prefix = run_prefix if run_prefix is not None else self.config.prefix
        t0 = self.ctx.now
        for module in self.physics:
            path = snapshot_prefix(prefix, step, module.window_name)
            yield from self.com.call_function(
                f"{IO_WINDOW}.read_attribute", module.window_name, None, path
            )
        return self.ctx.now - t0

    # -- main loop -------------------------------------------------------------
    def run(self):
        """Generator: the whole timestep loop; returns a RocmanReport."""
        cfg = self.config
        ctx = self.ctx
        if cfg.initial_snapshot:
            yield from self.snapshot(0)
        dt = cfg.dt
        for step in range(1, cfg.steps + 1):
            t0 = ctx.now
            for module in self.physics:
                yield from module.advance(ctx, dt, step)
            if self.rocface is not None:
                pressure = yield from self.rocface.transfer(ctx, self.com, self.comm, step)
                if step % max(1, cfg.steps // 20) == 0:
                    self.report.pressure_history.append(pressure)
            for hook in self.hooks:
                yield from hook(self.ctx, self.com, self.comm, step)
            # Global stable-dt reduction: the per-step synchronization.
            local_limit = min(
                (m.local_dt_limit() for m in self.physics), default=cfg.dt
            )
            dt = yield from self.comm.allreduce(min(cfg.dt, local_limit), op=min)
            self.report.compute_wall_time += ctx.now - t0
            self.report.steps += 1
            if step % cfg.snapshot_interval == 0:
                yield from self.snapshot(step)
        return self.report


def _maybe_snapshot_id(com: Roccom, sid: str) -> Dict[str, str]:
    """Pass snapshot_id only to services that accept it (T-Rochdf)."""
    fn = com.window(IO_WINDOW).function("write_attribute")
    code = getattr(fn, "__func__", fn).__code__
    if "snapshot_id" in code.co_varnames[: code.co_argcount + code.co_kwonlyargcount]:
        return {"snapshot_id": sid}
    return {}
