"""Mesh blocks: the pre-partitioned pieces of the simulation object.

"The simulation object is pre-partitioned into a large number of mesh
blocks and each processor is assigned a number of such blocks.  For the
same material (e.g., solid or fluid), each block has similar attributes
and data organization, but can have different sizes." (§3.2)

We generate two families, mirroring GENx's solvers:

* **structured** blocks (Rocflo-style): logical (ni, nj, nk) bricks of
  a cylindrical rocket chamber section;
* **unstructured** blocks (Rocflu/Rocfrac-style): tetrahedral patches
  with explicit connectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["BlockSpec", "MeshBlock", "build_block", "cylinder_blocks"]


@dataclass(frozen=True)
class BlockSpec:
    """Size/placement descriptor of one mesh block (cheap to ship around)."""

    block_id: int
    kind: str  # "structured" | "unstructured"
    nnodes: int
    nelems: int
    #: Angular/axial position of the block in the rocket (for geometry).
    theta0: float = 0.0
    z0: float = 0.0

    def __post_init__(self):
        if self.kind not in ("structured", "unstructured"):
            raise ValueError(f"bad block kind {self.kind!r}")
        if self.nnodes <= 0 or self.nelems <= 0:
            raise ValueError("block must have positive sizes")

    @property
    def ncells(self) -> int:
        return self.nelems


class MeshBlock:
    """A realized mesh block: coordinates + connectivity."""

    def __init__(self, spec: BlockSpec, coords: np.ndarray, conn: np.ndarray):
        self.spec = spec
        self.coords = coords  # (nnodes, 3) float64
        self.conn = conn  # (nelems, nodes_per_elem) int64
        #: Plain attribute (ids are immutable; the kernels read this
        #: every block-step, so a property descriptor is measurable).
        self.block_id = spec.block_id

    @property
    def nnodes(self) -> int:
        return self.coords.shape[0]

    @property
    def nelems(self) -> int:
        return self.conn.shape[0]


def build_block(spec: BlockSpec, rng: np.random.Generator) -> MeshBlock:
    """Generate geometry for a block spec.

    Structured blocks get a regular cylindrical-shell lattice;
    unstructured blocks get jittered points with synthetic tet
    connectivity.  Coordinates are deterministic given the RNG state.
    """
    n = spec.nnodes
    if spec.kind == "structured":
        # A thin cylindrical shell patch: nodes on a (r, theta, z) grid.
        side = max(2, int(round(n ** (1.0 / 3.0))))
        r = np.linspace(0.2, 0.5, side)
        theta = spec.theta0 + np.linspace(0.0, np.pi / 8, side)
        z = spec.z0 + np.linspace(0.0, 0.3, max(2, n // (side * side)))
        rr, tt, zz = np.meshgrid(r, theta, z, indexing="ij")
        pts = np.stack(
            [rr.ravel() * np.cos(tt.ravel()), rr.ravel() * np.sin(tt.ravel()), zz.ravel()],
            axis=1,
        )
        if pts.shape[0] < n:  # pad deterministically
            extra = pts[: n - pts.shape[0]] + 1e-3
            pts = np.concatenate([pts, extra], axis=0)
        coords = pts[:n].astype(np.float64)
        # Hexahedral connectivity approximated as consecutive 8-tuples.
        conn = (np.arange(spec.nelems * 8, dtype=np.int64).reshape(-1, 8)) % n
    else:
        coords = rng.random((n, 3)) * 0.3
        coords[:, 2] += spec.z0
        conn = rng.integers(0, n, size=(spec.nelems, 4), dtype=np.int64)
    return MeshBlock(spec, coords, conn)


def cylinder_blocks(
    nblocks: int,
    total_cells: int,
    kind_mix: Tuple[str, ...] = ("structured", "unstructured"),
    irregularity: float = 0.5,
    seed: int = 1234,
    id_base: int = 0,
) -> List[BlockSpec]:
    """Pre-partition a rocket cylinder into irregular block specs.

    Cell counts per block are drawn around ``total_cells / nblocks``
    with relative spread ``irregularity`` (blocks "can have different
    sizes"), then rescaled so they sum to ``total_cells`` exactly
    (±rounding).
    """
    if nblocks <= 0 or total_cells < nblocks:
        raise ValueError("need at least one cell per block")
    rng = np.random.default_rng(seed)
    weights = 1.0 + irregularity * (rng.random(nblocks) - 0.5) * 2.0
    weights = np.clip(weights, 0.1, None)
    cells = np.maximum(1, np.round(weights / weights.sum() * total_cells)).astype(int)
    specs = []
    for i, ncells in enumerate(cells):
        kind = kind_mix[i % len(kind_mix)]
        # Node count tracks cell count (hex ~ 1.1x, tet ~ 0.3x).
        nnodes = max(8, int(ncells * (1.1 if kind == "structured" else 0.35)))
        specs.append(
            BlockSpec(
                block_id=id_base + i,
                kind=kind,
                nnodes=nnodes,
                nelems=int(ncells),
                theta0=2 * np.pi * (i / nblocks),
                z0=3.0 * (i / nblocks),
            )
        )
    return specs
