"""Command-line interface: ``python -m repro <command>``.

Runs the paper's experiments and demos without going through pytest:

* ``table1``  — Table 1 (Turing computation & I/O times)
* ``fig3a``   — Fig 3(a) (Frost apparent write throughput)
* ``fig3b``   — Fig 3(b) (Frost SMP layout comparison)
* ``ablations`` — the A1–A6 design-choice studies
* ``demo``    — a quick GENx run with a timing breakdown
* ``trace``   — per-rank I/O timeline + overlap ratios (repro.obs)
* ``perfbench``  — wall-clock microbenchmarks of the simulator itself
* ``scalebench`` — simulator scaling curves at 64..1024 ranks
* ``faultbench`` — fault-injection chaos matrix + recovery rates

``--quick`` shrinks everything for a fast smoke pass; ``--out DIR``
also writes the rendered tables (and, where a command produces one,
the aggregated instrumentation payload as ``BENCH_<name>.json``) to
files.
"""

from __future__ import annotations

import argparse
import os
import sys


def _emit(args, name: str, text: str, payload=None) -> None:
    print(text)
    print()
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, name)
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"[saved to {path}]")
        if payload is not None:
            from .bench import write_bench_json

            jpath = write_bench_json(args.out, os.path.splitext(name)[0], payload)
            print(f"[saved to {jpath}]")


def cmd_table1(args) -> None:
    from .bench import run_table1

    result = run_table1(
        proc_counts=(16, 32, 64),
        nruns=2 if args.quick else args.runs,
        scale=0.25 if args.quick else 1.0,
    )
    _emit(args, "table1.txt", result.render())


def cmd_fig3a(args) -> None:
    from .bench import run_fig3a, run_fig3a_partial_read

    counts = (1, 3, 7, 15, 30) if args.quick else (1, 3, 7, 15, 30, 60, 120, 480)
    result = run_fig3a(proc_counts=counts, nruns=1 if args.quick else args.runs,
                       steps=2, snapshot_interval=1)
    partial_lines = []
    for module in ("rochdf", "trochdf"):
        pr = run_fig3a_partial_read(
            nprocs=4 if args.quick else 15,
            nblocks_per_rank=2 if args.quick else 4,
            nelems=512 if args.quick else 4096,
            module=module,
        )
        partial_lines.append(
            f"partial attribute read, {module} (1 of 4 attrs, "
            f"{pr['nprocs']} procs): "
            f"{pr['partial_read_s']*1e3:.2f} ms sieved vs "
            f"{pr['full_read_s']*1e3:.2f} ms full-record scan "
            f"({pr['speedup']:.2f}x less visible read time)"
        )
    _emit(args, "fig3a.txt", result.render() + "\n" + "\n".join(partial_lines))


def cmd_fig3b(args) -> None:
    from .bench import run_fig3b

    counts = (15, 60) if args.quick else (15, 60, 240)
    result = run_fig3b(
        proc_counts=counts,
        nruns=1 if args.quick else args.runs,
        per_client_bytes=0.25 * 1024 * 1024,
        steps=10,
        step_seconds=20.0,
        snapshot_interval=5,
    )
    _emit(args, "fig3b.txt", result.render())


def cmd_ablations(args) -> None:
    from .bench import (
        render_table,
        run_active_buffering_ablation,
        run_buffer_size_sweep,
        run_client_buffering_ablation,
        run_driver_tier_matrix,
        run_hdf_driver_scaling,
        run_load_balancing_ablation,
        run_ratio_sweep,
    )

    a1 = run_active_buffering_ablation()
    _emit(args, "a1.txt", render_table(
        ["mode", "visible I/O (s)"], [[k, v] for k, v in a1.items()],
        title="A1 — active buffering on/off",
    ))
    a2 = run_hdf_driver_scaling()
    rows = []
    for driver, cells in a2.items():
        for count, (w, r) in sorted(cells.items()):
            rows.append([driver, count, w, r])
    _emit(args, "a2.txt", render_table(
        ["driver", "datasets", "write (s)", "read (s)"], rows,
        title="A2 — HDF4 vs HDF5 scaling",
    ))
    a2t = run_driver_tier_matrix(ndatasets=100 if args.quick else 800)
    rows = [
        [driver, tier, v["visible_write_s"], v["durable_s"]]
        for driver, tiers in a2t.items()
        for tier, v in tiers.items()
    ]
    _emit(args, "a2_tiers.txt", render_table(
        ["driver", "tier", "visible write (s)", "durable (s)"], rows,
        title="A2b — driver x storage tier",
    ))
    a3 = run_ratio_sweep()
    _emit(args, "a3.txt", render_table(
        ["ratio", "visible I/O (s)", "files"],
        [[f"{k}:1", v["visible_io"], v["files"]] for k, v in sorted(a3.items())],
        title="A3 — client:server ratio",
    ))
    a4 = run_buffer_size_sweep()
    _emit(args, "a4.txt", render_table(
        ["buffer (x snapshot)", "visible I/O (s)", "flushes"],
        [[k, v["visible_io"], v["overflow_flushes"]] for k, v in sorted(a4.items())],
        title="A4 — server buffer capacity",
    ))
    a5 = run_client_buffering_ablation()
    _emit(args, "a5.txt", render_table(
        ["buffering", "visible I/O (s)"], [[k, v] for k, v in a5.items()],
        title="A5 — client-side buffer level",
    ))
    a6 = run_load_balancing_ablation()
    _emit(args, "a6.txt", render_table(
        ["partition", "computation (s)"], [[k, v] for k, v in a6.items()],
        title="A6 — dynamic load balancing",
    ))


def cmd_demo(args) -> None:
    from .bench import render_table
    from .cluster import Machine, turing
    from .genx import GENxConfig, lab_scale_motor, run_genx
    from .obs import overlap_ratio, summary_payload

    scale = 0.02 if args.quick else 0.1
    workload = lab_scale_motor(
        scale=scale, nblocks_fluid=32, nblocks_solid=16,
        steps=40, snapshot_interval=10,
    )
    rows = []
    instrumentation = {}
    for mode, nservers in (("rochdf", 0), ("trochdf", 0), ("rocpanda", 2)):
        machine = Machine(turing(), seed=args.seed)
        nprocs = 16 + nservers
        result = run_genx(
            machine, nprocs,
            GENxConfig(workload=workload, io_mode=mode, nservers=nservers,
                       prefix=f"demo_{mode}"),
        )
        instrumentation[mode] = summary_payload(result.recorder)
        rows.append([
            mode, result.computation_time, result.visible_io_time,
            overlap_ratio(result.recorder.io_records, module=mode),
            result.files_created,
        ])
    _emit(args, "demo.txt", render_table(
        ["I/O service", "computation (s)", "visible I/O (s)", "overlap", "files"],
        rows,
        title="GENx demo: 16 compute processors on simulated Turing",
    ), payload={"modes": instrumentation})


def cmd_perfbench(args) -> None:
    import json

    from .bench.perf import (
        DEFAULT_BASELINE_PATH,
        DEFAULT_QUICK_BASELINE_PATH,
        check_regressions,
        load_baseline,
        profile_stats,
        render_perf,
        run_perfbench,
    )

    default_baseline = (
        DEFAULT_QUICK_BASELINE_PATH if args.quick else DEFAULT_BASELINE_PATH
    )
    baseline = load_baseline(args.baseline or default_baseline)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    payload = run_perfbench(
        quick=args.quick, baseline=baseline, skip_e2e=args.skip_e2e
    )
    if profiler is not None:
        profiler.disable()
        print(profile_stats(profiler, top=20))
    _emit(args, "perf.txt", render_perf(payload), payload=payload)
    # The repo-root copy is the committed before/after record tracked
    # PR-over-PR (alongside bench_results/BENCH_perf.json); quick runs
    # measure reduced workloads and must not overwrite it.
    if not args.quick:
        with open("BENCH_perf.json", "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("[saved to BENCH_perf.json]")
    if args.max_regression is not None:
        if profiler is not None:
            # cProfile's tracing overhead lands inside every timed
            # region; rates measured under it cannot be compared to an
            # unprofiled baseline.
            print("[--profile active: skipping regression gate]")
            return
        if "speedup_vs_baseline" not in payload:
            print("[no size-matched baseline: skipping regression gate]")
            return
        regressed = check_regressions(payload, args.max_regression)
        if regressed:
            floor = 1.0 - args.max_regression
            for name, speedup in regressed:
                print(
                    f"REGRESSION: {name} at {speedup}x baseline "
                    f"(floor {floor:.2f}x)", file=sys.stderr,
                )
            sys.exit(1)
        print(f"[no micro below {1.0 - args.max_regression:.2f}x baseline]")


def cmd_scalebench(args) -> None:
    import json

    from .bench.scale import (
        DEFAULT_SCALE_BASELINE_PATH,
        DEFAULT_SCALE_QUICK_BASELINE_PATH,
        check_scale_regressions,
        load_scale_baseline,
        render_scale,
        run_scalebench,
    )

    default_baseline = (
        DEFAULT_SCALE_QUICK_BASELINE_PATH
        if args.quick
        else DEFAULT_SCALE_BASELINE_PATH
    )
    baseline = load_scale_baseline(args.baseline or default_baseline)
    points = tuple(args.points) if args.points else None
    payload = run_scalebench(quick=args.quick, baseline=baseline, points=points)
    _emit(args, "scaling.txt", render_scale(payload), payload=payload)
    # The repo-root copy is the committed 64 -> 1024 scaling record
    # tracked PR-over-PR; quick runs cover one point and must not
    # overwrite it.
    if not args.quick and not args.points:
        with open("BENCH_scaling.json", "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("[saved to BENCH_scaling.json]")
    if args.max_regression is not None:
        if "speedup_vs_baseline" not in payload:
            print("[no size-matched baseline: skipping regression gate]")
            return
        regressed = check_scale_regressions(payload, args.max_regression)
        if regressed:
            floor = 1.0 - args.max_regression
            for name, speedup in regressed:
                print(
                    f"REGRESSION: {name} at {speedup}x baseline "
                    f"(floor {floor:.2f}x)", file=sys.stderr,
                )
            sys.exit(1)
        print(f"[no point below {1.0 - args.max_regression:.2f}x baseline]")


def cmd_faultbench(args) -> None:
    from .bench.faults import DEFAULT_PERF_PATH, render_faults, run_faultbench

    payload = run_faultbench(
        quick=args.quick,
        seed=args.seed,
        skip_overhead=args.skip_overhead,
        perf_path=args.perf_baseline or DEFAULT_PERF_PATH,
        only=args.only or None,
    )
    _emit(args, "faults.txt", render_faults(payload), payload=payload)


def cmd_trace(args) -> None:
    from .bench import render_table
    from .cluster import Machine, turing
    from .genx import GENxConfig, lab_scale_motor, run_genx
    from .obs import overlap_ratio, render_timeline, summary_payload

    modes = (
        ["rochdf", "trochdf", "rocpanda"]
        if args.scenario == "all"
        else [args.scenario]
    )
    workload = lab_scale_motor(
        scale=0.02, nblocks_fluid=8, nblocks_solid=4,
        steps=8, snapshot_interval=4,
    )
    sections = []
    rows = []
    payloads = {}
    for mode in modes:
        nservers = 1 if mode == "rocpanda" else 0
        machine = Machine(turing(), seed=args.seed)
        result = run_genx(
            machine, 4 + nservers,
            GENxConfig(workload=workload, io_mode=mode, nservers=nservers,
                       prefix=f"trace_{mode}", storage_tier=args.tier),
        )
        recorder = result.recorder
        # Module-level records only: the per-dataset "shdf" stream is
        # too chatty for a terminal timeline (it stays in the JSON).
        module_records = [r for r in recorder.io_records if r.module != "shdf"]
        sections.append(f"=== {mode} ===")
        sections.append(
            render_timeline(module_records, limit_per_rank=args.limit)
        )
        payload = summary_payload(recorder)
        payloads[mode] = payload
        mod = payload["modules"].get(mode, {})
        counters = payload["counters"].get(mode, {})
        tier_counters = payload["counters"].get("tier", {})
        tier_mod = payload["modules"].get("tier", {})
        # Overlap over the module *and* the storage tier's drain stream:
        # under tier="burst" the hidden work is the write-behind drain.
        overlap_records = [
            r for r in recorder.io_records if r.module in (mode, "tier")
        ]
        rows.append([
            mode,
            mod.get("visible_write_time", 0.0),
            mod.get("background_time", 0.0) + tier_mod.get("background_time", 0.0),
            overlap_ratio(overlap_records),
            payload["comm"]["messages_sent"],
            payload["comm"]["bytes_sent"],
            int(counters.get("overflow_flushes", 0)),
            int(counters.get("retries", 0) + counters.get("write_retries", 0)),
            int(counters.get("failovers", 0)),
            int(tier_counters.get("drain_backlog_bytes", 0)),
            int(tier_counters.get("tier_evictions", 0)),
            int(tier_counters.get("drain_flushes", 0)),
        ])
    sections.append(render_table(
        ["service", "visible write (s)", "background (s)", "overlap",
         "messages", "bytes on wire", "flushes", "retries", "failovers",
         "drain backlog (B)", "tier evict", "drain flushes"],
        rows,
        title="Instrumentation summary (overlap = background / (background + visible write))",
    ))
    _emit(args, "trace.txt", "\n".join(sections), payload={"scenarios": payloads})


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduction of 'Flexible and Efficient Parallel I/O for "
            "Large-Scale Multi-component Simulations' (IPPS 2003)"
        ),
    )
    parser.add_argument("--quick", action="store_true",
                        help="shrink workloads for a fast smoke pass")
    parser.add_argument("--runs", type=int, default=3,
                        help="repetitions per configuration (default 3)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", metavar="DIR",
                        help="also save rendered tables under DIR")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, help_text in (
        ("table1", cmd_table1, "reproduce Table 1 (Turing)"),
        ("fig3a", cmd_fig3a, "reproduce Fig 3(a) (Frost throughput)"),
        ("fig3b", cmd_fig3b, "reproduce Fig 3(b) (Frost SMP layouts)"),
        ("ablations", cmd_ablations, "run the A1-A6 ablation studies"),
        ("demo", cmd_demo, "quick three-service comparison run"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.set_defaults(func=fn)
    perf = sub.add_parser(
        "perfbench",
        help="wall-clock microbenchmarks of the simulator's hot paths",
    )
    perf.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline BENCH_perf JSON to compare against "
             "(default: bench_results/BENCH_perf_baseline.json)",
    )
    perf.add_argument(
        "--skip-e2e", action="store_true",
        help="skip the end-to-end table1(64p) wall-clock run",
    )
    perf.add_argument(
        "--profile", action="store_true",
        help="run the suite under cProfile and print the top-20 "
             "cumulative-time entries",
    )
    perf.add_argument(
        "--max-regression", type=float, default=None, metavar="FRAC",
        help="fail (exit 1) if any microbenchmark is more than FRAC "
             "slower than the committed baseline (e.g. 0.25)",
    )
    perf.set_defaults(func=cmd_perfbench)
    scale = sub.add_parser(
        "scalebench",
        help="simulator scaling curves, 64 -> 1024 ranks "
             "(--quick: 128-client point only)",
    )
    scale.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline BENCH_scaling JSON to compare against "
             "(default: bench_results/BENCH_scaling_baseline[_quick].json)",
    )
    scale.add_argument(
        "--points", type=int, nargs="+", default=None, metavar="N",
        help="client counts to run instead of the standard sweep",
    )
    scale.add_argument(
        "--max-regression", type=float, default=None, metavar="FRAC",
        help="fail (exit 1) if any curve point's host wall is more than "
             "FRAC slower than the committed baseline (e.g. 0.25)",
    )
    scale.set_defaults(func=cmd_scalebench)
    faults = sub.add_parser(
        "faultbench",
        help="chaos matrix: fault injection x I/O module recovery rates",
    )
    faults.add_argument(
        "--skip-overhead", action="store_true",
        help="skip the no-fault table1(64p) overhead measurement",
    )
    faults.add_argument(
        "--perf-baseline", default=None, metavar="PATH",
        help="committed BENCH_perf JSON the overhead compares against "
             "(default: bench_results/BENCH_perf.json)",
    )
    faults.add_argument(
        "--only", action="append", metavar="SCENARIO/MODULE",
        help="run only this chaos-matrix row (repeatable); "
             "see repro.bench.scenario_names()",
    )
    faults.set_defaults(func=cmd_faultbench)
    trace = sub.add_parser(
        "trace", help="per-rank I/O timeline and overlap ratios"
    )
    trace.add_argument(
        "scenario", nargs="?", default="all",
        choices=("all", "rochdf", "trochdf", "rocpanda"),
        help="which I/O service to trace (default: all three)",
    )
    trace.add_argument(
        "--limit", type=int, default=12,
        help="max records shown per rank (default 12)",
    )
    trace.add_argument(
        "--tier", default="direct", choices=("direct", "burst"),
        help="storage tier to run the traced jobs through "
             "(burst = memory-speed absorb + write-behind drain)",
    )
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
