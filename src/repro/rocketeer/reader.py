"""Snapshot reading: reassemble distributed output into global views.

Rocketeer, CSAR's in-house visualization tool, reads the HDF snapshot
files written by either I/O service directly (§3.1) — it must cope
with both layouts: one file per compute process (Rochdf/T-Rochdf) and
one file per I/O server (Rocpanda).  This module is that ingestion
layer: it discovers the files of a snapshot, decodes them, and groups
the per-block datasets back into windows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..fs.vfs import VirtualDisk
from ..io.base import DataBlock, datasets_to_blocks
from ..shdf.codec import decode_file

__all__ = ["Snapshot", "SnapshotSeries", "load_snapshot", "discover_snapshots"]

#: File names produced by the I/O services:
#:   <run>_<step>_<window>_pNNNNN.shdf   (individual mode)
#:   <run>_<step>_<window>_sNNNN.shdf    (collective mode)
_SNAPSHOT_RE = re.compile(
    r"^(?P<run>.+)_(?P<step>\d{6})_(?P<window>[a-z0-9]+)_(?P<writer>[ps]\d+)\.shdf$"
)


@dataclass
class Snapshot:
    """One reassembled output phase."""

    run: str
    step: int
    #: window label (lowercased, from the file name) -> blocks by id.
    windows: Dict[str, Dict[int, DataBlock]] = field(default_factory=dict)
    #: File-level attributes seen (e.g. time_step), merged.
    attrs: Dict[str, object] = field(default_factory=dict)
    nfiles: int = 0

    def window(self, label: str) -> Dict[int, DataBlock]:
        try:
            return self.windows[label]
        except KeyError:
            raise KeyError(
                f"snapshot {self.run}@{self.step} has no window {label!r}; "
                f"available: {sorted(self.windows)}"
            ) from None

    def field_values(self, label: str, attr: str) -> np.ndarray:
        """Concatenated values of one field across all blocks."""
        blocks = self.window(label)
        parts = [
            b.arrays[attr].ravel() for b in blocks.values() if attr in b.arrays
        ]
        if not parts:
            raise KeyError(f"no field {attr!r} in window {label!r}")
        return np.concatenate(parts)

    def field_stats(self, label: str, attr: str) -> Dict[str, float]:
        values = self.field_values(label, attr)
        return {
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "std": float(values.std()),
            "count": int(values.size),
        }

    @property
    def total_cells(self) -> int:
        return sum(
            b.nelems for blocks in self.windows.values() for b in blocks.values()
        )

    @property
    def nblocks(self) -> int:
        return sum(len(blocks) for blocks in self.windows.values())


def discover_snapshots(disk: VirtualDisk, run: str) -> List[int]:
    """Steps of every snapshot of a run present on the disk, sorted."""
    steps = set()
    for path in disk.listdir(run + "_"):
        m = _SNAPSHOT_RE.match(path)
        if m and m.group("run") == run:
            steps.add(int(m.group("step")))
    return sorted(steps)


def load_snapshot(disk: VirtualDisk, run: str, step: int) -> Snapshot:
    """Reassemble one snapshot from whatever files exist for it."""
    snapshot = Snapshot(run=run, step=step)
    prefix = f"{run}_{step:06d}_"
    for path in disk.listdir(prefix):
        m = _SNAPSHOT_RE.match(path)
        if not m or int(m.group("step")) != step:
            continue
        image = decode_file(disk.open(path).read())
        snapshot.attrs.update(image.attrs)
        snapshot.nfiles += 1
        window_label = m.group("window")
        bucket = snapshot.windows.setdefault(window_label, {})
        for block in datasets_to_blocks(list(image)):
            if block.block_id in bucket:
                raise ValueError(
                    f"duplicate block {block.block_id} for window "
                    f"{window_label!r} in snapshot {run}@{step}"
                )
            bucket[block.block_id] = block
    if snapshot.nfiles == 0:
        raise FileNotFoundError(f"no files for snapshot {run}@{step}")
    return snapshot


class SnapshotSeries:
    """Lazy access to all snapshots of one run (a time series)."""

    def __init__(self, disk: VirtualDisk, run: str):
        self.disk = disk
        self.run = run
        self.steps = discover_snapshots(disk, run)
        if not self.steps:
            raise FileNotFoundError(f"no snapshots for run {run!r}")
        self._cache: Dict[int, Snapshot] = {}

    def __len__(self) -> int:
        return len(self.steps)

    def at(self, step: int) -> Snapshot:
        if step not in self.steps:
            raise KeyError(f"run {self.run!r} has no snapshot at step {step}")
        if step not in self._cache:
            self._cache[step] = load_snapshot(self.disk, self.run, step)
        return self._cache[step]

    def first(self) -> Snapshot:
        return self.at(self.steps[0])

    def last(self) -> Snapshot:
        return self.at(self.steps[-1])

    def time_series(self, window: str, attr: str, reducer=np.mean) -> List[Tuple[int, float]]:
        """``[(step, reducer(field))...]`` across the whole run."""
        out = []
        for step in self.steps:
            values = self.at(step).field_values(window, attr)
            out.append((step, float(reducer(values))))
        return out
