"""Text rendering of snapshot data (Rocketeer's terminal cousin).

Rocketeer produces images like Fig 1(b); this module produces the
terminal equivalents a simulation engineer actually greps: axial
profiles, per-window summaries, and time-series sparklines — all built
only from the snapshot files, never from simulation memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .reader import Snapshot, SnapshotSeries

__all__ = ["axial_profile", "render_profile", "sparkline", "summary_report"]

_BARS = " ▁▂▃▄▅▆▇█"


def axial_profile(
    snapshot: Snapshot,
    window: str,
    attr: str,
    nbins: int = 24,
) -> Tuple[np.ndarray, np.ndarray]:
    """Mean field value binned along the rocket axis (z).

    Element-located fields are attributed to the mean z of each block
    (block-granular, like a coarse visualization LoD); returns
    ``(bin_centers, means)`` with NaN for empty bins.
    """
    blocks = snapshot.window(window)
    zs, values = [], []
    for block in blocks.values():
        if attr not in block.arrays or "coords" not in block.arrays:
            continue
        z = float(block.arrays["coords"][:, 2].mean())
        zs.append(z)
        values.append(float(block.arrays[attr].mean()))
    if not zs:
        raise KeyError(f"no usable blocks for {window}.{attr}")
    zs = np.asarray(zs)
    values = np.asarray(values)
    edges = np.linspace(zs.min(), zs.max() + 1e-12, nbins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    means = np.full(nbins, np.nan)
    idx = np.clip(np.digitize(zs, edges) - 1, 0, nbins - 1)
    for b in range(nbins):
        mask = idx == b
        if mask.any():
            means[b] = values[mask].mean()
    return centers, means


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a numeric series (NaNs become spaces)."""
    arr = np.asarray(list(values), dtype=float)
    finite = arr[np.isfinite(arr)]
    if finite.size == 0:
        return " " * len(arr)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    out = []
    for v in arr:
        if not np.isfinite(v):
            out.append(" ")
        elif span == 0:
            out.append(_BARS[4])
        else:
            out.append(_BARS[1 + int((v - lo) / span * (len(_BARS) - 2))])
    return "".join(out)


def render_profile(
    snapshot: Snapshot, window: str, attr: str, nbins: int = 24
) -> str:
    """One-line axial profile: label, sparkline, range."""
    _, means = axial_profile(snapshot, window, attr, nbins)
    finite = means[np.isfinite(means)]
    return (
        f"{window}.{attr:<14s} |{sparkline(means)}| "
        f"[{finite.min():.4g}, {finite.max():.4g}]"
    )


def summary_report(series: SnapshotSeries, fields: Dict[str, List[str]]) -> str:
    """Multi-snapshot report: per-field stats at first/last + sparkline.

    ``fields`` maps window label -> list of attrs, e.g.
    ``{"rocflo": ["pressure"], "rocburn": ["burn_distance"]}``.
    """
    lines = [
        f"run {series.run!r}: {len(series)} snapshots at steps {series.steps}",
        f"blocks: {series.first().nblocks}, total cells (first): "
        f"{series.first().total_cells}",
        "",
    ]
    for window, attrs in fields.items():
        for attr in attrs:
            trend = [v for _, v in series.time_series(window, attr)]
            first = series.first().field_stats(window, attr)
            last = series.last().field_stats(window, attr)
            lines.append(
                f"{window}.{attr:<14s} mean {first['mean']:.5g} -> "
                f"{last['mean']:.5g}   trend |{sparkline(trend)}|"
            )
    return "\n".join(lines)
