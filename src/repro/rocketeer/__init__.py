"""Rocketeer: snapshot post-processing and terminal visualization.

The ingestion side of CSAR's visualization tool (§3.1, Fig 1(b)):
reads snapshot files written by any of the I/O services (individual or
collective layout), reassembles the distributed blocks into global
views, and renders axial profiles / time series as text.
"""

from .reader import Snapshot, SnapshotSeries, discover_snapshots, load_snapshot
from .render import axial_profile, render_profile, sparkline, summary_report

__all__ = [
    "Snapshot",
    "SnapshotSeries",
    "load_snapshot",
    "discover_snapshots",
    "axial_profile",
    "render_profile",
    "sparkline",
    "summary_report",
]
