"""SHDF version 2: the indexed (B-tree-era) variant of the format.

Version 1 mirrors HDF4: records are found by scanning the file.
Version 2 mirrors HDF5's structural idea: a **dataset index** at the
end of the file maps names to record offsets, so a reader can locate
any dataset without touching the others — the structural counterpart
of the :func:`~repro.shdf.drivers.hdf5_driver` log-cost timing model.

Layout::

    header   := "SHDF" | u16 version=2 | attrs
    record*  := (same record encoding as v1)
    index    := "SIDX" | u32 count | (str16 name | u64 offset | u64 length)*
    footer   := u64 index_offset | "SEND"

A v2 file is therefore also scannable sequentially (records are
identical); the index is authoritative when present.  Files are
re-indexed on close after appends.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from .codec import (
    CodecError,
    _decode_attrs,
    _decode_record,
    _encode_attrs,
    _pack_str16,
    _Reader,
    encode_dataset,
)
from .format import END_MAGIC, FILE_MAGIC, FOOTER_SIZE, INDEX_MAGIC, VERSION_2
from .model import Dataset, FileImage

__all__ = [
    "VERSION_2",
    "INDEX_MAGIC",
    "END_MAGIC",
    "FOOTER_SIZE",
    "encode_header_v2",
    "encode_index",
    "encode_file_v2",
    "decode_file_v2",
    "read_index",
    "read_dataset_at",
    "detect_version",
]

def detect_version(buf: bytes) -> int:
    """File format version of a buffer (1 or 2)."""
    if len(buf) < 6 or buf[:4] != FILE_MAGIC:
        raise CodecError("not an SHDF file (bad magic)")
    return struct.unpack("<H", buf[4:6])[0]


def encode_header_v2(attrs: dict) -> bytes:
    return FILE_MAGIC + struct.pack("<H", VERSION_2) + _encode_attrs(attrs)


def encode_index(entries: List[Tuple[str, int, int]]) -> bytes:
    """Index block for ``(name, offset, length)`` entries."""
    parts = [INDEX_MAGIC, struct.pack("<I", len(entries))]
    for name, offset, length in entries:
        parts.append(_pack_str16(name))
        parts.append(struct.pack("<QQ", offset, length))
    return b"".join(parts)


def encode_file_v2(image: FileImage) -> bytes:
    """Full v2 bytes: header, records, index, footer."""
    header = encode_header_v2(image.attrs)
    parts = [header]
    entries: List[Tuple[str, int, int]] = []
    offset = len(header)
    for dataset in image:
        record = encode_dataset(dataset)
        entries.append((dataset.name, offset, len(record)))
        parts.append(record)
        offset += len(record)
    index = encode_index(entries)
    parts.append(index)
    parts.append(struct.pack("<Q", offset) + END_MAGIC)
    return b"".join(parts)


def read_index(buf: bytes) -> Dict[str, Tuple[int, int]]:
    """Parse the footer + index: name -> (offset, length).

    Raises :class:`CodecError` when the footer/index is missing or
    corrupt (e.g. the writer crashed before close) — callers may then
    fall back to a sequential scan.
    """
    if len(buf) < FOOTER_SIZE:
        raise CodecError("v2 file too short for a footer")
    if buf[-4:] != END_MAGIC:
        raise CodecError("v2 footer missing (file not closed?)")
    (index_offset,) = struct.unpack("<Q", buf[-12:-4])
    if index_offset >= len(buf) - FOOTER_SIZE:
        raise CodecError("v2 index offset out of range")
    reader = _Reader(buf, index_offset)
    if reader.take(4) != INDEX_MAGIC:
        raise CodecError("bad v2 index magic")
    count = reader.u32()
    index: Dict[str, Tuple[int, int]] = {}
    for _ in range(count):
        name = reader.str16()
        offset = reader.u64()
        length = reader.u64()
        if offset + length > index_offset:
            raise CodecError(f"index entry {name!r} overlaps the index")
        index[name] = (offset, length)
    return index


def read_dataset_at(buf: bytes, offset: int, copy: bool = False) -> Dataset:
    """Decode one record at a known offset (random access).

    Returns a read-only zero-copy view of ``buf`` unless ``copy=True``.
    """
    return _decode_record(_Reader(buf, offset), copy)


def decode_file_v2(buf: bytes, copy: bool = False) -> FileImage:
    """Decode a full v2 buffer via its index."""
    if detect_version(buf) != VERSION_2:
        raise CodecError("not a v2 SHDF file")
    reader = _Reader(buf, 6)
    attrs = _decode_attrs(reader, copy)
    image = FileImage(attrs)
    index = read_index(buf)
    # Preserve on-disk record order (insertion order of the writer).
    for name, (offset, _length) in sorted(index.items(), key=lambda kv: kv[1][0]):
        dataset = read_dataset_at(buf, offset, copy)
        if dataset.name != name:
            raise CodecError(
                f"index entry {name!r} points at record {dataset.name!r}"
            )
        image.add(dataset)
    return image
