"""Timing drivers: HDF4-like vs HDF5-like metadata cost models.

The paper's performance arguments rest on two measured facts about the
real libraries ([13], §3.2, §4.2, §7.1):

* writing in a scientific format costs far more than raw binary — each
  dataset carries metadata bookkeeping;
* **HDF4's per-dataset access cost grows with the number of datasets
  already in the file** (a linearly scanned file directory), while
  HDF5's grows only logarithmically (B-tree) but with a larger
  constant.

A driver answers: "what does creating / locating dataset number *k* in
this file cost, beyond moving the bytes?"  The costs are split into a
CPU part (charged as plain time at the caller) and a number of extra
filesystem metadata operations (charged through the fs model, so NFS's
high metadata latency hurts exactly like it did in production).

Storage tiers
-------------
The second axis of the seam is *where* writes land:

* ``tier="direct"`` — the executable spec: writes go straight through
  the machine's filesystem model (bit-identical in virtual time to the
  pre-tier code paths);
* ``tier="burst"`` — :func:`apply_storage_tier` interposes a
  :class:`~repro.fs.tiers.BurstBufferTier` in front of ``machine.fs``,
  so writes absorb at memory speed and drain in the background.

Both axes compose: any driver can run over either tier, which is the
driver×tier ablation matrix in :mod:`repro.bench.ablations`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "HDFDriver",
    "hdf4_driver",
    "hdf5_driver",
    "raw_driver",
    "STORAGE_TIERS",
    "apply_storage_tier",
]

#: The storage-tier axis of the driver seam.
STORAGE_TIERS = ("direct", "burst")


def apply_storage_tier(machine, tier: str, config=None):
    """Route ``machine.fs`` through the requested storage tier.

    ``"direct"`` is the identity (the executable spec keeps its exact
    timing); ``"burst"`` wraps the machine's filesystem model in a
    :class:`~repro.fs.tiers.BurstBufferTier` fronting the same durable
    ``machine.disk``.  Idempotent: re-applying ``"burst"`` to an
    already-tiered machine is a no-op.  Returns ``machine.fs``.
    """
    if tier not in STORAGE_TIERS:
        raise ValueError(f"unknown storage tier {tier!r}; expected {STORAGE_TIERS}")
    if tier == "direct":
        return machine.fs
    from ..fs.tiers import BurstBufferTier

    if isinstance(machine.fs, BurstBufferTier):
        return machine.fs
    machine.fs = BurstBufferTier(machine.env, machine.fs, config)
    return machine.fs


@dataclass(frozen=True)
class HDFDriver:
    """Cost model of one scientific-format implementation."""

    name: str
    #: Fixed CPU cost to create/append one dataset.
    create_base: float
    #: Fixed CPU cost to locate one dataset for reading.
    lookup_base: float
    #: Coefficient of the directory-structure cost term.
    dir_coeff: float
    #: Directory growth: "linear" (HDF4) or "log" (HDF5).
    growth: str
    #: Extra metadata bytes written to the file per dataset.
    meta_bytes_per_dataset: int
    #: Extra filesystem metadata round-trips per dataset operation.
    fs_meta_ops_per_dataset: int

    def structure_cost(self, ndatasets: int) -> float:
        """Directory maintenance/scan CPU cost with ``ndatasets`` present."""
        if ndatasets < 0:
            raise ValueError("ndatasets must be >= 0")
        if self.growth == "linear":
            return self.dir_coeff * ndatasets
        if self.growth == "log":
            return self.dir_coeff * math.log2(1 + ndatasets)
        raise ValueError(f"unknown growth model {self.growth!r}")

    def create_cost(self, ndatasets: int) -> float:
        """CPU cost of creating dataset number ``ndatasets`` (0-based)."""
        return self.create_base + self.structure_cost(ndatasets)

    def lookup_cost(self, ndatasets: int) -> float:
        """CPU cost of locating one dataset in a file of ``ndatasets``."""
        return self.lookup_base + self.structure_cost(ndatasets)


def hdf4_driver(
    create_base: float = 1.0e-3,
    lookup_base: float = 16.0e-3,
    dir_coeff: float = 8.0e-6,
    meta_bytes_per_dataset: int = 2048,
    fs_meta_ops_per_dataset: int = 1,
) -> HDFDriver:
    """HDF4: cheap constants, *linear* directory growth.

    With thousands of datasets per file (Rocpanda restart files) the
    linear term dominates — the effect behind Table 1's restart row.
    """
    return HDFDriver(
        name="hdf4",
        create_base=create_base,
        lookup_base=lookup_base,
        dir_coeff=dir_coeff,
        growth="linear",
        meta_bytes_per_dataset=meta_bytes_per_dataset,
        fs_meta_ops_per_dataset=fs_meta_ops_per_dataset,
    )


def hdf5_driver(
    create_base: float = 2.2e-3,
    lookup_base: float = 2.0e-3,
    dir_coeff: float = 2.0e-4,
    meta_bytes_per_dataset: int = 4096,
    fs_meta_ops_per_dataset: int = 1,
) -> HDFDriver:
    """HDF5: higher constants, *logarithmic* (B-tree) directory growth."""
    return HDFDriver(
        name="hdf5",
        create_base=create_base,
        lookup_base=lookup_base,
        dir_coeff=dir_coeff,
        growth="log",
        meta_bytes_per_dataset=meta_bytes_per_dataset,
        fs_meta_ops_per_dataset=fs_meta_ops_per_dataset,
    )


def raw_driver() -> HDFDriver:
    """A plain-binary baseline: no metadata overhead at all."""
    return HDFDriver(
        name="raw",
        create_base=0.0,
        lookup_base=0.0,
        dir_coeff=0.0,
        growth="linear",
        meta_bytes_per_dataset=0,
        fs_meta_ops_per_dataset=0,
    )
