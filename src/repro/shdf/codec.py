"""Binary codec for SHDF: portable, self-describing, append-friendly.

Layout::

    header  := MAGIC "SHDF" | u16 version | attrs
    record  := MAGIC "DSET" | str16 name | attrs | str16 dtype
               | u8 ndim | u64*ndim dims | u64 nbytes | raw data
    attrs   := u32 count | (str16 name | value)*
    value   := u8 tag | payload        (None/bool/int/float/str/bytes/
                                        ndarray/list)

All integers little-endian.  Records are written sequentially, so a
file can be *appended to* without rewriting (this mirrors HDF4's
linearly-growing file directory: finding a dataset requires a scan,
which is what the HDF4 timing driver charges for).

Hot-path notes: the codec sits on the simulator's wall-clock critical
path (every snapshot of every rank round-trips through it), so

* encoding accumulates into a single :class:`bytearray` per record
  instead of joining many small ``bytes`` (array payloads are appended
  straight from the array's buffer, skipping the ``tobytes`` copy);
* decoding reads through one :class:`memoryview` with precompiled
  :class:`struct.Struct` instances, and by default returns **read-only
  zero-copy views** of the input buffer (``np.frombuffer``).  Callers
  that mutate decoded arrays in place — the restart path installs them
  into Roccom windows where physics kernels update them — must pass
  ``copy=True``.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Any, Iterator, Tuple

import numpy as np

from .format import (
    COMMIT_MAGIC,
    COMMIT_SIZE,
    FILE_MAGIC,
    INDEX_MAGIC,
    JOURNAL_ATTR,
    RECORD_MAGIC,
    VERSION,
)
from .model import Dataset, FileImage

__all__ = [
    "CodecError",
    "TornFileError",
    "JOURNAL_ATTR",
    "encode_header",
    "encode_dataset",
    "encode_batch",
    "encode_file",
    "encode_commit_footer",
    "decode_file",
    "decode_batch",
    "decode_header",
    "iter_records",
    "scan_file",
]

_TAG_NONE = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_NDARRAY = 6
_TAG_LIST = 7

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

# Precompiled fixed-width codecs (struct.pack/unpack with a format
# string re-parses the format on every call).
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_TAG_INT_S = struct.Struct("<Bq")
_TAG_FLOAT_S = struct.Struct("<Bd")
_TAG_STR_S = struct.Struct("<BI")
#: Shape packers for the common ranks; higher ranks fall back to pack().
_DIMS = {n: struct.Struct(f"<{n}Q") for n in range(1, 9)}


class CodecError(ValueError):
    """Raised on malformed SHDF bytes or unencodable values."""


class TornFileError(CodecError):
    """A journaled SHDF file is missing its commit (crash mid-write).

    The restart path treats these files as absent and falls back to the
    previous good snapshot instead of decoding garbage.
    """


# -- low-level pieces -------------------------------------------------------

def _pack_str16(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string too long ({len(raw)} bytes)")
    return _U16.pack(len(raw)) + raw


def _append_str16(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string too long ({len(raw)} bytes)")
    out += _U16.pack(len(raw))
    out += raw


def _append_array_data(out: bytearray, arr: np.ndarray) -> None:
    """Append an array's raw bytes without an intermediate copy."""
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    if arr.ndim:
        out += arr.reshape(-1).view(np.uint8).data
    else:
        out += arr.tobytes()  # 0-d: scalar buffer, itemsize bytes


class _Reader:
    """Cursor over an immutable buffer; slices are zero-copy views."""

    __slots__ = ("buf", "pos", "_mv", "_len")

    def __init__(self, buf, pos: int = 0):
        self.buf = buf
        self.pos = pos
        self._mv = memoryview(buf)
        self._len = len(buf)

    def take(self, n: int) -> memoryview:
        pos = self.pos
        if pos + n > self._len:
            raise CodecError("truncated SHDF data")
        self.pos = pos + n
        return self._mv[pos : pos + n]

    def u8(self) -> int:
        pos = self.pos
        if pos >= self._len:
            raise CodecError("truncated SHDF data")
        self.pos = pos + 1
        return self._mv[pos]

    def _unpack(self, codec: struct.Struct) -> Any:
        pos = self.pos
        end = pos + codec.size
        if end > self._len:
            raise CodecError("truncated SHDF data")
        self.pos = end
        return codec.unpack_from(self._mv, pos)[0]

    def u16(self) -> int:
        return self._unpack(_U16)

    def u32(self) -> int:
        return self._unpack(_U32)

    def u64(self) -> int:
        return self._unpack(_U64)

    def i64(self) -> int:
        return self._unpack(_I64)

    def f64(self) -> float:
        return self._unpack(_F64)

    def str16(self) -> str:
        n = self.u16()
        return str(self.take(n), "utf-8")

    @property
    def exhausted(self) -> bool:
        return self.pos >= self._len


def _frombuffer(raw: memoryview, dtype: np.dtype, shape: tuple, copy: bool) -> np.ndarray:
    """Array over ``raw``: a read-only view, or a private copy."""
    data = np.frombuffer(raw, dtype=dtype).reshape(shape)
    if copy:
        return data.copy()
    # frombuffer inherits writability from the buffer (a bytearray
    # would yield a writable alias); pin views read-only so mutation
    # attempts fail loudly instead of corrupting the file image.
    data.flags.writeable = False
    return data


def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif isinstance(value, (bool, np.bool_)):
        out += b"\x01\x01" if value else b"\x01\x00"
    elif isinstance(value, (int, np.integer)):
        iv = int(value)
        if not _I64_MIN <= iv <= _I64_MAX:
            raise CodecError(f"integer attribute out of i64 range: {iv}")
        out += _TAG_INT_S.pack(_TAG_INT, iv)
    elif isinstance(value, (float, np.floating)):
        out += _TAG_FLOAT_S.pack(_TAG_FLOAT, float(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR_S.pack(_TAG_STR, len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_STR_S.pack(_TAG_BYTES, len(value))
        out += value
    elif isinstance(value, np.ndarray):
        if value.dtype == object:
            raise CodecError("object-dtype attribute arrays are not storable")
        arr = np.asarray(value, order="C")  # keeps 0-d shape intact
        out.append(_TAG_NDARRAY)
        _append_str16(out, arr.dtype.str)
        out.append(arr.ndim)
        if arr.ndim:
            dims = _DIMS.get(arr.ndim)
            out += dims.pack(*arr.shape) if dims else struct.pack(
                f"<{arr.ndim}Q", *arr.shape
            )
        _append_array_data(out, arr)
    elif isinstance(value, (list, tuple)):
        out += _TAG_STR_S.pack(_TAG_LIST, len(value))
        for item in value:
            _encode_value(item, out)
    else:
        raise CodecError(f"unencodable attribute value: {type(value).__name__}")


def _decode_value(reader: _Reader, copy: bool = True) -> Any:
    tag = reader.u8()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return bool(reader.u8())
    if tag == _TAG_INT:
        return reader.i64()
    if tag == _TAG_FLOAT:
        return reader.f64()
    if tag == _TAG_STR:
        n = reader.u32()
        return str(reader.take(n), "utf-8")
    if tag == _TAG_BYTES:
        n = reader.u32()
        return bytes(reader.take(n))
    if tag == _TAG_NDARRAY:
        dtype = np.dtype(reader.str16())
        ndim = reader.u8()
        shape = tuple(reader.u64() for _ in range(ndim))
        count = int(np.prod(shape)) if shape else 1
        raw = reader.take(count * dtype.itemsize)
        return _frombuffer(raw, dtype, shape, copy)
    if tag == _TAG_LIST:
        n = reader.u32()
        return [_decode_value(reader, copy) for _ in range(n)]
    raise CodecError(f"unknown attribute tag {tag}")


def _encode_attrs_into(out: bytearray, attrs: dict) -> None:
    out += _U32.pack(len(attrs))
    for name, value in attrs.items():
        _append_str16(out, name)
        _encode_value(value, out)


def _encode_attrs(attrs: dict) -> bytes:
    out = bytearray()
    _encode_attrs_into(out, attrs)
    return bytes(out)


def _decode_attrs(reader: _Reader, copy: bool = True) -> dict:
    count = reader.u32()
    attrs = {}
    for _ in range(count):
        name = reader.str16()
        attrs[name] = _decode_value(reader, copy)
    return attrs


# -- public API --------------------------------------------------------------

def encode_header(attrs: dict) -> bytes:
    """File header bytes: magic, version, file attributes."""
    out = bytearray(FILE_MAGIC)
    out += _U16.pack(VERSION)
    _encode_attrs_into(out, attrs)
    return bytes(out)


#: Memo of encoded record *prefixes* (magic, name, attrs, dtype, shape,
#: payload length) keyed by everything the prefix depends on.  Snapshot
#: writes re-encode the same datasets every interval with only the
#: array bytes changed, so the per-attribute encoding work — the bulk
#: of small-record encode time — is paid once per dataset identity.
#: Keys carry each attr value's *type* because hash-equal values of
#: different types (True vs 1, 1 vs 1.0) encode differently.
_PREFIX_MEMO_CAP = 65536
_prefix_memo: "OrderedDict[tuple, bytes]" = OrderedDict()


def _encode_record_prefix(dataset: Dataset, arr: np.ndarray) -> bytes:
    out = bytearray(RECORD_MAGIC)
    _append_str16(out, dataset.name)
    _encode_attrs_into(out, dataset.attrs)
    _append_str16(out, arr.dtype.str)
    out.append(arr.ndim)
    if arr.ndim:
        dims = _DIMS.get(arr.ndim)
        out += dims.pack(*arr.shape) if dims else struct.pack(
            f"<{arr.ndim}Q", *arr.shape
        )
    out += _U64.pack(arr.nbytes)
    return bytes(out)


def _encode_dataset_into(out: bytearray, dataset: Dataset) -> None:
    arr = dataset.data
    try:
        # Flat interleaved (name, type, value, ...) tuple: same
        # discriminating power as a tuple of triples (fixed stride,
        # element-wise equality) without a generator resume plus a
        # tuple allocation per attribute on this per-record path.
        ak = []
        push = ak.append
        for k, v in dataset.attrs.items():
            push(k)
            push(type(v))
            push(v)
        key = (dataset.name, arr.dtype.str, arr.shape, tuple(ak))
        prefix = _prefix_memo.get(key)
    except TypeError:  # unhashable attr value (ndarray/list attrs)
        out += _encode_record_prefix(dataset, arr)
        _append_array_data(out, arr)
        return
    if prefix is None:
        prefix = _encode_record_prefix(dataset, arr)
        _prefix_memo[key] = prefix
        if len(_prefix_memo) > _PREFIX_MEMO_CAP:
            _prefix_memo.popitem(last=False)
    out += prefix
    _append_array_data(out, arr)


def encode_dataset(dataset: Dataset) -> bytes:
    """One appendable dataset record."""
    out = bytearray()
    _encode_dataset_into(out, dataset)
    return bytes(out)


def encode_batch(datasets) -> Tuple[bytes, list]:
    """Encode many datasets into **one** shared buffer.

    Returns ``(buf, entries)`` where ``entries`` is a list of
    ``(name, offset, length, data_nbytes)`` tuples; ``buf[offset :
    offset + length]`` is byte-identical to ``encode_dataset`` of the
    same dataset.  Batched shipping encodes a whole snapshot's worth of
    records through this in one pass instead of allocating a fresh
    buffer per record; receivers slice records back out zero-copy.
    """
    out = bytearray()
    entries = []
    for dataset in datasets:
        offset = len(out)
        _encode_dataset_into(out, dataset)
        entries.append((dataset.name, offset, len(out) - offset, dataset.nbytes))
    return bytes(out), entries


def encode_file(image: FileImage) -> bytes:
    """Full file bytes for an in-memory image.

    All records accumulate into one shared buffer — the dataset payload
    is copied exactly once on the way out.
    """
    out = bytearray(FILE_MAGIC)
    out += _U16.pack(VERSION)
    _encode_attrs_into(out, image.attrs)
    for dataset in image:
        _encode_dataset_into(out, dataset)
    return bytes(out)


def encode_commit_footer(ndatasets: int) -> bytes:
    """v1 atomic-commit footer (12 bytes: magic + u64 dataset count)."""
    return COMMIT_MAGIC + _U64.pack(ndatasets)


def decode_header(buf: bytes) -> Tuple[dict, int, int]:
    """Decode the header; returns (file_attrs, offset_after_header, version).

    Accepts both format versions (their headers are identical except
    for the version number) and hands the parsed version back so
    callers dispatch without re-reading raw bytes.
    """
    reader = _Reader(buf)
    if reader.take(4) != FILE_MAGIC:
        raise CodecError("not an SHDF file (bad magic)")
    version = reader.u16()
    if version not in (1, 2):
        raise CodecError(f"unsupported SHDF version {version}")
    attrs = _decode_attrs(reader)
    return attrs, reader.pos, version


def _skip_value(reader: _Reader) -> None:
    """Advance past one attribute value without materializing it."""
    tag = reader.u8()
    if tag == _TAG_NONE:
        return
    if tag == _TAG_BOOL:
        reader.u8()
    elif tag == _TAG_INT:
        reader.take(8)
    elif tag == _TAG_FLOAT:
        reader.take(8)
    elif tag in (_TAG_STR, _TAG_BYTES):
        reader.take(reader.u32())
    elif tag == _TAG_NDARRAY:
        dtype = np.dtype(reader.str16())
        ndim = reader.u8()
        shape = tuple(reader.u64() for _ in range(ndim))
        count = int(np.prod(shape)) if shape else 1
        reader.take(count * dtype.itemsize)
    elif tag == _TAG_LIST:
        for _ in range(reader.u32()):
            _skip_value(reader)
    else:
        raise CodecError(f"unknown attribute tag {tag}")


def _skip_attrs(reader: _Reader) -> None:
    for _ in range(reader.u32()):
        reader.take(reader.u16())  # name (str16)
        _skip_value(reader)


def _skip_record(reader: _Reader) -> str:
    """Advance past one dataset record; returns its name.

    The skip walks exactly the fields :func:`_decode_record` would
    (payload length is explicit, so no array is built), which is what
    makes a metadata-only directory scan cheap in wall-clock terms.
    """
    if reader.take(4) != RECORD_MAGIC:
        raise CodecError("bad dataset record magic")
    name = reader.str16()
    _skip_attrs(reader)
    reader.take(reader.u16())  # dtype string
    ndim = reader.u8()
    reader.take(8 * ndim)  # dims
    nbytes = reader.u64()
    reader.take(nbytes)
    return name


def scan_file(buf: bytes) -> Tuple[dict, list]:
    """Structural scan: file attrs + record extents, no array decoding.

    Returns ``(attrs, entries)`` with ``entries`` a list of ``(name,
    offset, length)`` tuples in on-disk order, such that ``buf[offset :
    offset + length]`` is one full record for :func:`decode_batch`.
    This is the sieving reader's directory pass: v2 files resolve it
    from their index; v1 files are skip-scanned (headers walked, array
    payloads jumped over).

    Torn-file semantics are identical to :func:`decode_file`: a
    journaled file missing its commit raises :class:`TornFileError`, a
    buffer cut mid-record raises :class:`CodecError`.
    """
    attrs, pos, version = decode_header(buf)
    journaled = bool(attrs.get(JOURNAL_ATTR))
    if version == 2:
        from .codec_v2 import read_index

        try:
            index = read_index(buf)
        except TornFileError:
            raise
        except CodecError as exc:
            if journaled:
                raise TornFileError(
                    f"torn v2 SHDF file (no committed index): {exc}"
                ) from exc
            # unclosed, non-journaled v2 file: sequential fallback below
        else:
            entries = sorted(
                ((name, off, length) for name, (off, length) in index.items()),
                key=lambda e: e[1],
            )
            return attrs, entries
    entries = []
    reader = _Reader(buf, pos)
    nbuf = len(buf)
    committed = None
    while not reader.exhausted:
        chunk = buf[reader.pos : reader.pos + 4]
        if chunk == RECORD_MAGIC:
            start = reader.pos
            name = _skip_record(reader)
            entries.append((name, start, reader.pos - start))
        elif chunk == COMMIT_MAGIC and reader.pos == nbuf - COMMIT_SIZE:
            committed = _U64.unpack_from(buf, reader.pos + 4)[0]
            break
        elif version == 2 and chunk == INDEX_MAGIC:
            break  # torn index region of a non-journaled v2 file
        else:
            raise CodecError(
                f"truncated or corrupt SHDF record at offset {reader.pos}"
            )
    if journaled and version == 1:
        if committed is None:
            raise TornFileError("torn v1 SHDF file (missing commit footer)")
        if committed != len(entries):
            raise TornFileError(
                f"torn v1 SHDF file (commit says {committed} datasets, "
                f"found {len(entries)})"
            )
    return attrs, entries


def decode_batch(records, copy: bool = False) -> list:
    """Decode an iterable of single-record buffers into Datasets.

    The read-side counterpart of :func:`encode_batch`: each element must
    hold exactly one record (a :func:`scan_file` extent sliced out of a
    file buffer, or a shipped batch entry).  Trailing bytes after the
    record raise :class:`CodecError` — a sliced extent must never be
    silently longer than its record.
    """
    out = []
    for chunk in records:
        reader = _Reader(chunk)
        out.append(_decode_record(reader, copy))
        if not reader.exhausted:
            raise CodecError(
                f"trailing bytes after dataset record ({reader._len - reader.pos})"
            )
    return out


def _decode_record(reader: _Reader, copy: bool = True) -> Dataset:
    if reader.take(4) != RECORD_MAGIC:
        raise CodecError("bad dataset record magic")
    name = reader.str16()
    attrs = _decode_attrs(reader, copy)
    dtype = np.dtype(reader.str16())
    ndim = reader.u8()
    shape = tuple(reader.u64() for _ in range(ndim))
    nbytes = reader.u64()
    raw = reader.take(nbytes)
    return Dataset(name, _frombuffer(raw, dtype, shape, copy), attrs)


def iter_records(buf: bytes, copy: bool = False) -> Iterator[Dataset]:
    """Iterate dataset records of a full file buffer (header first).

    Works for both versions: a v2 file's records are scanned
    sequentially up to its index block.  Yields read-only zero-copy
    views of ``buf`` unless ``copy=True``.  A buffer cut mid-record or
    carrying garbage where a record should start raises
    :class:`CodecError` — a short read must never look like a short
    file.
    """
    _attrs, pos, _version = decode_header(buf)
    reader = _Reader(buf, pos)
    nbuf = len(buf)
    while not reader.exhausted:
        chunk = buf[reader.pos : reader.pos + 4]
        if chunk == RECORD_MAGIC:
            yield _decode_record(reader, copy)
        elif chunk == INDEX_MAGIC:
            break  # v2 index reached
        elif chunk == COMMIT_MAGIC and reader.pos == nbuf - COMMIT_SIZE:
            break  # v1 commit footer
        else:
            raise CodecError(
                f"truncated or corrupt SHDF record at offset {reader.pos}"
            )


def decode_file(buf: bytes, copy: bool = False) -> FileImage:
    """Decode a full file buffer into a :class:`FileImage`.

    Dispatches on the format version: v1 scans sequentially, v2 reads
    through the dataset index (falling back to a scan when the index
    is missing, e.g. an unclosed file).

    Corruption handling: a buffer cut mid-record (or mid-magic) raises
    :class:`CodecError`; a *journaled* file (one whose writer promised
    a commit — see :data:`JOURNAL_ATTR`) missing its commit raises
    :class:`TornFileError`, the signal the restart path uses to skip a
    crash-torn snapshot.

    Dataset arrays are **read-only views** of ``buf`` by default;
    callers that mutate them in place (the restart path) must pass
    ``copy=True`` for private writable copies.
    """
    attrs, pos, version = decode_header(buf)
    journaled = bool(attrs.get(JOURNAL_ATTR))
    if version == 2:
        # Functions (not constants) still cross lazily in this one
        # direction: codec_v2 imports codec at module level, so the
        # reverse function import cannot be hoisted.
        from .codec_v2 import decode_file_v2, read_index

        try:
            read_index(buf)
        except TornFileError:
            raise
        except CodecError as exc:
            if journaled:
                raise TornFileError(
                    f"torn v2 SHDF file (no committed index): {exc}"
                ) from exc
            # unclosed, non-journaled v2 file: sequential fallback below
        else:
            return decode_file_v2(buf, copy=copy)
    image = FileImage(attrs)
    reader = _Reader(buf, pos)
    nbuf = len(buf)
    committed = None
    while not reader.exhausted:
        chunk = buf[reader.pos : reader.pos + 4]
        if chunk == RECORD_MAGIC:
            image.add(_decode_record(reader, copy))
        elif chunk == COMMIT_MAGIC and reader.pos == nbuf - COMMIT_SIZE:
            committed = _U64.unpack_from(buf, reader.pos + 4)[0]
            break
        elif version == 2 and chunk == INDEX_MAGIC:
            break  # torn index region of a non-journaled v2 file
        else:
            raise CodecError(
                f"truncated or corrupt SHDF record at offset {reader.pos}"
            )
    if journaled and version == 1:
        if committed is None:
            raise TornFileError("torn v1 SHDF file (missing commit footer)")
        if committed != len(image):
            raise TornFileError(
                f"torn v1 SHDF file (commit says {committed} datasets, "
                f"found {len(image)})"
            )
    return image
