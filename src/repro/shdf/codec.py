"""Binary codec for SHDF: portable, self-describing, append-friendly.

Layout::

    header  := MAGIC "SHDF" | u16 version | attrs
    record  := MAGIC "DSET" | str16 name | attrs | str16 dtype
               | u8 ndim | u64*ndim dims | u64 nbytes | raw data
    attrs   := u32 count | (str16 name | value)*
    value   := u8 tag | payload        (None/bool/int/float/str/bytes/
                                        ndarray/list)

All integers little-endian.  Records are written sequentially, so a
file can be *appended to* without rewriting (this mirrors HDF4's
linearly-growing file directory: finding a dataset requires a scan,
which is what the HDF4 timing driver charges for).
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, List, Tuple

import numpy as np

from .model import Dataset, FileImage

__all__ = [
    "CodecError",
    "encode_header",
    "encode_dataset",
    "encode_file",
    "decode_file",
    "decode_header",
    "iter_records",
]

FILE_MAGIC = b"SHDF"
RECORD_MAGIC = b"DSET"
VERSION = 1

_TAG_NONE = 0
_TAG_BOOL = 1
_TAG_INT = 2
_TAG_FLOAT = 3
_TAG_STR = 4
_TAG_BYTES = 5
_TAG_NDARRAY = 6
_TAG_LIST = 7

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class CodecError(ValueError):
    """Raised on malformed SHDF bytes or unencodable values."""


# -- low-level pieces -------------------------------------------------------

def _pack_str16(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string too long ({len(raw)} bytes)")
    return struct.pack("<H", len(raw)) + raw


class _Reader:
    def __init__(self, buf: bytes, pos: int = 0):
        self.buf = buf
        self.pos = pos

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.buf):
            raise CodecError("truncated SHDF data")
        out = self.buf[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self.take(8))[0]

    def str16(self) -> str:
        n = self.u16()
        return self.take(n).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self.pos >= len(self.buf)


def _encode_value(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(bytes([_TAG_NONE]))
    elif isinstance(value, (bool, np.bool_)):
        out.append(bytes([_TAG_BOOL, 1 if value else 0]))
    elif isinstance(value, (int, np.integer)):
        iv = int(value)
        if not _I64_MIN <= iv <= _I64_MAX:
            raise CodecError(f"integer attribute out of i64 range: {iv}")
        out.append(bytes([_TAG_INT]) + struct.pack("<q", iv))
    elif isinstance(value, (float, np.floating)):
        out.append(bytes([_TAG_FLOAT]) + struct.pack("<d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(bytes([_TAG_STR]) + struct.pack("<I", len(raw)) + raw)
    elif isinstance(value, (bytes, bytearray)):
        out.append(bytes([_TAG_BYTES]) + struct.pack("<I", len(value)) + bytes(value))
    elif isinstance(value, np.ndarray):
        if value.dtype == object:
            raise CodecError("object-dtype attribute arrays are not storable")
        arr = np.asarray(value, order="C")  # keeps 0-d shape intact
        out.append(bytes([_TAG_NDARRAY]))
        out.append(_pack_str16(arr.dtype.str))
        out.append(bytes([arr.ndim]))
        out.append(struct.pack(f"<{arr.ndim}Q", *arr.shape) if arr.ndim else b"")
        out.append(arr.tobytes())
    elif isinstance(value, (list, tuple)):
        out.append(bytes([_TAG_LIST]) + struct.pack("<I", len(value)))
        for item in value:
            _encode_value(item, out)
    else:
        raise CodecError(f"unencodable attribute value: {type(value).__name__}")


def _decode_value(reader: _Reader) -> Any:
    tag = reader.u8()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BOOL:
        return bool(reader.u8())
    if tag == _TAG_INT:
        return reader.i64()
    if tag == _TAG_FLOAT:
        return reader.f64()
    if tag == _TAG_STR:
        n = reader.u32()
        return reader.take(n).decode("utf-8")
    if tag == _TAG_BYTES:
        n = reader.u32()
        return reader.take(n)
    if tag == _TAG_NDARRAY:
        dtype = np.dtype(reader.str16())
        ndim = reader.u8()
        shape = tuple(reader.u64() for _ in range(ndim))
        count = int(np.prod(shape)) if shape else 1
        raw = reader.take(count * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    if tag == _TAG_LIST:
        n = reader.u32()
        return [_decode_value(reader) for _ in range(n)]
    raise CodecError(f"unknown attribute tag {tag}")


def _encode_attrs(attrs: dict) -> bytes:
    out: List[bytes] = [struct.pack("<I", len(attrs))]
    for name, value in attrs.items():
        out.append(_pack_str16(name))
        _encode_value(value, out)
    return b"".join(out)


def _decode_attrs(reader: _Reader) -> dict:
    count = reader.u32()
    attrs = {}
    for _ in range(count):
        name = reader.str16()
        attrs[name] = _decode_value(reader)
    return attrs


# -- public API --------------------------------------------------------------

def encode_header(attrs: dict) -> bytes:
    """File header bytes: magic, version, file attributes."""
    return FILE_MAGIC + struct.pack("<H", VERSION) + _encode_attrs(attrs)


def encode_dataset(dataset: Dataset) -> bytes:
    """One appendable dataset record."""
    arr = dataset.data
    parts = [
        RECORD_MAGIC,
        _pack_str16(dataset.name),
        _encode_attrs(dataset.attrs),
        _pack_str16(arr.dtype.str),
        bytes([arr.ndim]),
        struct.pack(f"<{arr.ndim}Q", *arr.shape) if arr.ndim else b"",
        struct.pack("<Q", arr.nbytes),
        arr.tobytes(),
    ]
    return b"".join(parts)


def encode_file(image: FileImage) -> bytes:
    """Full file bytes for an in-memory image."""
    parts = [encode_header(image.attrs)]
    parts.extend(encode_dataset(d) for d in image)
    return b"".join(parts)


def decode_header(buf: bytes) -> Tuple[dict, int]:
    """Decode the header; returns (file_attrs, offset_after_header).

    Accepts both format versions (their headers are identical except
    for the version number); use :func:`repro.shdf.codec_v2.detect_version`
    to dispatch on the version itself.
    """
    reader = _Reader(buf)
    if reader.take(4) != FILE_MAGIC:
        raise CodecError("not an SHDF file (bad magic)")
    version = reader.u16()
    if version not in (1, 2):
        raise CodecError(f"unsupported SHDF version {version}")
    attrs = _decode_attrs(reader)
    return attrs, reader.pos


def _decode_record(reader: _Reader) -> Dataset:
    if reader.take(4) != RECORD_MAGIC:
        raise CodecError("bad dataset record magic")
    name = reader.str16()
    attrs = _decode_attrs(reader)
    dtype = np.dtype(reader.str16())
    ndim = reader.u8()
    shape = tuple(reader.u64() for _ in range(ndim))
    nbytes = reader.u64()
    raw = reader.take(nbytes)
    data = np.frombuffer(raw, dtype=dtype)
    data = data.reshape(shape).copy() if shape else data.copy().reshape(())
    return Dataset(name, data, attrs)


def iter_records(buf: bytes) -> Iterator[Dataset]:
    """Iterate dataset records of a full file buffer (header first).

    Works for both versions: a v2 file's records are scanned
    sequentially up to its index block.
    """
    _attrs, pos = decode_header(buf)
    reader = _Reader(buf, pos)
    while not reader.exhausted:
        if buf[reader.pos : reader.pos + 4] != RECORD_MAGIC:
            break  # v2 index/footer reached
        yield _decode_record(reader)


def decode_file(buf: bytes) -> FileImage:
    """Decode a full file buffer into a :class:`FileImage`.

    Dispatches on the format version: v1 scans sequentially, v2 reads
    through the dataset index (falling back to a scan when the index
    is missing, e.g. an unclosed file).
    """
    attrs, pos = decode_header(buf)
    if struct.unpack("<H", buf[4:6])[0] == 2:
        from .codec_v2 import decode_file_v2, read_index

        try:
            read_index(buf)
        except CodecError:
            pass  # unclosed v2 file: sequential fallback below
        else:
            return decode_file_v2(buf)
    image = FileImage(attrs)
    reader = _Reader(buf, pos)
    while not reader.exhausted:
        if buf[reader.pos : reader.pos + 4] != RECORD_MAGIC:
            break
        image.add(_decode_record(reader))
    return image
