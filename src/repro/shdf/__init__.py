"""SHDF: the scientific hierarchical data format substrate.

Stands in for HDF4/HDF5: a self-describing container of datasets with
attributes, a real binary codec (bit-exact round-trips), and timing
drivers reproducing the HDF4-linear vs HDF5-logarithmic metadata
scaling the paper's design decisions hinge on.
"""

from .codec_v2 import (
    decode_file_v2,
    detect_version,
    encode_file_v2,
    read_dataset_at,
    read_index,
)
from .codec import (
    JOURNAL_ATTR,
    CodecError,
    TornFileError,
    decode_batch,
    decode_file,
    decode_header,
    encode_commit_footer,
    encode_dataset,
    encode_file,
    encode_header,
    iter_records,
    scan_file,
)
from .drivers import HDFDriver, hdf4_driver, hdf5_driver, raw_driver
from .file import SHDFReader, SHDFWriter
from .model import Dataset, FileImage

__all__ = [
    "Dataset",
    "FileImage",
    "CodecError",
    "TornFileError",
    "JOURNAL_ATTR",
    "encode_commit_footer",
    "encode_file",
    "decode_file",
    "encode_header",
    "decode_header",
    "encode_dataset",
    "iter_records",
    "scan_file",
    "decode_batch",
    "encode_file_v2",
    "decode_file_v2",
    "detect_version",
    "read_index",
    "read_dataset_at",
    "HDFDriver",
    "hdf4_driver",
    "hdf5_driver",
    "raw_driver",
    "SHDFReader",
    "SHDFWriter",
]
