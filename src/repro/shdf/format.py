"""Shared SHDF on-disk format constants.

Both codec generations need the same magic numbers: v1 readers must
recognise a v2 index block to know where sequential records end, and
v2 readers reuse the v1 record encoding wholesale.  Keeping the
constants here lets :mod:`.codec` and :mod:`.codec_v2` both import
them at module level instead of smuggling them through lazy
function-body imports (the two modules still share *functions* in one
direction only: codec_v2 builds on codec).
"""

from __future__ import annotations

__all__ = [
    "FILE_MAGIC",
    "RECORD_MAGIC",
    "VERSION",
    "VERSION_2",
    "COMMIT_MAGIC",
    "COMMIT_SIZE",
    "JOURNAL_ATTR",
    "INDEX_MAGIC",
    "END_MAGIC",
    "FOOTER_SIZE",
]

FILE_MAGIC = b"SHDF"
RECORD_MAGIC = b"DSET"
VERSION = 1
VERSION_2 = 2

#: v1 atomic-commit footer: magic + u64 dataset count (12 bytes).  A
#: journaled writer appends it as the final act of ``close``; its
#: absence marks the file as torn.  (v2 files use their index+"SEND"
#: footer as the commit instead.)
COMMIT_MAGIC = b"SEOF"
COMMIT_SIZE = 12

#: File attribute injected by journaled writers.  Readers hitting a
#: file that carries it but lacks a valid commit raise
#: ``TornFileError`` instead of decoding a partial snapshot.
JOURNAL_ATTR = "_shdf_journal"

#: v2 index block magic ("SIDX" | u32 count | entries).
INDEX_MAGIC = b"SIDX"
#: v2 end-of-file magic, last 4 bytes of a closed file.
END_MAGIC = b"SEND"
#: Fixed v2 footer size: u64 index_offset + 4-byte end magic.
FOOTER_SIZE = 12
