"""Object model of the scientific hierarchical data format (SHDF).

SHDF stands in for HDF4/HDF5 in this reproduction: a self-describing
container of named datasets (typed n-d arrays), each with its own
attributes, plus file-level attributes.  Files produced by GENx are
"organized by data blocks, with data from different arrays in the same
data block stored in neighboring datasets" (§4) — the neighbor-ordering
is preserved because SHDF keeps datasets in insertion order.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

import numpy as np

__all__ = ["Dataset", "FileImage"]

#: Attribute value types the codec supports.
ATTR_TYPES = (type(None), bool, int, float, str, bytes, np.ndarray, list, tuple)


def _validate_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    for key, value in attrs.items():
        if not isinstance(key, str):
            raise TypeError(f"attribute name must be str, got {type(key).__name__}")
        if not isinstance(value, ATTR_TYPES):
            raise TypeError(
                f"unsupported attribute type for {key!r}: {type(value).__name__}"
            )
    return dict(attrs)


class Dataset:
    """A named, typed n-dimensional array with attributes."""

    def __init__(self, name: str, data: np.ndarray, attrs: Optional[Dict[str, Any]] = None):
        if not isinstance(name, str) or not name:
            raise ValueError("dataset name must be a non-empty string")
        if not isinstance(data, np.ndarray):
            raise TypeError("dataset data must be a numpy array")
        if data.dtype == object:
            raise TypeError("object-dtype arrays are not storable")
        self.name = name
        # note: np.ascontiguousarray would promote 0-d arrays to 1-d
        self.data = np.asarray(data, order="C")
        self.attrs = _validate_attrs(attrs or {})

    @classmethod
    def trusted(cls, name: str, data: np.ndarray, attrs: Dict[str, Any]) -> "Dataset":
        """Construct without validation or defensive copies.

        For hot internal paths (snapshot collection re-creates every
        dataset each interval) where the caller guarantees what
        ``__init__`` would check: non-empty str name, non-object ndarray
        data, codec-supported attr values in a dict it won't reuse.
        """
        ds = cls.__new__(cls)
        ds.name = name
        ds.data = data
        ds.attrs = attrs
        return ds

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    def __eq__(self, other) -> bool:
        if not isinstance(other, Dataset):
            return NotImplemented
        return (
            self.name == other.name
            and self.data.dtype == other.data.dtype
            and self.data.shape == other.data.shape
            and np.array_equal(self.data, other.data, equal_nan=True)
            and _attrs_equal(self.attrs, other.attrs)
        )

    def __repr__(self) -> str:
        return f"<Dataset {self.name!r} {self.dtype}{list(self.shape)}>"


def _attrs_equal(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    if set(a) != set(b):
        return False
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not (
                isinstance(va, np.ndarray)
                and isinstance(vb, np.ndarray)
                and va.dtype == vb.dtype
                and va.shape == vb.shape
                and np.array_equal(va, vb, equal_nan=True)
            ):
                return False
        elif isinstance(va, (list, tuple)) and isinstance(vb, (list, tuple)):
            if list(va) != list(vb):
                return False
        elif va != vb or type(va) is not type(vb):
            return False
    return True


class FileImage:
    """In-memory image of an SHDF file: ordered datasets + file attrs."""

    def __init__(self, attrs: Optional[Dict[str, Any]] = None):
        self.attrs = _validate_attrs(attrs or {})
        self._datasets: List[Dataset] = []
        self._index: Dict[str, int] = {}

    # -- dataset management -------------------------------------------------
    def add(self, dataset: Dataset) -> None:
        if dataset.name in self._index:
            raise ValueError(f"duplicate dataset name {dataset.name!r}")
        self._index[dataset.name] = len(self._datasets)
        self._datasets.append(dataset)

    def get(self, name: str) -> Dataset:
        try:
            return self._datasets[self._index[name]]
        except KeyError:
            raise KeyError(f"no dataset named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets)

    def names(self) -> List[str]:
        return [d.name for d in self._datasets]

    @property
    def data_nbytes(self) -> int:
        return sum(d.nbytes for d in self._datasets)

    def __eq__(self, other) -> bool:
        if not isinstance(other, FileImage):
            return NotImplemented
        return (
            _attrs_equal(self.attrs, other.attrs)
            and len(self) == len(other)
            and all(a == b for a, b in zip(self, other))
        )

    def __repr__(self) -> str:
        return f"<FileImage: {len(self)} datasets, {self.data_nbytes} data bytes>"
