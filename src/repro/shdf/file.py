"""Timed SHDF file access: real bytes + driver/filesystem costs.

:class:`SHDFWriter` and :class:`SHDFReader` are the layer the I/O
libraries (Rochdf, Rocpanda servers) use.  Every operation is a
generator charging virtual time through the filesystem model and the
format driver, while the actual bytes land on / come from the virtual
disk — so restart files decode to exactly what was written.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from ..des import Environment
from ..fs.coalesce import ReadCoalescer, WriteCoalescer
from ..fs.models import FileSystemModel
from .codec import (
    JOURNAL_ATTR,
    decode_batch,
    decode_file,
    encode_commit_footer,
    encode_dataset,
    encode_header,
    iter_records,
    scan_file,
)
from .format import END_MAGIC, FOOTER_SIZE
from .codec_v2 import encode_header_v2, encode_index
from .drivers import HDFDriver, hdf4_driver
from .model import Dataset, FileImage

__all__ = ["SHDFWriter", "SHDFReader"]


class SHDFWriter:
    """Append-mode writer for one SHDF file.

    Usage (inside a DES process)::

        writer = SHDFWriter(env, fs, "snap_0001.hdf", driver, node=node)
        yield from writer.open(file_attrs={"time_step": 50})
        yield from writer.write_dataset(Dataset("b1/pressure", arr, {...}))
        yield from writer.close()
    """

    def __init__(
        self,
        env: Environment,
        fs: FileSystemModel,
        path: str,
        driver: Optional[HDFDriver] = None,
        node=None,
        format_version: Optional[int] = None,
        recorder=None,
        rank: int = -1,
        visible: bool = True,
        journal: bool = True,
    ):
        self.env = env
        self.fs = fs
        self.path = path
        self.driver = driver if driver is not None else hdf4_driver()
        self.node = node
        #: Optional repro.obs.Recorder emitting per-dataset records;
        #: ``visible=False`` marks this writer's time as background
        #: (write-behind) rather than caller-visible.
        self._recorder = recorder
        self._rank = rank
        self._visible = visible
        #: Atomic-commit journaling: mark the file so readers can tell a
        #: committed snapshot from one torn by a crash mid-write.  v2
        #: files commit via their index footer; v1 files get a 12-byte
        #: commit footer appended at close.
        self.journal = journal
        # Log-growth drivers (HDF5-like) default to the indexed v2
        # on-disk format; linear ones to the scan-based v1.
        if format_version is None:
            format_version = 2 if self.driver.growth == "log" else 1
        if format_version not in (1, 2):
            raise ValueError(f"unsupported format version {format_version}")
        self.format_version = format_version
        self._vfile = None
        self._ndatasets = 0
        self._entries = []  # (name, offset, length) for the v2 index
        self._open = False
        #: Total virtual seconds spent in this writer (diagnostics).
        self.busy_time = 0.0

    @property
    def ndatasets(self) -> int:
        return self._ndatasets

    @property
    def is_open(self) -> bool:
        """True between a successful ``open`` and the matching ``close``."""
        return self._open

    def _record(self, op: str, nbytes: int, t_start: float) -> None:
        if self._recorder is not None:
            self._recorder.record_io(
                "shdf",
                op,
                self._rank,
                path=self.path,
                nbytes=nbytes,
                t_start=t_start,
                t_end=self.env.now,
                visible=self._visible,
            )

    def open(self, file_attrs: Optional[Dict[str, Any]] = None):
        """Generator: create the file and write its header."""
        if self._open:
            raise RuntimeError(f"{self.path}: already open")
        t0 = self.env.now
        self._vfile = self.fs.disk.create(self.path, exist_ok=True)
        self._vfile.truncate()
        self._entries = []
        self._ndatasets = 0
        yield from self.fs.meta_op(self.node)
        attrs = dict(file_attrs or {})
        if self.journal:
            attrs[JOURNAL_ATTR] = True
        if self.format_version == 2:
            header = encode_header_v2(attrs)
        else:
            header = encode_header(attrs)
        yield from self.fs.write(len(header), self.node)
        self._vfile.append(header)
        self._open = True
        self.busy_time += self.env.now - t0
        self._record("open", len(header), t0)

    def write_dataset(self, dataset: Dataset):
        """Generator: append one dataset (driver + filesystem costs)."""
        yield from self.write_encoded(
            dataset.name, encode_dataset(dataset), dataset.nbytes
        )

    def write_encoded(self, name: str, record, data_nbytes: int):
        """Generator: append one *pre-encoded* dataset record.

        Charges exactly like :meth:`write_dataset` — the record arrives
        already serialised (e.g. sliced out of a shipped batch), so
        only the timed filesystem/driver work remains.  ``record`` may
        be any bytes-like object (a zero-copy memoryview works).
        """
        if not self._open:
            raise RuntimeError(f"{self.path}: not open")
        t0 = self.env.now
        # Format-internal bookkeeping (directory maintenance).
        yield self.env.sleep(self.driver.create_cost(self._ndatasets))
        for _ in range(self.driver.fs_meta_ops_per_dataset):
            yield from self.fs.meta_op(self.node)
        yield from self.fs.write(
            len(record) + self.driver.meta_bytes_per_dataset, self.node
        )
        offset = self._vfile.append(record)
        self._entries.append((name, offset, len(record)))
        self._ndatasets += 1
        self.busy_time += self.env.now - t0
        self._record("write_dataset", data_nbytes, t0)

    def write_records(self, records):
        """Generator: append many records through one coalesced transfer.

        ``records`` is a sequence of ``(name, record_bytes, data_nbytes)``
        tuples.  Driver bookkeeping charges the same total as the
        per-dataset path (each record still pays ``create_cost`` at its
        own directory size, and the same number of meta ops), but the
        data lands via a **single** filesystem write covering every
        record — the data-sieving merge that makes gathered server-side
        writes large and sequential.  The disk mutation happens through
        :meth:`~repro.fs.vfs.VirtualFile.append_many`, which checks
        fault hooks *before* appending anything, so the
        raise-before-mutate guarantee holds at batch granularity.
        """
        if not self._open:
            raise RuntimeError(f"{self.path}: not open")
        records = list(records)
        if not records:
            return
        t0 = self.env.now
        n0 = self._ndatasets
        yield self.env.sleep(
            sum(self.driver.create_cost(n0 + k) for k in range(len(records)))
        )
        yield from self.fs.meta_ops_bulk(
            self.driver.fs_meta_ops_per_dataset * len(records), self.node
        )
        coalescer = WriteCoalescer(self.fs, self._vfile, node=self.node)
        for _name, record, _data_nbytes in records:
            coalescer.add(record, meta_bytes=self.driver.meta_bytes_per_dataset)
        offsets = yield from coalescer.flush()
        for (name, record, _data_nbytes), offset in zip(records, offsets):
            self._entries.append((name, offset, len(record)))
        self._ndatasets += len(records)
        self.busy_time += self.env.now - t0
        self._record(
            "write_records", sum(r[2] for r in records), t0
        )

    def close(self):
        """Generator: close the file.

        Version-2 files get their dataset index and footer written out
        here (like HDF5 flushing its B-tree at close).
        """
        if not self._open:
            raise RuntimeError(f"{self.path}: not open")
        t0 = self.env.now
        if self.format_version == 2:
            index_offset = self._vfile.size
            tail = (
                encode_index(self._entries)
                + struct.pack("<Q", index_offset)
                + END_MAGIC
            )
            yield from self.fs.write(len(tail), self.node)
            self._vfile.append(tail)
        elif self.journal:
            footer = encode_commit_footer(self._ndatasets)
            yield from self.fs.write(len(footer), self.node)
            self._vfile.append(footer)
        yield from self.fs.meta_op(self.node)
        self._open = False
        self.busy_time += self.env.now - t0
        self._record("close", 0, t0)


class SHDFReader:
    """Reader for one SHDF file on the virtual disk."""

    def __init__(
        self,
        env: Environment,
        fs: FileSystemModel,
        path: str,
        driver: Optional[HDFDriver] = None,
        node=None,
        recorder=None,
        rank: int = -1,
        visible: bool = True,
    ):
        self.env = env
        self.fs = fs
        self.path = path
        self.driver = driver if driver is not None else hdf4_driver()
        self.node = node
        self._recorder = recorder
        self._rank = rank
        self._visible = visible
        self._image: Optional[FileImage] = None
        # Scan-mode state (open_scan): record extents + raw file bytes.
        self._entries: Optional[List] = None
        self._attrs: Optional[Dict[str, Any]] = None
        self._vfile = None

    @property
    def is_open(self) -> bool:
        """True between a successful ``open`` and the matching ``close``."""
        return self._image is not None or self._entries is not None

    def _record(self, op: str, nbytes: int, t_start: float) -> None:
        if self._recorder is not None:
            self._recorder.record_io(
                "shdf",
                op,
                self._rank,
                path=self.path,
                nbytes=nbytes,
                t_start=t_start,
                t_end=self.env.now,
                visible=self._visible,
            )

    def open(self):
        """Generator: open the file and parse its structure.

        The structural parse is charged per dataset (the directory must
        be walked); dataset *data* is charged when actually read.
        """
        t0 = self.env.now
        yield from self.fs.meta_op(self.node)
        buf = self.fs.disk.open(self.path).read()
        # copy=True: restart consumers install these arrays into Roccom
        # windows, where physics kernels mutate them in place.
        self._image = decode_file(buf, copy=True)
        # Writer-internal markers (the journal flag) are not user attrs.
        for key in [k for k in self._image.attrs if k.startswith("_shdf_")]:
            del self._image.attrs[key]
        self._record("open", 0, t0)
        return self._image.attrs

    def open_scan(self):
        """Generator: open the file by *structural scan* (no data decode).

        The sieving counterpart of :meth:`open`: one metadata round
        trip, then the file's record directory is scanned into extents
        — names, offsets, lengths — without materializing any array.
        Dataset data is decoded only when :meth:`read_extents` /
        :meth:`read_batch` pulls it through the
        :class:`~repro.fs.coalesce.ReadCoalescer`.  Torn-file semantics
        match :meth:`open` (``TornFileError`` propagates).
        """
        if self.is_open:
            raise RuntimeError(f"{self.path}: already open")
        t0 = self.env.now
        yield from self.fs.meta_op(self.node)
        self._vfile = self.fs.disk.open(self.path)
        attrs, entries = scan_file(self._vfile.read())
        # Writer-internal markers (the journal flag) are not user attrs.
        for key in [k for k in attrs if k.startswith("_shdf_")]:
            del attrs[key]
        self._attrs = attrs
        self._entries = entries
        self._record("open_scan", 0, t0)
        return attrs

    @property
    def ndatasets(self) -> int:
        self._require_open()
        if self._image is not None:
            return len(self._image)
        return len(self._entries)

    def names(self) -> List[str]:
        self._require_open()
        if self._image is not None:
            return self._image.names()
        return [name for name, _offset, _length in self._entries]

    def entries(self) -> List:
        """The ``(name, offset, length)`` record extents, in file order.

        Scan mode only: callers (e.g. the Rocpanda restart servers) use
        these to chunk a file into bulk-read regions, then hand each
        chunk back to :meth:`read_extents`.
        """
        self._require_scan()
        return list(self._entries)

    @property
    def file_attrs(self) -> Dict[str, Any]:
        self._require_open()
        if self._image is not None:
            return self._image.attrs
        return self._attrs

    def read_dataset(self, name: str):
        """Generator: locate and read one dataset; returns :class:`Dataset`."""
        self._require_image()
        t0 = self.env.now
        dataset = self._image.get(name)
        yield self.env.sleep(self.driver.lookup_cost(len(self._image)))
        for _ in range(self.driver.fs_meta_ops_per_dataset):
            yield from self.fs.meta_op(self.node)
        yield from self.fs.read(
            dataset.nbytes + self.driver.meta_bytes_per_dataset, self.node
        )
        self._record("read_dataset", dataset.nbytes, t0)
        return dataset

    def read_all(self):
        """Generator: sequentially read every dataset; returns list.

        A sequential scan still pays the per-dataset lookup cost — this
        is the HDF4 behaviour that makes Rocpanda restart files (with
        thousands of datasets each) expensive to load (§7.1).
        """
        self._require_image()
        out = []
        for dataset in self._image:
            loaded = yield from self.read_dataset(dataset.name)
            out.append(loaded)
        return out

    def read_extents(self, entries, sieve_gap: int = 65536):
        """Generator: read ``(name, offset, length)`` record extents merged.

        The two-phase read's data movement: per-record filesystem meta
        ops are charged as one bulk event, the extents are merged by a
        :class:`~repro.fs.coalesce.ReadCoalescer` (sieving through holes
        up to ``sieve_gap`` bytes) into a few large ``fs.read`` calls,
        and the resulting record slices are batch-decoded.  Returns the
        :class:`Dataset` list in ``entries`` order, with private
        writable arrays (restart consumers mutate them in place).

        Requires scan mode (:meth:`open_scan`).  Directory lookup time
        is *not* charged here — callers charge it once per directory
        pass (see :meth:`read_batch`), which is exactly the per-dataset
        ``lookup_cost`` saving of the sieved path.
        """
        self._require_scan()
        entries = list(entries)
        if not entries:
            return []
        t0 = self.env.now
        yield from self.fs.meta_ops_bulk(
            self.driver.fs_meta_ops_per_dataset * len(entries), self.node
        )
        coalescer = ReadCoalescer(self.fs, self._vfile, node=self.node, gap=sieve_gap)
        for _name, offset, length in entries:
            coalescer.add(offset, length, meta_bytes=self.driver.meta_bytes_per_dataset)
        chunks = yield from coalescer.run()
        datasets = decode_batch(chunks, copy=True)
        self._record("read_extents", sum(d.nbytes for d in datasets), t0)
        return datasets

    def read_batch(self, names: Optional[List[str]] = None, sieve_gap: int = 65536):
        """Generator: read many datasets through one directory pass.

        Charges a single ``lookup_cost`` at the file's directory size —
        one scan locates every requested record, instead of the
        per-dataset re-scan :meth:`read_dataset` models — then services
        the extents via :meth:`read_extents`.  ``names=None`` reads
        everything; otherwise datasets are returned in *file order*
        restricted to ``names`` (unknown names raise ``KeyError``).
        """
        self._require_scan()
        t0 = self.env.now
        yield self.env.sleep(self.driver.lookup_cost(len(self._entries)))
        if names is None:
            selected = self._entries
        else:
            wanted = set(names)
            unknown = wanted - {name for name, _o, _l in self._entries}
            if unknown:
                raise KeyError(f"no dataset named {sorted(unknown)[0]!r}")
            selected = [e for e in self._entries if e[0] in wanted]
        datasets = yield from self.read_extents(selected, sieve_gap=sieve_gap)
        self._record("read_batch", sum(d.nbytes for d in datasets), t0)
        return datasets

    def close(self):
        """Generator: close the file."""
        self._require_open()
        t0 = self.env.now
        yield from self.fs.meta_op(self.node)
        self._image = None
        self._entries = None
        self._attrs = None
        self._vfile = None
        self._record("close", 0, t0)

    def _require_open(self):
        if not self.is_open:
            raise RuntimeError(f"{self.path}: not open")

    def _require_image(self):
        if self._image is None:
            raise RuntimeError(f"{self.path}: not open (image mode)")

    def _require_scan(self):
        if self._entries is None:
            raise RuntimeError(f"{self.path}: not open in scan mode")
