"""Shared machinery of the I/O service modules.

* :class:`DataBlock` — the unit of I/O (§4): all arrays + metadata of
  one pane, self-contained so it can travel between processes and into
  files.
* window ↔ SHDF layout: each array of each data block becomes one SHDF
  dataset named ``<window>/b<block_id>/<attr>``, with enough dataset
  attributes to reconstruct the pane on read ("data from different
  arrays in the same data block stored in neighboring HDF datasets").
* :class:`IOStats` — per-rank accounting every I/O service maintains;
  the benchmark harness aggregates these into the paper's numbers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..roccom.attribute import LOC_WINDOW, AttributeSpec
from ..roccom.registry import Roccom
from ..shdf.model import Dataset

__all__ = [
    "DataBlock",
    "IOStats",
    "collect_blocks",
    "apply_block",
    "block_to_datasets",
    "datasets_to_blocks",
    "dataset_name",
    "parse_dataset_name",
]

_NAME_RE = re.compile(r"^(?P<window>[^/]+)/b(?P<block>\d+)/(?P<attr>[^/]+)$")

#: Estimated per-array protocol overhead when a block travels as a message.
_BLOCK_WIRE_OVERHEAD = 256


@dataclass
class DataBlock:
    """All data of one pane: the unit of distribution and of I/O."""

    window: str
    block_id: int
    nnodes: int
    nelems: int
    #: attr name -> array
    arrays: Dict[str, np.ndarray]
    #: attr name -> AttributeSpec metadata needed to re-register
    specs: Dict[str, AttributeSpec]

    @property
    def nbytes(self) -> int:
        """Wire/storage size estimate (used by the network model)."""
        return (
            sum(a.nbytes for a in self.arrays.values())
            + _BLOCK_WIRE_OVERHEAD * max(1, len(self.arrays))
        )

    def __repr__(self) -> str:
        return (
            f"<DataBlock {self.window}/b{self.block_id}: "
            f"{len(self.arrays)} arrays, {self.nbytes} bytes>"
        )


@dataclass
class IOStats:
    """Per-rank I/O accounting (aggregated by the bench harness)."""

    #: Time visible to the caller inside write_attribute calls.
    visible_write_time: float = 0.0
    #: Time visible to the caller inside read_attribute calls.
    visible_read_time: float = 0.0
    #: Time spent waiting in sync().
    sync_time: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0
    blocks_written: int = 0
    blocks_read: int = 0
    files_created: int = 0
    snapshots: int = 0
    #: Resilience accounting: faulted operations retried (write faults,
    #: timed-out sends) and dead-server failovers performed.
    retries: int = 0
    failovers: int = 0

    def merge(self, other: "IOStats") -> "IOStats":
        return IOStats(
            visible_write_time=self.visible_write_time + other.visible_write_time,
            visible_read_time=self.visible_read_time + other.visible_read_time,
            sync_time=self.sync_time + other.sync_time,
            bytes_written=self.bytes_written + other.bytes_written,
            bytes_read=self.bytes_read + other.bytes_read,
            blocks_written=self.blocks_written + other.blocks_written,
            blocks_read=self.blocks_read + other.blocks_read,
            files_created=self.files_created + other.files_created,
            snapshots=self.snapshots + other.snapshots,
            retries=self.retries + other.retries,
            failovers=self.failovers + other.failovers,
        )


def collect_blocks(
    com: Roccom, window_name: str, attr_names: Optional[List[str]] = None
) -> List[DataBlock]:
    """Extract the local panes of a window as :class:`DataBlock` s.

    ``attr_names=None`` means "everything registered" — the high-level
    call scientists actually make: *"write the mesh coordinates and the
    pressure value on all the mesh blocks"* (§5).  Window-located
    attributes are excluded (they ride as file attributes instead).
    """
    window = com.window(window_name)
    if attr_names is None:
        attr_names = [
            n
            for n in window.attribute_names()
            if window.attribute(n).location != LOC_WINDOW
        ]
    blocks = []
    for pane in window.panes():
        arrays = {}
        specs = {}
        for name in attr_names:
            spec = window.attribute(name)
            if spec.location == LOC_WINDOW:
                raise ValueError(f"cannot write window-located attribute {name!r}")
            if window.has_array(name, pane.id):
                arrays[name] = window.get_array(name, pane.id)
                specs[name] = spec
        blocks.append(
            DataBlock(
                window=window_name,
                block_id=pane.id,
                nnodes=pane.nnodes,
                nelems=pane.nelems,
                arrays=arrays,
                specs=specs,
            )
        )
    return blocks


def apply_block(com: Roccom, block: DataBlock) -> None:
    """Install a restored block into the local Roccom window.

    Declares missing attributes, registers (or resizes) the pane, and
    sets every array — the read/restart path.
    """
    window = com.window(block.window)
    for name, spec in block.specs.items():
        if name not in window.attribute_names():
            window.declare_attribute(spec)
    if block.block_id in window.pane_ids():
        window.pane(block.block_id).resize(nnodes=block.nnodes, nelems=block.nelems)
    else:
        window.register_pane(block.block_id, block.nnodes, block.nelems)
    for name, array in block.arrays.items():
        window.set_array(name, block.block_id, array)


def dataset_name(window: str, block_id: int, attr: str) -> str:
    """SHDF dataset name of one array of one data block."""
    return f"{window}/b{block_id}/{attr}"


def parse_dataset_name(name: str) -> Tuple[str, int, str]:
    """Inverse of :func:`dataset_name`; raises ValueError on mismatch."""
    m = _NAME_RE.match(name)
    if not m:
        raise ValueError(f"not a block dataset name: {name!r}")
    return m.group("window"), int(m.group("block")), m.group("attr")


def block_to_datasets(block: DataBlock) -> List[Dataset]:
    """Neighbouring SHDF datasets for one data block (§4)."""
    out = []
    for attr, array in block.arrays.items():
        spec = block.specs[attr]
        # trusted: names/attrs are built right here from known-good
        # window metadata, and this runs once per attribute per
        # snapshot — the validating constructor is measurable overhead.
        out.append(
            Dataset.trusted(
                dataset_name(block.window, block.block_id, attr),
                array,
                {
                    "window": block.window,
                    "block_id": block.block_id,
                    "attr": attr,
                    "location": spec.location,
                    "ncomp": spec.ncomp,
                    "unit": spec.unit,
                    "nnodes": block.nnodes,
                    "nelems": block.nelems,
                },
            )
        )
    return out


def datasets_to_blocks(datasets: List[Dataset]) -> List[DataBlock]:
    """Group decoded SHDF datasets back into :class:`DataBlock` s."""
    by_block: Dict[Tuple[str, int], DataBlock] = {}
    for ds in datasets:
        window, block_id, attr = parse_dataset_name(ds.name)
        key = (window, block_id)
        if key not in by_block:
            by_block[key] = DataBlock(
                window=window,
                block_id=block_id,
                nnodes=int(ds.attrs["nnodes"]),
                nelems=int(ds.attrs["nelems"]),
                arrays={},
                specs={},
            )
        block = by_block[key]
        block.arrays[attr] = ds.data
        block.specs[attr] = AttributeSpec(
            attr,
            location=str(ds.attrs["location"]),
            ncomp=int(ds.attrs["ncomp"]),
            dtype=ds.data.dtype.str.lstrip("<>=|"),
            unit=str(ds.attrs["unit"]),
        )
    return [by_block[k] for k in sorted(by_block)]
