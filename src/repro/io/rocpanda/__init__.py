"""Rocpanda: client-server collective parallel I/O with active buffering.

The special edition of the Panda parallel I/O library built for GENx
(§4.1): dedicated I/O server processors collect irregularly
distributed data blocks from compute clients, buffer them (active
buffering, §6.1), and write HDF-organized snapshot files behind the
computation's back.  Restart is collective and works with a different
server count than the writing run.

Typical SPMD usage::

    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            stats = yield from PandaServer(ctx, topo).run()
            return stats
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        ...  # compute on topo.comm, the client communicator
        yield from com.call_function("OUT.write_attribute", "Fluid", None, path)
        ...
        yield from panda.finalize()
"""

from .client import RocpandaModule
from .protocol import TAG_BLOCK, TAG_CTRL, TAG_REPLY, ProtocolError
from .server import PandaServer, ServerConfig, ServerStats, server_file_path
from .topology import Topology, clients_of, failover_server, rocpanda_init, server_ranks

__all__ = [
    "ProtocolError",
    "clients_of",
    "failover_server",
    "RocpandaModule",
    "PandaServer",
    "ServerConfig",
    "ServerStats",
    "Topology",
    "rocpanda_init",
    "server_ranks",
    "server_file_path",
    "TAG_CTRL",
    "TAG_BLOCK",
    "TAG_REPLY",
]
