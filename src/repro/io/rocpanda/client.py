"""The Rocpanda client-side service module (§4.1, §5, §6.1).

Loaded through Roccom on every *compute* rank; exposes the same
uniform ``write_attribute`` / ``read_attribute`` / ``sync`` interface
as Rochdf, but implemented by shipping data blocks to the rank's
dedicated I/O server.  The *visible* output cost is "the time to send
the output data to appropriate servers" (§7.1) — the actual file
writes happen behind the clients' backs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...des import Event, Store
from ...faults.retry import RetryPolicy
from ...roccom.module import ServiceModule
from ...vmpi.datatypes import ANY_SOURCE
from ...vthread import VThread
from ..base import IOStats, apply_block, collect_blocks
from .protocol import (
    TAG_BLOCK,
    TAG_CTRL,
    TAG_REPLY,
    BlockEnvelope,
    ProtocolError,
    RestartBatch,
    RestartBlock,
    RestartDone,
    RestartRequest,
    Shutdown,
    SyncReply,
    SyncRequest,
    WriteBegin,
    encode_block_batch,
)
from .topology import Topology, failover_server

__all__ = ["RocpandaModule"]


class _PendingOutput:
    """One write_attribute call not yet acknowledged by a sync.

    Kept so that, when this client's server dies, everything the dead
    server may not have committed can be re-shipped wholesale to the
    failover target (whose block dedup drops anything it already has).
    """

    __slots__ = ("path", "window", "blocks", "file_attrs", "delivered_to", "batch")

    def __init__(self, path, window, blocks, file_attrs):
        self.path = path
        self.window = window
        self.blocks = blocks
        self.file_attrs = file_attrs
        #: Server rank this entry was last fully delivered to.
        self.delivered_to = None
        #: Pre-encoded BlockBatch when batched shipping is on; re-ships
        #: resend these private record bytes, never the live arrays.
        self.batch = None


class RocpandaModule(ServiceModule):
    """Collective I/O service bound to one client rank."""

    name = "rocpanda"

    #: Default per-block marshalling overhead (message assembly).
    PACK_OVERHEAD = 0.2e-3
    #: Default marshalling copy bandwidth, bytes/s.
    PACK_BW = 350 * 1024 * 1024

    def __init__(
        self,
        ctx,
        topo: Topology,
        pack_overhead: float = None,
        pack_bw: float = None,
        client_buffering: bool = False,
        retry: Optional[RetryPolicy] = None,
        batched: bool = True,
        batched_restart: bool = True,
    ):
        """``client_buffering`` enables the *full* active-buffering
        hierarchy of [13]: output is first copied into client-side
        buffers (visible cost = the memcpy, like T-Rochdf) and a
        persistent background sender ships the blocks to the server.
        GENx's production configuration keeps this off — "only
        server-side buffering is used because the servers have enough
        idle memory" (§6.1) — but the hierarchy is part of the scheme.

        ``batched`` selects two-phase shipping: the whole snapshot is
        encoded client-side into one shared buffer and travels as
        pre-serialised records the server appends verbatim.  The
        per-block path remains the executable spec (``batched=False``),
        selectable exactly like the mailbox implementations; both modes
        produce bit-identical virtual time and on-disk bytes in
        fault-free runs.

        ``batched_restart`` selects the two-phase collective *read*
        path for ``read_attribute``: requests go to every alive server,
        servers bulk-read their file shares in sieved regions (with
        read-ahead) and scatter aggregated :class:`RestartBatch`
        replies.  ``batched_restart=False`` keeps the per-block
        request/reply loop as the executable spec; both modes restore
        bit-identical window data.
        """
        if topo.is_server:
            raise ValueError("RocpandaModule is the client side; servers run PandaServer")
        self.ctx = ctx
        self.topo = topo
        self.pack_overhead = pack_overhead if pack_overhead is not None else self.PACK_OVERHEAD
        self.pack_bw = pack_bw if pack_bw is not None else self.PACK_BW
        self.client_buffering = client_buffering
        self.batched = batched
        self.batched_restart = batched_restart
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = IOStats()
        self.com = None
        self._finalized = False
        self._sender: Optional[VThread] = None
        self._send_queue: Optional[Store] = None
        self._pending_sends: List[Event] = []
        #: Current I/O server (``topo.my_server`` until a failover).
        self._server = topo.my_server
        #: FaultInjector when the machine runs under fault injection;
        #: None keeps every code path byte-identical to the fault-free
        #: module (the resilience layer costs one attribute check).
        self._faults = None
        self._unsynced: List[_PendingOutput] = []
        self._sync_seq = 0

    # -- module lifecycle ---------------------------------------------------
    def load(self, com) -> None:
        self.com = com
        self._faults = getattr(self.ctx.machine, "faults", None)
        self._register_io_window(com)
        if self.client_buffering:
            self._send_queue = Store(self.ctx.env)
            self._sender = VThread(
                self.ctx.env,
                self._sender_main(),
                name=f"panda-sender-r{self.ctx.rank}",
            )

    def unload(self, com):
        """Generator: drain buffered sends, join the sender, tear down.

        In client-buffering mode a plain teardown would drop
        ``_pending_sends`` and leave the background sender running;
        unload goes through the same drain-and-join path ``finalize``
        uses so no buffered block is lost.  Drive with
        ``yield from com.unload_module("rocpanda")``.
        """
        yield from self._shutdown_sender()
        self._deregister_io_window(com)
        self.com = None

    # -- uniform I/O interface ------------------------------------------------
    def write_attribute(
        self,
        window_name: str,
        attr_names: Optional[List[str]] = None,
        path: str = "snapshot",
        file_attrs: Optional[Dict[str, Any]] = None,
    ):
        """Generator: ship local panes to this rank's I/O server.

        Returns when every block is buffered at the server (active
        buffering) — NOT when it is on disk; use ``sync`` to wait for
        disk if needed.
        """
        ctx = self.ctx
        t0 = ctx.now
        blocks = collect_blocks(self.com, window_name, attr_names)
        total = sum(b.nbytes for b in blocks)
        if self.batched and not self.client_buffering:
            # Two-phase shipping: serialising the datasets into the
            # shared batch buffer IS the snapshot copy — the caller may
            # mutate its arrays the moment this returns, the record
            # bytes are already private.
            batch = encode_block_batch(path, blocks)
            if self._faults is None:
                yield from self._ship_batched(
                    path, window_name, batch, dict(file_attrs or {})
                )
            else:
                entry = _PendingOutput(
                    path, window_name, blocks, dict(file_attrs or {})
                )
                entry.batch = batch
                self._unsynced.append(entry)
                yield from self._deliver_pending()
            self.stats.snapshots += 1
            self.stats.visible_write_time += ctx.now - t0
            ctx.io_record(
                self.name, "write_attribute", path=path, nbytes=total, t_start=t0
            )
            ctx.trace(
                "rocpanda", f"shipped {len(blocks)} blocks ({total} B) for {path}"
            )
            return
        # Snapshot the arrays: blocking-I/O semantics let the caller
        # mutate its buffers the moment this call returns (§6), while
        # the server writes the data later.  The copy's time cost is
        # already part of the modeled transfer + server ingest.
        for block in blocks:
            block.arrays = {k: v.copy() for k, v in block.arrays.items()}
        if self.client_buffering:
            # Full active-buffering hierarchy ([13]): visible cost is
            # the local copy; the background sender ships the blocks.
            yield from ctx.memcpy(total)
            done = Event(ctx.env)
            self._pending_sends.append(done)
            self._send_queue.put(
                (path, window_name, blocks, dict(file_attrs or {}), done)
            )
        elif self._faults is None:
            yield from self._ship(path, window_name, blocks, dict(file_attrs or {}))
        else:
            self._unsynced.append(
                _PendingOutput(path, window_name, blocks, dict(file_attrs or {}))
            )
            yield from self._deliver_pending()
        self.stats.snapshots += 1
        self.stats.visible_write_time += ctx.now - t0
        ctx.io_record(
            self.name, "write_attribute", path=path, nbytes=total, t_start=t0
        )
        ctx.trace("rocpanda", f"shipped {len(blocks)} blocks ({total} B) for {path}")

    def _ship(self, path, window_name, blocks, file_attrs):
        """Generator: the actual WriteBegin + block-send sequence."""
        ctx = self.ctx
        world = self.topo.world
        server = self._server
        yield from world.send(
            WriteBegin(
                path=path,
                window=window_name,
                nblocks=len(blocks),
                total_bytes=sum(b.nbytes for b in blocks),
                file_attrs=file_attrs,
            ),
            dest=server,
            tag=TAG_CTRL,
        )
        for block in blocks:
            # Marshal the block into a message (client-side CPU work).
            # With a single client the server idles during this gap;
            # with many clients other blocks fill it — the pipelining
            # behind Fig 3(a)'s throughput rise from 1 to 15 clients.
            yield ctx.env.sleep(self.pack_overhead + block.nbytes / self.pack_bw)
            yield from world.send(
                BlockEnvelope(path, block), dest=server, tag=TAG_BLOCK
            )
            self.stats.blocks_written += 1
            self.stats.bytes_written += block.nbytes

    def _ship_batched(self, path, window_name, batch, file_attrs):
        """Generator: two-phase ship of a pre-encoded snapshot batch.

        Replays :meth:`_ship`'s wire schedule event for event — same
        WriteBegin, same per-block pack timeouts, same per-block
        rendezvous flights (each ``EncodedBlock`` pins its accounting
        size to the source block's, so every envelope has the identical
        byte count) — which is what makes fault-free virtual time
        bit-identical across ship modes.  The wall-clock win comes from
        what *doesn't* happen here: no per-block array snapshot copies,
        no per-message rank/cache lookups (one prebound
        :class:`~repro.vmpi.comm.SendStream` serves every flight), and
        no server-side re-encode.
        """
        ctx = self.ctx
        world = self.topo.world
        blocks = batch.blocks
        yield from world.send(
            WriteBegin(
                path=path,
                window=window_name,
                nblocks=len(blocks),
                total_bytes=sum(b.nbytes for b in blocks),
                file_attrs=file_attrs,
            ),
            dest=self._server,
            tag=TAG_CTRL,
        )
        stream = world.stream(self._server, TAG_BLOCK)
        sleep = ctx.env.sleep
        pack_overhead = self.pack_overhead
        pack_bw = self.pack_bw
        stats = self.stats
        for eb in blocks:
            yield sleep(pack_overhead + eb.nbytes / pack_bw)
            yield from stream.send(BlockEnvelope(path, eb), nbytes=eb.nbytes + 64)
            stats.blocks_written += 1
            stats.bytes_written += eb.nbytes

    # -- resilience layer (active only under fault injection) ---------------
    def _record_counter(self, name: str) -> None:
        rec = self.ctx.recorder
        if rec is not None:
            rec.record_counter(self.name, name)

    def _failover(self) -> None:
        """Retarget to the deterministic replacement for a dead server."""
        dead = self._server
        self._server = failover_server(dead, self.topo.servers, self._faults.is_dead)
        self.stats.failovers += 1
        self._record_counter("failovers")
        self.ctx.trace(
            "rocpanda", f"server {dead} dead; failing over to {self._server}"
        )

    def _send_guarded(self, msg, tag):
        """Generator: send with timeout + backoff; returns 'ok' or 'dead'.

        ``"retracted"`` verdicts (the server never saw the message) are
        resent after exponential backoff; ``"stuck"`` verdicts mean the
        server is mid-pull, so the message counts as delivered (server
        block dedup covers the crashed-mid-pull corner at re-ship).
        """
        ctx = self.ctx
        world = self.topo.world
        policy = self.retry
        for attempt in range(policy.max_attempts):
            if self._faults.is_dead(self._server):
                return "dead"
            verdict = yield from world.send_with_timeout(
                msg, dest=self._server, tag=tag, timeout=policy.op_timeout
            )
            if verdict == "ok":
                return "ok"
            if self._faults.is_dead(self._server):
                return "dead"
            if verdict == "stuck":
                return "ok"
            self.stats.retries += 1
            self._record_counter("retries")
            yield ctx.env.sleep(policy.delay(attempt))
        if self._faults.is_dead(self._server):
            return "dead"
        raise RuntimeError(
            f"rank {ctx.rank}: send to Rocpanda server {self._server} "
            f"kept timing out"
        )

    def _ship_guarded(self, entry: _PendingOutput):
        """Generator: ship one pending output; returns 'ok' or 'dead'."""
        if entry.batch is not None:
            verdict = yield from self._ship_guarded_batch(entry)
            return verdict
        ctx = self.ctx
        verdict = yield from self._send_guarded(
            WriteBegin(
                path=entry.path,
                window=entry.window,
                nblocks=len(entry.blocks),
                total_bytes=sum(b.nbytes for b in entry.blocks),
                file_attrs=entry.file_attrs,
            ),
            TAG_CTRL,
        )
        if verdict != "ok":
            return verdict
        for block in entry.blocks:
            yield ctx.env.sleep(self.pack_overhead + block.nbytes / self.pack_bw)
            verdict = yield from self._send_guarded(
                BlockEnvelope(entry.path, block), TAG_BLOCK
            )
            if verdict != "ok":
                return verdict
            self.stats.blocks_written += 1
            self.stats.bytes_written += block.nbytes
        return "ok"

    def _ship_guarded_batch(self, entry: _PendingOutput):
        """Generator: resilient batched ship — one guarded aggregated send.

        This is where the "one aggregated envelope, one DES flight"
        shape pays off under faults: the whole snapshot rides a single
        guarded :class:`BlockBatch` (its wire size is the sum of the
        per-block envelopes), so a failover re-ships one message
        instead of N, and the server's per-block dedup drops whatever
        the dead server already persisted.
        """
        ctx = self.ctx
        batch = entry.batch
        total = sum(b.nbytes for b in batch.blocks)
        verdict = yield from self._send_guarded(
            WriteBegin(
                path=entry.path,
                window=entry.window,
                nblocks=len(batch.blocks),
                total_bytes=total,
                file_attrs=entry.file_attrs,
            ),
            TAG_CTRL,
        )
        if verdict != "ok":
            return verdict
        # One marshalling charge for the aggregated envelope.
        yield ctx.env.sleep(self.pack_overhead + total / self.pack_bw)
        verdict = yield from self._send_guarded(batch, TAG_BLOCK)
        if verdict != "ok":
            return verdict
        # Per delivery attempt, like the per-block path: a re-ship after
        # failover re-counts the blocks it re-sends.
        self.stats.blocks_written += len(batch.blocks)
        self.stats.bytes_written += total
        return "ok"

    def _deliver_pending(self):
        """Generator: (re)ship entries not yet delivered to the current server."""
        for _ in range(len(self.topo.servers) + 1):
            undelivered = [
                e for e in self._unsynced if e.delivered_to != self._server
            ]
            if not undelivered:
                return
            failed = False
            for entry in undelivered:
                verdict = yield from self._ship_guarded(entry)
                if verdict == "dead":
                    failed = True
                    break
                entry.delivered_to = self._server
            if not failed:
                return
            self._failover()
        raise RuntimeError(
            f"rank {self.ctx.rank}: could not deliver output to any "
            f"Rocpanda server"
        )

    def _sender_main(self):
        """Persistent background sender (client-side buffering mode)."""
        while True:
            job = yield self._send_queue.get()
            if job is None:
                return
            path, window_name, blocks, file_attrs, done = job
            t0 = self.ctx.now
            if self._faults is None:
                if self.batched:
                    # Blocks were already copied at enqueue time; the
                    # batch encode just serialises those private arrays.
                    yield from self._ship_batched(
                        path, window_name,
                        encode_block_batch(path, blocks), file_attrs,
                    )
                else:
                    yield from self._ship(path, window_name, blocks, file_attrs)
            else:
                entry = _PendingOutput(path, window_name, blocks, file_attrs)
                if self.batched:
                    entry.batch = encode_block_batch(path, blocks)
                self._unsynced.append(entry)
                yield from self._deliver_pending()
            done.succeed()
            self.ctx.io_record(
                self.name, "bg_ship", path=path,
                nbytes=sum(b.nbytes for b in blocks), t_start=t0, visible=False,
            )

    def _drain_sends(self):
        """Generator: wait until all buffered sends reached the server."""
        pending, self._pending_sends = self._pending_sends, []
        for done in pending:
            yield done

    def read_attribute(
        self,
        window_name: str,
        attr_names: Optional[List[str]] = None,
        path: str = "snapshot",
    ):
        """Generator: collective restart from server-written files.

        All clients must call this collectively.  With
        ``batched_restart`` (the default) every client announces its
        wanted block IDs to every alive server; servers bulk-read their
        file shares and scatter aggregated batches back.  The per-block
        spec path asks only this rank's own server.  Returns the
        restored block IDs.
        """
        ctx = self.ctx
        t0 = ctx.now
        yield from self._drain_sends()
        if self._faults is not None and self._faults.is_dead(self._server):
            self._failover()
        window = self.com.window(window_name)
        wanted = set(window.pane_ids())
        if self.batched_restart:
            restored, nbytes = yield from self._read_batched(
                window_name, wanted, attr_names, path
            )
        else:
            restored, nbytes = yield from self._read_perblock(
                window_name, wanted, attr_names, path
            )
        self.stats.visible_read_time += ctx.now - t0
        ctx.io_record(
            self.name, "read_attribute", path=path, nbytes=nbytes, t_start=t0
        )
        ctx.trace("rocpanda", f"restored {len(restored)} blocks from {path}")
        return sorted(restored)

    def _read_perblock(self, window_name, wanted, attr_names, path):
        """Generator: the per-block restart loop (executable spec path).

        Requires every server to have at least one assigned client
        (``nclients >= nservers``, a topology contract shared with the
        two-phase path): a server that receives no restart request
        never joins the servers' wanted-map allgather.

        Small (eager) restart blocks travel fire-and-forget with a
        size-proportional flight time, so a server's tiny
        :class:`RestartDone` can land *before* its last blocks.  After
        ``Done`` the loop keeps draining with a timeout until the
        wanted set empties or the wire goes quiet — only then is a
        block genuinely missing.
        """
        world = self.topo.world
        yield from world.send(
            RestartRequest(
                prefix=path,
                window=window_name,
                block_ids=tuple(sorted(wanted)),
                attr_names=tuple(attr_names) if attr_names is not None else None,
            ),
            dest=self._server,
            tag=TAG_CTRL,
        )
        restored: List[int] = []
        nbytes = 0
        done = False
        while not done or wanted:
            if done:
                # Done overtook in-flight eager blocks: drain until the
                # stragglers land or the wire quiesces.
                reply = yield from world.recv_with_timeout(
                    source=ANY_SOURCE, tag=TAG_REPLY,
                    timeout=self.retry.op_timeout,
                )
                if reply is None:
                    break
                msg, status = reply
            else:
                msg, status = yield from world.recv(
                    source=ANY_SOURCE, tag=TAG_REPLY
                )
            if isinstance(msg, RestartBlock):
                if msg.block.block_id not in wanted:
                    # Duplicate: the block also survived in another file
                    # (e.g. a committed snapshot plus a failed-over
                    # re-ship generation); apply only the first copy.
                    continue
                apply_block(self.com, msg.block)
                restored.append(msg.block.block_id)
                wanted.discard(msg.block.block_id)
                self.stats.blocks_read += 1
                self.stats.bytes_read += msg.block.nbytes
                nbytes += msg.block.nbytes
            elif isinstance(msg, RestartDone):
                done = True
            elif isinstance(msg, SyncReply):
                # Stale ack from a re-sent sync request; drop it.
                continue
            else:
                raise ProtocolError(
                    f"rank {self.ctx.rank}: unexpected restart reply "
                    f"{type(msg).__name__} from rank {status.source}"
                )
        if wanted:
            raise KeyError(
                f"restart of {window_name!r} from {path!r} is missing blocks "
                f"{sorted(wanted)}"
            )
        return restored, nbytes

    def _apply_batch(self, msg: RestartBatch, source: int, wanted, restored):
        """Apply one scatter batch; returns the payload bytes applied."""
        if len(msg.blocks) != msg.nblocks:
            raise ProtocolError(
                f"rank {self.ctx.rank}: RestartBatch from rank {source} "
                f"declares {msg.nblocks} blocks but carries {len(msg.blocks)}"
            )
        nbytes = 0
        for block in msg.blocks:
            if block.block_id not in wanted:
                # Duplicate (another file generation, or a resume that
                # re-read blocks already applied); first copy wins.
                continue
            apply_block(self.com, block)
            restored.append(block.block_id)
            wanted.discard(block.block_id)
            self.stats.blocks_read += 1
            self.stats.bytes_read += block.nbytes
            nbytes += block.nbytes
        return nbytes

    def _read_batched(self, window_name, wanted, attr_names, path):
        """Generator: the two-phase collective restart (client side).

        Sends this rank's wanted set to **every alive server** (each
        server derives the complete block->owner map from its own
        request bucket), then drains aggregated :class:`RestartBatch`
        replies until one :class:`RestartDone` per outstanding *file
        share* has arrived.  ``awaiting`` maps each share (keyed by the
        server rank that owns it in the round-robin file assignment) to
        the rank currently serving it; when a serving rank dies, the
        share is re-requested from its deterministic heir with the
        still-missing block IDs (``resume_of``) and the heir replies to
        this client alone.
        """
        ctx = self.ctx
        world = self.topo.world
        faults = self._faults
        servers = self.topo.servers
        attrs = tuple(attr_names) if attr_names is not None else None
        if faults is None:
            alive = list(servers)
        else:
            alive = [s for s in servers if not faults.is_dead(s)]
        #: share rank -> rank currently expected to serve that share.
        awaiting: Dict[int, int] = {}
        request = RestartRequest(
            prefix=path,
            window=window_name,
            block_ids=tuple(sorted(wanted)),
            attr_names=attrs,
            batched=True,
        )
        for server in alive:
            yield from world.send(request, dest=server, tag=TAG_CTRL)
            awaiting[server] = server
        # Shares of servers already dead before the restart began are
        # claimed from their heirs straight away.
        for dead in (s for s in servers if s not in awaiting):
            heir = failover_server(dead, servers, faults.is_dead)
            yield from world.send(
                RestartRequest(
                    prefix=path,
                    window=window_name,
                    block_ids=tuple(sorted(wanted)),
                    attr_names=attrs,
                    batched=True,
                    resume_of=dead,
                ),
                dest=heir,
                tag=TAG_CTRL,
            )
            awaiting[dead] = heir
            self.stats.failovers += 1
            self._record_counter("failovers")
        restored: List[int] = []
        nbytes = 0
        misses = 0
        while awaiting:
            if faults is None:
                msg, status = yield from world.recv(
                    source=ANY_SOURCE, tag=TAG_REPLY
                )
            else:
                reply = yield from world.recv_with_timeout(
                    source=ANY_SOURCE, tag=TAG_REPLY,
                    timeout=self.retry.op_timeout * 4,
                )
                if reply is None:
                    # A share's server may have died mid-read: resume
                    # each orphaned share from its current heir, with
                    # the block IDs this rank is still missing.
                    moved = False
                    for share, serving in list(awaiting.items()):
                        if not faults.is_dead(serving):
                            continue
                        heir = failover_server(
                            serving, servers, faults.is_dead
                        )
                        yield from world.send(
                            RestartRequest(
                                prefix=path,
                                window=window_name,
                                block_ids=tuple(sorted(wanted)),
                                attr_names=attrs,
                                batched=True,
                                resume_of=share,
                            ),
                            dest=heir,
                            tag=TAG_CTRL,
                        )
                        awaiting[share] = heir
                        self.stats.failovers += 1
                        self._record_counter("failovers")
                        moved = True
                    if not moved:
                        misses += 1
                        if misses > 1000:
                            raise RuntimeError(
                                f"rank {ctx.rank}: Rocpanda batched restart "
                                f"stalled waiting on shares {sorted(awaiting)}"
                            )
                    continue
                msg, status = reply
            if isinstance(msg, RestartBatch):
                nbytes += self._apply_batch(msg, status.source, wanted, restored)
            elif isinstance(msg, RestartDone):
                share = (
                    msg.resume_of if msg.resume_of is not None else status.source
                )
                awaiting.pop(share, None)
            elif isinstance(msg, SyncReply):
                # Stale ack from a re-sent sync request; drop it.
                continue
            else:
                raise ProtocolError(
                    f"rank {self.ctx.rank}: unexpected restart reply "
                    f"{type(msg).__name__} from rank {status.source}"
                )
        if wanted:
            raise KeyError(
                f"restart of {window_name!r} from {path!r} is missing blocks "
                f"{sorted(wanted)}"
            )
        return restored, nbytes

    def sync(self):
        """Generator: wait until everything this rank sent is on disk."""
        t0 = self.ctx.now
        world = self.topo.world
        yield from self._drain_sends()
        if self._faults is None:
            yield from world.send(SyncRequest(), dest=self._server, tag=TAG_CTRL)
            msg, _ = yield from world.recv(source=self._server, tag=TAG_REPLY)
            if not isinstance(msg, SyncReply):
                raise TypeError(f"expected SyncReply, got {type(msg).__name__}")
        else:
            yield from self._sync_resilient()
        self.stats.sync_time += self.ctx.now - t0
        self.ctx.io_record(self.name, "sync", t_start=t0)

    def _sync_resilient(self):
        """Generator: sync that survives lost messages and dead servers.

        Requests carry a sequence number the server echoes; on a reply
        timeout the request is re-sent (same seq) while the server is
        alive, and stale replies from earlier requests are discarded.
        A dead server triggers failover: re-ship everything unsynced to
        the replacement, then sync against it.
        """
        world = self.topo.world
        policy = self.retry
        self._sync_seq += 1
        seq = self._sync_seq
        for _ in range(len(self.topo.servers) + 1):
            yield from self._deliver_pending()
            verdict = yield from self._send_guarded(SyncRequest(seq), TAG_CTRL)
            if verdict == "dead":
                self._failover()
                continue
            acked = False
            misses = 0
            while not acked:
                reply = yield from world.recv_with_timeout(
                    source=self._server, tag=TAG_REPLY,
                    timeout=policy.op_timeout * 4,
                )
                if reply is None:
                    if self._faults.is_dead(self._server):
                        break
                    misses += 1
                    if misses > 1000:
                        raise RuntimeError(
                            f"rank {self.ctx.rank}: Rocpanda sync stalled"
                        )
                    # Request or reply lost (or the server is still
                    # draining its queue): ask again with the same seq.
                    self.stats.retries += 1
                    self._record_counter("retries")
                    verdict = yield from self._send_guarded(
                        SyncRequest(seq), TAG_CTRL
                    )
                    if verdict == "dead":
                        break
                    continue
                msg, _ = reply
                if isinstance(msg, SyncReply) and msg.seq == seq:
                    acked = True
                # else: stale reply from an earlier request; drop it.
            if acked:
                self._unsynced.clear()
                return
            self._failover()
        raise RuntimeError(
            f"rank {self.ctx.rank}: could not sync with any Rocpanda server"
        )

    def _shutdown_sender(self):
        """Generator: drain pending sends and join the background sender."""
        yield from self._drain_sends()
        if self._sender is not None and self._sender.alive:
            self._send_queue.put(None)  # shutdown token
            yield from self._sender.join()
        self._sender = None

    def finalize(self):
        """Generator: tell the server this client is done (call once)."""
        if self._finalized:
            return
        self._finalized = True
        yield from self._shutdown_sender()
        if self._faults is not None:
            yield from self._deliver_pending()
            if self._faults.is_dead(self._server):
                self._failover()
        yield from self.topo.world.send(
            Shutdown(), dest=self._server, tag=TAG_CTRL
        )
