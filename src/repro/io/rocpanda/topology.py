"""Rocpanda job topology: who serves, who computes, who talks to whom.

Simulations using Rocpanda with *n* clients and *m* servers run on
*n + m* processors.  After MPI initialization every processor calls
:func:`rocpanda_init`, which splits MPI_COMM_WORLD into a client
communicator and a server communicator (§4.1).  Server ranks are
spread across nodes by choosing global ranks ``0, s, 2s, ...`` with
stride ``s = nprocs // nservers`` — on an SMP machine with one server
per node's worth of ranks this dedicates one CPU per node to I/O.

Each server serves the ``s - 1`` client ranks that follow it; with
fine-grained distribution and dynamic load balancing the clients carry
roughly equal data, so "the I/O workload is partitioned among the
servers ... resulting in a balanced I/O workload at the servers
automatically" (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ...cluster.node import ROLE_SERVER

__all__ = [
    "Topology",
    "server_ranks",
    "rocpanda_init",
    "clients_of",
    "failover_server",
]


def server_ranks(nprocs: int, nservers: int) -> List[int]:
    """Global ranks dedicated as I/O servers: ``0, s, 2s, ...``."""
    if not 0 < nservers <= nprocs:
        raise ValueError(f"need 0 < nservers ({nservers}) <= nprocs ({nprocs})")
    if nprocs - nservers < nservers:
        # The stride-based layout needs at least one client per server;
        # fewer clients than servers would interleave server ranks at
        # stride 1 and leave tail servers with no clients — the run
        # would hang waiting for Shutdowns that can never come.
        raise ValueError(
            f"Rocpanda needs nclients >= nservers: {nprocs} ranks with "
            f"{nservers} servers leaves only {nprocs - nservers} clients"
        )
    stride = nprocs // nservers
    ranks = [i * stride for i in range(nservers)]
    return ranks


def clients_of(server: int, servers: Tuple[int, ...], nprocs: int) -> Tuple[int, ...]:
    """Client world-ranks assigned to ``server`` (mirrors ``_plan``).

    Each server serves the non-server ranks between itself and the next
    server; trailing ranks belong to the last server.  Pure function of
    the layout, so survivors can compute a dead peer's client set.
    """
    ordered = sorted(servers)
    i = ordered.index(server)
    end = ordered[i + 1] if i + 1 < len(ordered) else nprocs
    sset = set(ordered)
    return tuple(r for r in range(server + 1, end) if r not in sset)


def failover_server(dead: int, servers: Tuple[int, ...], is_dead) -> int:
    """Deterministic replacement for a dead server: next alive in ring.

    Every surviving rank evaluates the same pure rule — the dead
    server's position in the sorted server list walks forward (with
    wrap-around) until a server for which ``is_dead(rank)`` is false is
    found — so clients and adopting servers agree without coordination.
    Raises RuntimeError when no server survives.
    """
    ordered = sorted(servers)
    start = ordered.index(dead)
    for step in range(1, len(ordered) + 1):
        candidate = ordered[(start + step) % len(ordered)]
        if not is_dead(candidate):
            return candidate
    raise RuntimeError("no surviving Rocpanda server to fail over to")


@dataclass
class Topology:
    """One rank's view of the Rocpanda process layout."""

    nprocs: int
    nservers: int
    servers: Tuple[int, ...]
    #: This rank's role.
    is_server: bool
    #: World rank of the server handling this client (clients only).
    my_server: Optional[int]
    #: World ranks of this server's clients (servers only).
    my_clients: Tuple[int, ...]
    #: Client-only communicator (the one the application computes on),
    #: or the server communicator on server ranks.
    comm: object = None
    #: The original world communicator (for client<->server traffic).
    world: object = None

    @property
    def nclients(self) -> int:
        return self.nprocs - self.nservers


def _plan(nprocs: int, nservers: int):
    servers = server_ranks(nprocs, nservers)
    sset = set(servers)
    assignment = {}
    current = None
    for rank in range(nprocs):
        if rank in sset:
            current = rank
            assignment[current] = []
        else:
            assignment[current].append(rank)
    # Ranks before the first server (none, since 0 is a server) and
    # trailing ranks fall to the last server.
    return servers, assignment


def rocpanda_init(ctx, nservers: int):
    """Generator: split the world into clients and servers (§4.1).

    Every rank calls this collectively; returns a :class:`Topology`
    whose ``comm`` is the client communicator on clients ("all the
    instances of MPI_COMM_WORLD need to be replaced by the client
    communicator", §4.2) and the server communicator on servers.
    """
    world = ctx.world
    nprocs = world.size
    servers, assignment = _plan(nprocs, nservers)
    is_server = ctx.rank in assignment
    if is_server:
        ctx.set_role(ROLE_SERVER)
    sub = yield from world.split(1 if is_server else 0, key=ctx.rank)
    my_server = None
    my_clients: Tuple[int, ...] = ()
    if is_server:
        my_clients = tuple(assignment[ctx.rank])
    else:
        for s in reversed(servers):
            if s < ctx.rank:
                my_server = s
                break
        if my_server is None:
            my_server = servers[0]
    return Topology(
        nprocs=nprocs,
        nservers=nservers,
        servers=tuple(servers),
        is_server=is_server,
        my_server=my_server,
        my_clients=my_clients,
        comm=sub,
        world=world,
    )
