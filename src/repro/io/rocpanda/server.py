"""The Rocpanda I/O server: active buffering + write-behind (§4.1, §6.1).

A dedicated server rank runs :meth:`PandaServer.run` for the whole job:

* it **buffers** incoming data blocks instead of writing them, so the
  rendezvous send from the client completes as soon as the block is in
  server memory — the client returns to computation;
* it **writes behind**: while clients compute, the server drains its
  buffer into SHDF files, *checking for new client requests between
  writing two data blocks* (non-blocking probe), so writing always
  yields to new requests;
* when nothing is buffered it **blocks in probe**, leaving its CPU idle
  for the operating system — the SMP side-benefit of §4.1 (the noise
  model reads ``cpu.server_busy_fraction``, which the server keeps
  up to date);
* on **buffer overflow** it gracefully writes old blocks out to make
  room for incoming data;
* on **restart** it collects wanted block IDs from its clients, swaps
  the global block->owner map with the other servers, scans its
  round-robin share of the restart files, and ships each found block
  to whichever client wants it — which is why a run may restart with a
  different number of servers than wrote the files;
* the **two-phase** restart path (``RestartRequest.batched``) replaces
  the per-block scan/send loop: every client requests from every alive
  server (so each server derives the full owner map from its own
  request bucket — no server collective), the server bulk-reads its
  file share in large sieved regions through the
  :class:`~repro.fs.coalesce.ReadCoalescer`, batch-decodes each region,
  and scatters one aggregated :class:`RestartBatch` per (region,
  owner).  On the fault-free path the *next* region's disk read runs
  ahead while the current region's batches are on the wire, overlapping
  modeled disk and network time.  A client whose server dies mid-read
  sends a ``resume_of`` request to the dead server's heir, which
  rescans that share and replies to the requester alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...des import Interrupt
from ...faults.retry import RetryPolicy, retrying
from ...shdf.codec import TornFileError, encode_dataset
from ...shdf.drivers import HDFDriver, hdf4_driver
from ...shdf.file import SHDFReader, SHDFWriter
from ...vmpi.datatypes import ANY_SOURCE, ANY_TAG
from ..base import DataBlock, block_to_datasets, datasets_to_blocks
from .protocol import (
    TAG_BLOCK,
    TAG_CTRL,
    TAG_REPLY,
    BlockBatch,
    BlockEnvelope,
    EncodedBlock,
    ProtocolError,
    RestartBatch,
    RestartBlock,
    RestartDone,
    RestartRequest,
    Shutdown,
    SyncReply,
    SyncRequest,
    WriteBegin,
)
from .topology import Topology, clients_of, failover_server

__all__ = ["ServerConfig", "ServerStats", "PandaServer", "server_file_path"]


def server_file_path(prefix: str, server_index: int) -> str:
    """Collective-mode file name for one server's part of a snapshot."""
    return f"{prefix}_s{server_index:04d}.shdf"


@dataclass
class ServerConfig:
    """Tunables of one I/O server."""

    #: Buffer capacity for active buffering, in bytes.
    buffer_bytes: float = 512 * 1024 * 1024
    #: Scientific-format driver used for the files.
    driver: HDFDriver = field(default_factory=hdf4_driver)
    #: Per-block server-side bookkeeping cost on ingest (buffer
    #: management + Panda protocol handling), seconds.
    ingest_overhead: float = 0.4e-3
    #: Bandwidth of the buffering copy on the server (bytes/s).  Panda
    #: copies received blocks with large streaming memcpys, faster than
    #: the per-array buffering T-Rochdf does on the compute side.
    ingest_bw: float = 350 * 1024 * 1024
    #: Disable buffering entirely (ablation A1): write through, making
    #: clients wait for actual file I/O.
    active_buffering: bool = True
    #: ``server_busy_fraction`` while actively writing vs while idle.
    busy_fraction_writing: float = 0.95
    busy_fraction_idle: float = 0.05
    #: Backoff schedule for transient write faults (EIO, disk-full).
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Target bytes per bulk-read region in two-phase restart.  Regions
    #: are cut at data-block boundaries once they exceed this, so one
    #: region's decoded blocks can be scattered while the next region's
    #: disk read runs ahead.
    restart_region_bytes: float = 4 * 1024 * 1024
    #: Maximum hole (bytes) the restart read sieves through when
    #: merging record extents into one contiguous ``fs.read``.
    restart_sieve_gap: int = 65536


@dataclass
class ServerStats:
    """Accounting maintained by one server."""

    blocks_received: int = 0
    bytes_received: int = 0
    blocks_written: int = 0
    bytes_written: int = 0
    files_created: int = 0
    overflow_flushes: int = 0
    background_write_time: float = 0.0
    restart_blocks_sent: int = 0
    peak_buffered_bytes: int = 0
    #: Blocks that arrived before their path's WriteBegin (message
    #: reordering between eager control and rendezvous data traffic)
    #: and were stashed until the announcement landed.
    orphan_blocks_stashed: int = 0
    #: Resilience accounting.
    crashed: bool = False
    write_retries: int = 0
    read_retries: int = 0
    duplicate_blocks_dropped: int = 0
    torn_files_skipped: int = 0
    restart_regions_read: int = 0
    restart_resumes_served: int = 0


class _PathState:
    """Per-output-file bookkeeping on the server."""

    __slots__ = (
        "writer",
        "writer_attrs",
        "begun",
        "expected",
        "received",
        "written",
        "opened",
        "seen",
    )

    def __init__(self):
        self.writer: Optional[SHDFWriter] = None
        self.writer_attrs: Dict[str, Any] = {}
        self.begun: set = set()
        self.expected: Dict[int, int] = {}
        self.received = 0
        self.written = 0
        self.opened = False
        #: (client, block_id) pairs already ingested — duplicate
        #: suppression for retried sends and duplicated messages.
        self.seen: set = set()


class PandaServer:
    """One dedicated I/O server process."""

    def __init__(self, ctx, topo: Topology, config: Optional[ServerConfig] = None):
        self.ctx = ctx
        self.topo = topo
        self.config = config if config is not None else ServerConfig()
        self.stats = ServerStats()
        self.server_index = topo.servers.index(ctx.rank)
        self._paths: Dict[str, _PathState] = {}
        #: FIFO of (path, DataBlock | EncodedBlock) awaiting background
        #: write; batched entries keep their zero-copy record views.
        self._queue: List[Tuple[str, Any]] = []
        self._buffered_bytes = 0
        self._shutdown_ranks: set = set()
        self._sync_waiters: List[Tuple[int, int]] = []
        #: path -> [(client, BlockEnvelope | BlockBatch), ...] that
        #: arrived before the path's first WriteBegin.  A small eager
        #: WriteBegin queues on the destination NIC while a rendezvous
        #: block announcement (a control message that skips the NIC)
        #: lands ahead of it — at 256+ ranks with >16 KiB blocks this
        #: reordering is routine, so the server stashes the early
        #: blocks and replays them when the announcement arrives.
        self._orphans: Dict[str, List[Tuple[int, Any]]] = {}
        self._restart_requests: Dict[str, Dict[int, RestartRequest]] = {}
        self._faults = getattr(ctx.machine, "faults", None)
        #: Reused by _expected_clients when no injector is installed
        #: (frozen: the membership can only change under faults).
        self._clients_nofault = frozenset(topo.my_clients)
        #: path -> number of times the path was retired; a later
        #: re-announcement (a failed-over client re-shipping) writes a
        #: new generation file instead of truncating the committed one.
        self._file_gens: Dict[str, int] = {}
        #: (prefix, share rank) -> decoded datasets of that dead
        #: server's file share; fills on the first failover resume so
        #: later resumes for the same share skip the rescan.
        self._resume_cache: Dict[Tuple[str, int], List] = {}

    # -- main loop -------------------------------------------------------
    def run(self):
        """Generator: serve until every client has sent Shutdown.

        An injected crash (:class:`~repro.des.Interrupt`) abandons open
        writers without their commit footers — their files are
        detectably torn and the restart scan skips them — and returns
        with ``stats.crashed`` set.
        """
        try:
            result = yield from self._serve()
            return result
        except Interrupt as exc:
            self.stats.crashed = True
            self.ctx.trace("panda-server", f"crashed: {exc.cause}")
            rec = self.ctx.recorder
            if rec is not None:
                rec.record_counter("rocpanda", "server_crashes")
                rec.log_event(
                    self.ctx.now, "fault", self.ctx.rank,
                    f"server rank {self.ctx.rank} crashed: {exc.cause}",
                )
            return self.stats

    def _serve(self):
        ctx = self.ctx
        world = self.topo.world
        ctx.trace("panda-server", f"serving clients {self.topo.my_clients}")
        while True:
            if self._queue:
                # Data to write: poll for new requests (non-blocking),
                # otherwise write one buffered block out (§6.1).
                status = world.iprobe(ANY_SOURCE, ANY_TAG)
                if status is not None:
                    yield from self._handle_one(status)
                else:
                    yield from self._write_one_block()
            elif self._expected_clients() <= self._shutdown_ranks:
                break
            else:
                # Nothing to write: block in probe; the CPU is idle and
                # absorbs OS background work (§4.1).
                self.ctx.cpu.server_busy_fraction = self.config.busy_fraction_idle
                status = yield from world.probe(ANY_SOURCE, ANY_TAG)
                yield from self._handle_one(status)
            self._answer_sync_waiters()
        if self._orphans:
            # A stashed block whose WriteBegin never arrived is a real
            # protocol violation, not transient reordering.
            paths = sorted(self._orphans)
            raise ProtocolError(
                f"server rank {self.ctx.rank} shut down with data blocks "
                f"for paths {paths} that never saw a WriteBegin"
            )
        yield from self._close_finished_paths(force=True)
        # Under a burst storage tier, the server's durability promise
        # extends through the write-behind drain: wait for it before
        # answering the final syncs and going away.
        barrier = getattr(ctx.fs, "drain_barrier", None)
        if barrier is not None:
            yield from barrier()
        self._answer_sync_waiters()
        ctx.trace("panda-server", "shutdown complete")
        return self.stats

    def _expected_clients(self) -> set:
        """World ranks whose data (and Shutdown) this server must see.

        Without fault injection this is exactly ``my_clients``.  With
        faults it additionally adopts the clients of every dead server
        whose deterministic failover target (:func:`failover_server`)
        is this rank — the same pure rule the clients evaluate, so both
        sides agree without coordination.
        """
        faults = self._faults
        if faults is None:
            return self._clients_nofault
        expected = set(self.topo.my_clients)
        servers = self.topo.servers
        for dead in faults.dead_ranks():
            expected.discard(dead)
            if dead not in servers or dead == self.ctx.rank:
                continue
            try:
                heir = failover_server(dead, servers, faults.is_dead)
            except RuntimeError:
                continue
            if heir == self.ctx.rank:
                expected.update(
                    r
                    for r in clients_of(dead, servers, self.topo.nprocs)
                    if not faults.is_dead(r)
                )
        return expected

    # -- message handling ---------------------------------------------------
    def _handle_one(self, status):
        world = self.topo.world
        msg, st = yield from world.recv(source=status.source, tag=status.tag)
        if isinstance(msg, WriteBegin):
            yield from self._on_write_begin(st.source, msg)
        elif isinstance(msg, BlockEnvelope):
            yield from self._on_block(st.source, msg)
        elif isinstance(msg, BlockBatch):
            yield from self._on_block_batch(st.source, msg)
        elif isinstance(msg, SyncRequest):
            self._sync_waiters.append((st.source, msg.seq))
        elif isinstance(msg, RestartRequest):
            yield from self._on_restart_request(st.source, msg)
        elif isinstance(msg, Shutdown):
            self._shutdown_ranks.add(st.source)
        else:
            raise TypeError(f"server got unexpected message {type(msg).__name__}")

    def _on_write_begin(self, client: int, msg: WriteBegin):
        state = self._paths.setdefault(msg.path, _PathState())
        state.begun.add(client)
        state.expected[client] = msg.nblocks
        if not state.opened:
            state.opened = True
            gen = self._file_gens.get(msg.path, 0)
            file_path = server_file_path(msg.path, self.server_index)
            if gen:
                file_path = f"{msg.path}_s{self.server_index:04d}g{gen}.shdf"
            state.writer = SHDFWriter(
                self.ctx.env,
                self.ctx.fs,
                file_path,
                self.config.driver,
                node=self.ctx.node,
                recorder=self.ctx.recorder,
                rank=self.ctx.rank,
                visible=not self.config.active_buffering,
            )
            state.writer_attrs = dict(msg.file_attrs)
        orphans = self._orphans.pop(msg.path, None)
        if orphans:
            # Replay blocks that overtook this announcement; their
            # ingest cost is charged now, at processing time.
            for oclient, omsg in orphans:
                if isinstance(omsg, BlockBatch):
                    yield from self._on_block_batch(oclient, omsg)
                else:
                    yield from self._on_block(oclient, omsg)

    def _stash_orphan(self, client: int, msg) -> None:
        """Hold a block that arrived before its path's WriteBegin."""
        self._orphans.setdefault(msg.path, []).append((client, msg))
        self.stats.orphan_blocks_stashed += 1
        if self.ctx.recorder is not None:
            self.ctx.recorder.record_counter("rocpanda", "orphan_blocks_stashed")

    def _on_block(self, client: int, msg: BlockEnvelope):
        state = self._paths.get(msg.path)
        if state is None or state.writer is None:
            # The data overtook the (eager, NIC-queued) WriteBegin:
            # stash it until the announcement lands.
            self._stash_orphan(client, msg)
            return
        cfg = self.config
        block = msg.block
        nbytes = block.nbytes
        self.stats.blocks_received += 1
        self.stats.bytes_received += nbytes
        t0 = self.ctx.now
        # Buffer-management / protocol bookkeeping per block.
        yield self.ctx.env.sleep(cfg.ingest_overhead)
        key = (client, block.block_id)
        if key in state.seen:
            # A resend whose first copy also arrived (duplicated message
            # or a retried send that was in fact delivered): drop it, or
            # the writer would emit duplicate dataset names.
            self.stats.duplicate_blocks_dropped += 1
            if self.ctx.recorder is not None:
                self.ctx.recorder.record_counter(
                    "rocpanda", "duplicate_blocks_dropped"
                )
            return
        state.seen.add(key)
        state.received += 1
        if not cfg.active_buffering:
            self.ctx.io_record(
                "rocpanda", "ingest", path=msg.path, nbytes=nbytes,
                t_start=t0, visible=False,
            )
            # Ablation: write through while the client waits.
            yield from self._write_block(msg.path, block)
            yield from self._close_finished_paths()
            return
        # Copy into the server's buffer hierarchy.
        yield self.ctx.env.sleep(nbytes / cfg.ingest_bw)
        self.ctx.io_record(
            "rocpanda", "ingest", path=msg.path, nbytes=nbytes,
            t_start=t0, visible=False,
        )
        if self._buffered_bytes + nbytes > cfg.buffer_bytes:
            # Graceful overflow: write previously buffered data out to
            # make room for incoming data (§6.1).
            self.stats.overflow_flushes += 1
            if self.ctx.recorder is not None:
                self.ctx.recorder.record_counter("rocpanda", "overflow_flushes")
            while self._queue and self._buffered_bytes + nbytes > cfg.buffer_bytes:
                yield from self._write_one_block()
        self._queue.append((msg.path, block))
        self._buffered_bytes += nbytes
        self.stats.peak_buffered_bytes = max(
            self.stats.peak_buffered_bytes, self._buffered_bytes
        )

    def _on_block_batch(self, client: int, msg: BlockBatch):
        """Generator: scatter one aggregated envelope into the buffer.

        The blocks arrive pre-serialised; each is requeued **without
        re-copying its payload** — the queue entries keep the zero-copy
        record views of the shared batch buffer.  Dedup runs per
        sub-block against the same ``(client, block_id)`` set the
        per-block path uses, so a re-shipped batch after failover drops
        exactly the blocks the first delivery already landed.
        """
        state = self._paths.get(msg.path)
        if state is None or state.writer is None:
            self._stash_orphan(client, msg)
            return
        cfg = self.config
        blocks = msg.blocks
        total = sum(b.nbytes for b in blocks)
        self.stats.blocks_received += len(blocks)
        self.stats.bytes_received += total
        t0 = self.ctx.now
        # One bookkeeping charge per aggregated message.
        yield self.ctx.env.sleep(cfg.ingest_overhead)
        fresh = []
        for eb in blocks:
            key = (client, eb.block_id)
            if key in state.seen:
                self.stats.duplicate_blocks_dropped += 1
                if self.ctx.recorder is not None:
                    self.ctx.recorder.record_counter(
                        "rocpanda", "duplicate_blocks_dropped"
                    )
                continue
            state.seen.add(key)
            state.received += 1
            fresh.append(eb)
        if not cfg.active_buffering:
            self.ctx.io_record(
                "rocpanda", "ingest", path=msg.path, nbytes=total,
                t_start=t0, visible=False,
            )
            for eb in fresh:
                yield from self._write_block(msg.path, eb)
            yield from self._close_finished_paths()
            return
        total_fresh = sum(b.nbytes for b in fresh)
        # One streaming copy into the buffer hierarchy for the batch.
        yield self.ctx.env.sleep(total_fresh / cfg.ingest_bw)
        self.ctx.io_record(
            "rocpanda", "ingest", path=msg.path, nbytes=total,
            t_start=t0, visible=False,
        )
        if self._buffered_bytes + total_fresh > cfg.buffer_bytes:
            self.stats.overflow_flushes += 1
            if self.ctx.recorder is not None:
                self.ctx.recorder.record_counter("rocpanda", "overflow_flushes")
            while (
                self._queue
                and self._buffered_bytes + total_fresh > cfg.buffer_bytes
            ):
                yield from self._write_one_block()
        for eb in fresh:
            self._queue.append((msg.path, eb))
        self._buffered_bytes += total_fresh
        self.stats.peak_buffered_bytes = max(
            self.stats.peak_buffered_bytes, self._buffered_bytes
        )

    # -- background writing --------------------------------------------------
    def _write_one_block(self):
        path, block = self._queue.pop(0)
        self._buffered_bytes -= block.nbytes
        yield from self._write_block(path, block)
        yield from self._close_finished_paths()

    def _note_write_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats.write_retries += 1
        if self.ctx.recorder is not None:
            self.ctx.recorder.record_counter("rocpanda", "write_retries")
        self.ctx.trace("panda-server", f"write fault ({exc}); retry {attempt + 1}")

    def _write_block(self, path: str, block):
        """Generator: write one buffered block (DataBlock or EncodedBlock).

        The fault-free fast path coalesces the block's datasets into a
        single filesystem transfer (``write_records``) in **both**
        payload forms — a legacy :class:`DataBlock` is encoded to the
        same record bytes a batched client would have shipped — so ship
        modes stay bit-identical.  Fault-injected runs keep per-record
        writes: their progress bookkeeping resumes at the record that
        faulted, which a merged transfer could not express.
        """
        cpu = self.ctx.cpu
        cpu.server_busy_fraction = self.config.busy_fraction_writing
        t0 = self.ctx.now
        state = self._paths[path]
        encoded = isinstance(block, EncodedBlock)
        if self._faults is None:
            # No injector installed: the VFS cannot raise, so skip the
            # retry scaffolding (hot path — one call per buffered block).
            opened = False
            if not state.writer.is_open and state.writer.ndatasets == 0:
                yield from state.writer.open(file_attrs=state.writer_attrs)
                opened = True
            if encoded:
                records = block.records
            else:
                records = [
                    (d.name, encode_dataset(d), d.nbytes)
                    for d in block_to_datasets(block)
                ]
            yield from state.writer.write_records(records)
            self.stats.bytes_written += sum(r[2] for r in records)
        else:
            # Progress survives a faulted attempt: the VFS raises before
            # mutating anything, so already-appended datasets stay valid
            # and a retry resumes at the dataset that faulted.
            if encoded:
                records = block.records
            else:
                records = None
                datasets = block_to_datasets(block)
            progress = {"i": 0, "opened": False}

            def attempt():
                if not state.writer.is_open and state.writer.ndatasets == 0:
                    yield from state.writer.open(file_attrs=state.writer_attrs)
                    progress["opened"] = True
                if records is not None:
                    while progress["i"] < len(records):
                        name, record, data_nbytes = records[progress["i"]]
                        yield from state.writer.write_encoded(
                            name, record, data_nbytes
                        )
                        progress["i"] += 1
                        self.stats.bytes_written += data_nbytes
                else:
                    while progress["i"] < len(datasets):
                        dataset = datasets[progress["i"]]
                        yield from state.writer.write_dataset(dataset)
                        progress["i"] += 1
                        self.stats.bytes_written += dataset.nbytes

            yield from retrying(
                self.ctx.env, self.config.retry, attempt,
                on_retry=self._note_write_retry,
            )
            opened = progress["opened"]
        if opened:
            self.stats.files_created += 1
        state.written += 1
        self.stats.blocks_written += 1
        self.stats.background_write_time += self.ctx.now - t0
        self.ctx.io_record(
            "rocpanda", "bg_write", path=path, nbytes=block.nbytes,
            t_start=t0, visible=not self.config.active_buffering,
        )
        cpu.server_busy_fraction = self.config.busy_fraction_idle

    def _close_finished_paths(self, force: bool = False):
        """Generator: close and retire every fully-written output file."""
        if not self._paths:
            return
        expected_clients = self._expected_clients()
        nexpected = len(expected_clients)
        retire = []
        for path, state in self._paths.items():
            # Monotone-counter precondition: completion needs every
            # expected client announced and received == written, so the
            # subset/sum work below only runs when it could pass.
            if not force and (
                len(state.begun) < nexpected
                or state.received != state.written
            ):
                continue
            announced = expected_clients <= state.begun
            all_expected = sum(state.expected.values()) if announced else None
            complete = (
                announced
                and state.received == all_expected
                and state.written == all_expected
            )
            if complete or (force and state.opened):
                retire.append((path, state))
        for path, state in retire:
            if state.writer is not None and state.writer.is_open:
                if self._faults is None:
                    yield from state.writer.close()
                else:
                    yield from retrying(
                        self.ctx.env,
                        self.config.retry,
                        state.writer.close,
                        on_retry=self._note_write_retry,
                    )
            del self._paths[path]
            if self._faults is not None:
                self._file_gens[path] = self._file_gens.get(path, 0) + 1

    def _answer_sync_waiters(self) -> None:
        if not self._sync_waiters:
            return
        if self._queue or any(s.received != s.written for s in self._paths.values()):
            return
        waiters, self._sync_waiters = self._sync_waiters, []
        world = self.topo.world
        for client, seq in waiters:
            # Eager-sized reply echoing the request's seq; fire-and-forget.
            self.ctx.env.process(
                world.send(SyncReply(seq), dest=client, tag=TAG_REPLY),
                name="panda-sync-reply",
            )

    # -- restart (collective read) ---------------------------------------------
    def _on_restart_request(self, client: int, msg: RestartRequest):
        if msg.resume_of is not None:
            # Failover resume: served immediately and independently of
            # any round-0 bucket — the request carries the block IDs
            # its sender is still missing.
            yield from self._serve_restart_resume(client, msg)
            return
        bucket = self._restart_requests.setdefault(msg.prefix, {})
        bucket[client] = msg
        if msg.batched:
            # Two-phase: every live client requests from every alive
            # server, so this server's own bucket is the full owner map.
            expected = self._expected_restart_clients()
        else:
            expected = self._expected_clients()
        if len(bucket) >= len(expected):
            if msg.batched:
                yield from self._do_restart_batched(msg.prefix)
            else:
                yield from self._do_restart(msg.prefix)
            del self._restart_requests[msg.prefix]

    def _expected_restart_clients(self) -> set:
        """Live compute ranks that join a *batched* collective restart."""
        ranks = set(range(self.topo.nprocs)) - set(self.topo.servers)
        if self._faults is None:
            return ranks
        return {r for r in ranks if not self._faults.is_dead(r)}

    def _do_restart(self, prefix: str):
        ctx = self.ctx
        world = self.topo.world
        server_comm = self.topo.comm
        requests = self._restart_requests[prefix]
        # Build my clients' wanted map and swap it with the other servers.
        mine = {
            bid: client
            for client, req in requests.items()
            for bid in req.block_ids
        }
        window = next(iter(requests.values())).window
        attr_filter = next(iter(requests.values())).attr_names
        all_maps = yield from server_comm.allgather(mine)
        owner_of: Dict[int, int] = {}
        for m in all_maps:
            owner_of.update(m)
        # Round-robin file assignment across the *current* server count:
        # restart may use a different number of servers than the run
        # that wrote the files (§4.1).
        files = sorted(
            f for f in ctx.fs.disk.listdir(prefix + "_s") if f.endswith(".shdf")
        )
        if not files:
            raise FileNotFoundError(f"no Rocpanda restart files with prefix {prefix!r}")
        my_files = files[self.server_index :: self.topo.nservers]
        sent = 0
        t0 = ctx.now
        scanned_bytes = 0
        for file_path in my_files:
            reader = SHDFReader(
                ctx.env, ctx.fs, file_path, self.config.driver, node=ctx.node,
                recorder=ctx.recorder, rank=ctx.rank,
            )
            try:
                yield from reader.open()
            except TornFileError as exc:
                # The writing server crashed mid-snapshot: the file has
                # no commit footer.  Skip it; its blocks come from the
                # survivor that adopted the dead server's clients.
                self.stats.torn_files_skipped += 1
                if ctx.recorder is not None:
                    ctx.recorder.record_counter("rocpanda", "torn_files_skipped")
                    ctx.recorder.log_event(
                        ctx.now, "fault", ctx.rank,
                        f"skipping torn restart file {file_path}: {exc}",
                    )
                ctx.trace("panda-server", f"skipping torn file {file_path}")
                continue
            # Scan through the file, find requested data blocks, send
            # them to the appropriate clients (§4.1).
            datasets = yield from reader.read_all()
            scanned_bytes += sum(d.nbytes for d in datasets)
            yield from reader.close()
            for block in datasets_to_blocks(
                [d for d in datasets if d.name.startswith(window + "/")]
            ):
                owner = owner_of.get(block.block_id)
                if owner is None:
                    continue
                if attr_filter is not None:
                    block.arrays = {
                        k: v for k, v in block.arrays.items() if k in attr_filter
                    }
                    block.specs = {
                        k: v for k, v in block.specs.items() if k in attr_filter
                    }
                yield from world.send(
                    RestartBlock(prefix, block), dest=owner, tag=TAG_REPLY
                )
                sent += 1
        self.stats.restart_blocks_sent += sent
        ctx.io_record(
            "rocpanda", "restart_scan", path=prefix, nbytes=scanned_bytes,
            t_start=t0,
        )
        # All servers finish scanning/sending before anyone reports done,
        # so a client never sees RestartDone before its last block.
        yield from server_comm.barrier()
        for client in self.topo.my_clients:
            yield from world.send(
                RestartDone(prefix, sent), dest=client, tag=TAG_REPLY
            )

    # -- two-phase restart (sieved bulk reads + read-ahead) ---------------------
    def _note_read_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats.read_retries += 1
        if self.ctx.recorder is not None:
            self.ctx.recorder.record_counter("rocpanda", "read_retries")
        self.ctx.trace("panda-server", f"read fault ({exc}); retry {attempt + 1}")

    def _restart_files(self, prefix: str) -> List[str]:
        files = sorted(
            f for f in self.ctx.fs.disk.listdir(prefix + "_s") if f.endswith(".shdf")
        )
        if not files:
            raise FileNotFoundError(
                f"no Rocpanda restart files with prefix {prefix!r}"
            )
        return files

    def _scan_restart_share(self, prefix: str, share_index: int):
        """Generator: structurally scan one server share of the restart files.

        Returns ``(readers, flat)`` where ``flat`` is the ordered list
        of ``(reader, region_entries)`` bulk-read units.  Torn files
        (no commit footer — their writer crashed mid-snapshot) are
        skipped exactly like the per-block path skips them.
        """
        ctx = self.ctx
        files = self._restart_files(prefix)
        readers = []
        flat = []
        for file_path in files[share_index :: self.topo.nservers]:
            reader = SHDFReader(
                ctx.env, ctx.fs, file_path, self.config.driver, node=ctx.node,
                recorder=ctx.recorder, rank=ctx.rank,
            )
            try:
                yield from reader.open_scan()
            except TornFileError as exc:
                self.stats.torn_files_skipped += 1
                if ctx.recorder is not None:
                    ctx.recorder.record_counter("rocpanda", "torn_files_skipped")
                    ctx.recorder.log_event(
                        ctx.now, "fault", ctx.rank,
                        f"skipping torn restart file {file_path}: {exc}",
                    )
                ctx.trace("panda-server", f"skipping torn file {file_path}")
                continue
            readers.append(reader)
            for region in _restart_regions(
                reader.entries(), self.config.restart_region_bytes
            ):
                flat.append((reader, region))
        return readers, flat

    def _read_regions(self, flat):
        """Generator: yield each region's decoded datasets, reading ahead.

        Fault-free, the next region's sieved disk read is launched as
        its own DES process *before* the current region's datasets are
        handed to the caller — so while the caller scatters batch
        replies over the network, the disk is already serving the next
        region.  Under fault injection the reads run sequentially
        behind :func:`~repro.faults.retry.retrying` (a read-ahead
        process that faulted with nobody waiting would crash the
        simulation, and retry bookkeeping needs the failure delivered
        here).

        Implemented as a generator-of-generators: the caller drives
        ``for step in self._read_regions(flat): datasets = yield from step``.
        """
        ctx = self.ctx
        gap = self.config.restart_sieve_gap
        if self._faults is None:
            pending = None

            def advance(i):
                nonlocal pending
                if pending is None:
                    pending = ctx.env.process(
                        flat[i][0].read_extents(flat[i][1], sieve_gap=gap),
                        name="panda-restart-read",
                    )
                current = pending
                if i + 1 < len(flat):
                    nxt_reader, nxt_region = flat[i + 1]
                    pending = ctx.env.process(
                        nxt_reader.read_extents(nxt_region, sieve_gap=gap),
                        name="panda-restart-readahead",
                    )
                else:
                    pending = None
                datasets = yield current
                return datasets

            for i in range(len(flat)):
                self.stats.restart_regions_read += 1
                yield advance(i)
        else:
            def attempt_read(reader, region):
                datasets = yield from retrying(
                    ctx.env, self.config.retry,
                    lambda: reader.read_extents(region, sieve_gap=gap),
                    on_retry=self._note_read_retry,
                )
                return datasets

            for reader, region in flat:
                self.stats.restart_regions_read += 1
                yield attempt_read(reader, region)

    def _region_blocks(self, datasets, window: str, attr_filter):
        """Group one region's datasets into per-block payloads."""
        blocks = datasets_to_blocks(
            [d for d in datasets if d.name.startswith(window + "/")]
        )
        if attr_filter is not None:
            for block in blocks:
                block.arrays = {
                    k: v for k, v in block.arrays.items() if k in attr_filter
                }
                block.specs = {
                    k: v for k, v in block.specs.items() if k in attr_filter
                }
        return blocks

    def _do_restart_batched(self, prefix: str):
        """Generator: the two-phase collective restart for one snapshot.

        Phase one gathered every live client's wanted block IDs into
        ``self._restart_requests[prefix]`` (each client requests from
        *every* alive server, so the bucket is the complete owner map —
        no allgather, no barrier: per-channel FIFO ordering guarantees
        each client's RestartDone arrives after its last batch).
        Phase two bulk-reads this server's file share region by region,
        batch-decodes, and scatters one :class:`RestartBatch` per
        (region, owner).
        """
        ctx = self.ctx
        world = self.topo.world
        requests = self._restart_requests[prefix]
        owner_of: Dict[int, int] = {
            bid: client
            for client, req in requests.items()
            for bid in req.block_ids
        }
        first = next(iter(requests.values()))
        window = first.window
        attr_filter = first.attr_names
        sent = 0
        t0 = ctx.now
        scanned_bytes = 0
        readers, flat = yield from self._scan_restart_share(
            prefix, self.server_index
        )
        for step in self._read_regions(flat):
            datasets = yield from step
            scanned_bytes += sum(d.nbytes for d in datasets)
            per_owner: Dict[int, List[DataBlock]] = {}
            for block in self._region_blocks(datasets, window, attr_filter):
                owner = owner_of.get(block.block_id)
                if owner is None:
                    continue
                per_owner.setdefault(owner, []).append(block)
            for owner in sorted(per_owner):
                blocks = per_owner[owner]
                yield from world.send(
                    RestartBatch(prefix, blocks, len(blocks)),
                    dest=owner, tag=TAG_REPLY,
                )
                sent += len(blocks)
        for reader in readers:
            yield from reader.close()
        self.stats.restart_blocks_sent += sent
        ctx.io_record(
            "rocpanda", "restart_scan", path=prefix, nbytes=scanned_bytes,
            t_start=t0,
        )
        for client in sorted(self._expected_restart_clients()):
            yield from world.send(
                RestartDone(prefix, sent), dest=client, tag=TAG_REPLY
            )

    def _serve_restart_resume(self, client: int, msg: RestartRequest):
        """Generator: serve a failover resume for a dead server's share.

        Replies go to the requesting client **only** — a multicast to
        all owners could rendezvous-block forever against clients that
        already completed their restart and left the reply loop.
        """
        ctx = self.ctx
        share = msg.resume_of
        world = self.topo.world
        self.stats.restart_resumes_served += 1
        if ctx.recorder is not None:
            ctx.recorder.record_counter("rocpanda", "restart_resumes_served")
        ctx.trace(
            "panda-server",
            f"resuming share of dead server {share} for client {client}",
        )
        sent = 0
        if msg.block_ids:
            datasets = yield from self._restart_share_datasets(msg.prefix, share)
            wanted = set(msg.block_ids)
            blocks = [
                b
                for b in self._region_blocks(datasets, msg.window, msg.attr_names)
                if b.block_id in wanted
            ]
            if blocks:
                yield from world.send(
                    RestartBatch(msg.prefix, blocks, len(blocks)),
                    dest=client, tag=TAG_REPLY,
                )
                sent = len(blocks)
                self.stats.restart_blocks_sent += sent
        yield from world.send(
            RestartDone(msg.prefix, sent, resume_of=share),
            dest=client, tag=TAG_REPLY,
        )

    def _restart_share_datasets(self, prefix: str, share_rank: int):
        """Generator: decode (and cache) a dead server's restart share."""
        key = (prefix, share_rank)
        cached = self._resume_cache.get(key)
        if cached is not None:
            return cached
        share_index = self.topo.servers.index(share_rank)
        readers, flat = yield from self._scan_restart_share(prefix, share_index)
        datasets: List = []
        for step in self._read_regions(flat):
            region_datasets = yield from step
            datasets.extend(region_datasets)
        for reader in readers:
            yield from reader.close()
        self._resume_cache[key] = datasets
        return datasets


def _restart_regions(entries, region_bytes: float):
    """Split scan entries into bulk-read regions cut at block boundaries.

    ``entries`` are ``(name, offset, length)`` in on-disk order with
    names shaped ``window/b<id>/<attr>``; a region never splits one
    data block's records, so each region decodes to whole blocks that
    can be scattered independently.
    """
    regions: List[List] = []
    current: List = []
    size = 0
    prev_block = None
    for entry in entries:
        name = entry[0]
        head = "/".join(name.split("/", 2)[:2])
        if current and head != prev_block and size >= region_bytes:
            regions.append(current)
            current = []
            size = 0
        current.append(entry)
        size += entry[2]
        prev_block = head
    if current:
        regions.append(current)
    return regions
