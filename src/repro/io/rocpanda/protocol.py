"""Rocpanda client/server wire protocol.

Message classes carried over vmpi between compute clients and their
dedicated I/O server.  Control messages are tiny (eager protocol);
block payloads are large (rendezvous), so a client's send completes
exactly when the server has buffered the block — giving the
"clients return to computation when all the output data are buffered
at the servers" semantics of active buffering (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..base import DataBlock

__all__ = [
    "ProtocolError",
    "TAG_CTRL",
    "TAG_BLOCK",
    "TAG_REPLY",
    "WriteBegin",
    "BlockEnvelope",
    "SyncRequest",
    "SyncReply",
    "RestartRequest",
    "RestartBlock",
    "RestartDone",
    "Shutdown",
]

class ProtocolError(RuntimeError):
    """A message arrived that violates the Rocpanda wire protocol.

    Raised by the server when it receives e.g. a :class:`BlockEnvelope`
    for a path no client has announced with :class:`WriteBegin` —
    turning what used to be an obscure ``AttributeError`` deep in the
    writer into an explicit, diagnosable failure.
    """


#: Tag for small control messages (client -> server).
TAG_CTRL = 1
#: Tag for block payloads (client -> server during output).
TAG_BLOCK = 2
#: Tag for server -> client replies (sync acks, restart blocks).
TAG_REPLY = 3


@dataclass(frozen=True)
class WriteBegin:
    """A client announces one collective output call."""

    path: str
    window: str
    nblocks: int
    total_bytes: int
    file_attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BlockEnvelope:
    """One data block on the wire."""

    path: str
    block: DataBlock

    @property
    def nbytes(self) -> int:
        # Wire size is dominated by the block payload.
        return self.block.nbytes + 64


@dataclass(frozen=True)
class SyncRequest:
    """Client asks: tell me when everything I sent is on disk.

    ``seq`` pairs requests with replies so a client that re-sends a
    request (reply lost / server slow) can discard stale replies.
    """

    seq: int = 0


@dataclass(frozen=True)
class SyncReply:
    """Server: all output affecting this client is on disk."""

    seq: int = 0


@dataclass(frozen=True)
class RestartRequest:
    """A client's restart demand: which blocks it wants from a snapshot."""

    prefix: str
    window: str
    block_ids: Tuple[int, ...]
    attr_names: Optional[Tuple[str, ...]] = None


@dataclass
class RestartBlock:
    """A restored block travelling from a scanning server to its owner."""

    prefix: str
    block: DataBlock

    @property
    def nbytes(self) -> int:
        return self.block.nbytes + 64


@dataclass(frozen=True)
class RestartDone:
    """Server signal: the collective restart for ``prefix`` is complete."""

    prefix: str
    blocks_sent: int


@dataclass(frozen=True)
class Shutdown:
    """Client is finalizing; server exits after all clients say so."""
