"""Rocpanda client/server wire protocol.

Message classes carried over vmpi between compute clients and their
dedicated I/O server.  Control messages are tiny (eager protocol);
block payloads are large (rendezvous), so a client's send completes
exactly when the server has buffered the block — giving the
"clients return to computation when all the output data are buffered
at the servers" semantics of active buffering (§6.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...shdf.codec import encode_batch
from ..base import DataBlock, block_to_datasets

__all__ = [
    "ProtocolError",
    "TAG_CTRL",
    "TAG_BLOCK",
    "TAG_REPLY",
    "WriteBegin",
    "BlockEnvelope",
    "EncodedBlock",
    "BlockBatch",
    "encode_block_batch",
    "SyncRequest",
    "SyncReply",
    "RestartRequest",
    "RestartBlock",
    "RestartBatch",
    "RestartDone",
    "Shutdown",
]

class ProtocolError(RuntimeError):
    """A message arrived that violates the Rocpanda wire protocol.

    Raised by the server when it receives e.g. a :class:`BlockEnvelope`
    for a path no client has announced with :class:`WriteBegin` —
    turning what used to be an obscure ``AttributeError`` deep in the
    writer into an explicit, diagnosable failure.
    """


#: Tag for small control messages (client -> server).
TAG_CTRL = 1
#: Tag for block payloads (client -> server during output).
TAG_BLOCK = 2
#: Tag for server -> client replies (sync acks, restart blocks).
TAG_REPLY = 3


@dataclass(frozen=True)
class WriteBegin:
    """A client announces one collective output call."""

    path: str
    window: str
    nblocks: int
    total_bytes: int
    file_attrs: Dict[str, Any] = field(default_factory=dict)


@dataclass
class BlockEnvelope:
    """One data block on the wire."""

    path: str
    block: DataBlock

    @property
    def nbytes(self) -> int:
        # Wire size is dominated by the block payload.
        return self.block.nbytes + 64


class EncodedBlock:
    """One data block already serialised to SHDF record bytes.

    Batched shipping encodes on the *client* (one pass over the whole
    snapshot into a shared buffer) and ships the record bytes; the
    server appends them verbatim instead of re-encoding per dataset.
    ``records`` holds ``(dataset_name, record_bytes, data_nbytes)``
    tuples whose record bytes are zero-copy slices of the shared batch
    buffer.  ``nbytes`` is pinned to the source :class:`DataBlock`'s
    accounting size so an :class:`EncodedBlock` riding a
    :class:`BlockEnvelope` costs exactly the same wire bytes as the
    unencoded block would — the wire schedules of the two ship modes
    stay identical.
    """

    __slots__ = ("block_id", "nbytes", "records")

    def __init__(self, block_id: int, nbytes: int, records: List[Tuple]):
        self.block_id = block_id
        self.nbytes = nbytes
        self.records = records

    def __repr__(self) -> str:
        return (
            f"<EncodedBlock b{self.block_id} "
            f"{len(self.records)} records, {self.nbytes} bytes>"
        )


@dataclass
class BlockBatch:
    """A whole snapshot's blocks for one server, as one wire message.

    The aggregated envelope of two-phase shipping: a single guarded
    send delivers every block, so the resilient path pays one
    delivery/failover round instead of one per block.  Wire size is the
    sum of the per-block envelope sizes, keeping the rendezvous
    byte-count identical to shipping the blocks individually.
    """

    path: str
    blocks: List[EncodedBlock]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes + 64 for b in self.blocks)


def encode_block_batch(path: str, blocks) -> BlockBatch:
    """Serialise ``blocks`` into one :class:`BlockBatch`.

    All datasets of all blocks are encoded into **one** shared buffer
    (:func:`repro.shdf.codec.encode_batch`); each block's records are
    zero-copy memoryview slices of it.  The memoryview is taken only
    after every record has been encoded — slicing a bytearray that
    still grows would force copies (or raise on resize).
    """
    datasets = []
    spans = []  # (block, ndatasets)
    for block in blocks:
        ds = block_to_datasets(block)
        datasets.extend(ds)
        spans.append((block, len(ds)))
    buf, entries = encode_batch(datasets)
    view = memoryview(buf)
    encoded = []
    i = 0
    for block, count in spans:
        records = []
        for name, offset, length, data_nbytes in entries[i : i + count]:
            records.append((name, view[offset : offset + length], data_nbytes))
        i += count
        encoded.append(EncodedBlock(block.block_id, block.nbytes, records))
    return BlockBatch(path, encoded)


@dataclass(frozen=True)
class SyncRequest:
    """Client asks: tell me when everything I sent is on disk.

    ``seq`` pairs requests with replies so a client that re-sends a
    request (reply lost / server slow) can discard stale replies.
    """

    seq: int = 0


@dataclass(frozen=True)
class SyncReply:
    """Server: all output affecting this client is on disk."""

    seq: int = 0


@dataclass(frozen=True)
class RestartRequest:
    """A client's restart demand: which blocks it wants from a snapshot.

    ``batched=True`` selects the two-phase collective read: the client
    sends its request to *every* alive server (so each server builds
    the full block->owner map from its own bucket, without a server
    collective), and replies arrive as :class:`RestartBatch` scatter
    messages instead of per-block :class:`RestartBlock` streams.

    ``resume_of`` marks a failover resume: "server ``resume_of`` died
    owing me its share of the restart files — you are its heir, rescan
    that share for the ``block_ids`` I am still missing."  Resume
    requests are served immediately (no bucketing).
    """

    prefix: str
    window: str
    block_ids: Tuple[int, ...]
    attr_names: Optional[Tuple[str, ...]] = None
    batched: bool = False
    resume_of: Optional[int] = None


@dataclass
class RestartBlock:
    """A restored block travelling from a scanning server to its owner."""

    prefix: str
    block: DataBlock

    @property
    def nbytes(self) -> int:
        return self.block.nbytes + 64


@dataclass
class RestartBatch:
    """One file region's restored blocks for one owner, as one message.

    The scatter phase of two-phase restart: a server bulk-reads a
    region of its file share, groups the decoded blocks per owning
    client, and ships each group as a single aggregated envelope.
    ``nblocks`` restates the payload length so the receiver can check
    block-count consistency per reply batch (a torn or mis-sliced
    batch fails loudly as a :class:`ProtocolError`).  Wire size mirrors
    the per-block envelopes it replaces.
    """

    prefix: str
    blocks: List[DataBlock]
    nblocks: int

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes + 64 for b in self.blocks)


@dataclass(frozen=True)
class RestartDone:
    """Server signal: the collective restart for ``prefix`` is complete.

    ``resume_of`` echoes the :class:`RestartRequest` field so a client
    waiting on several outstanding shares (its normal per-server Dones
    plus failover resumes) can retire exactly the one that finished.
    """

    prefix: str
    blocks_sent: int
    resume_of: Optional[int] = None


@dataclass(frozen=True)
class Shutdown:
    """Client is finalizing; server exits after all clients say so."""
