"""Rochdf: server-less individual I/O (§4.2).

Every compute processor writes its own data blocks into its own HDF
file — no communication, no dedicated servers, but one file *per
process per snapshot* and full exposure to filesystem write contention
(the behaviour Table 1 quantifies).

Restart: each process knows which block IDs it needs (its registered
panes) and scans snapshot files starting with its own, so in the
common same-process-count case restart touches exactly one file, and
"Rochdf gains extra I/O parallelism by having all the processors
performing reads" (§7.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..faults.retry import RetryPolicy, retrying
from ..roccom.module import ServiceModule
from ..shdf.codec import TornFileError, encode_dataset
from ..shdf.drivers import HDFDriver, hdf4_driver
from ..shdf.file import SHDFReader, SHDFWriter
from .base import (
    IOStats,
    apply_block,
    block_to_datasets,
    collect_blocks,
    datasets_to_blocks,
)

__all__ = ["RochdfModule", "snapshot_file_path", "list_snapshot_files"]


def snapshot_file_path(prefix: str, writer_index: int) -> str:
    """Individual-mode file name for one writer's part of a snapshot."""
    return f"{prefix}_p{writer_index:05d}.shdf"


def list_snapshot_files(disk, prefix: str) -> List[str]:
    """All per-process files of a snapshot, sorted by writer index."""
    return disk.listdir(prefix + "_p")


class RochdfModule(ServiceModule):
    """The non-threaded individual I/O service."""

    name = "rochdf"

    def __init__(
        self,
        ctx,
        driver: Optional[HDFDriver] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.ctx = ctx
        self.driver = driver if driver is not None else hdf4_driver()
        #: Backoff schedule for transient write faults (EIO, disk-full).
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = IOStats()
        self.com = None
        self._faults = getattr(ctx.machine, "faults", None)

    def _note_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats.retries += 1
        if self.ctx.recorder is not None:
            self.ctx.recorder.record_counter(self.name, "write_retries")
        self.ctx.trace(self.name, f"write fault ({exc}); retry {attempt + 1}")

    # -- module lifecycle ------------------------------------------------
    def load(self, com) -> None:
        self.com = com
        self._register_io_window(com)

    def unload(self, com) -> None:
        self._deregister_io_window(com)
        self.com = None

    # -- uniform I/O interface ------------------------------------------------
    def write_attribute(
        self,
        window_name: str,
        attr_names: Optional[List[str]] = None,
        path: str = "snapshot",
        file_attrs: Optional[Dict[str, Any]] = None,
    ):
        """Generator: write local panes to this process's own file.

        Blocking: returns only when all data reached the filesystem.
        """
        ctx = self.ctx
        t0 = ctx.now
        blocks = collect_blocks(self.com, window_name, attr_names)
        file_path = snapshot_file_path(path, ctx.rank)
        writer = SHDFWriter(
            ctx.env, ctx.fs, file_path, self.driver, node=ctx.node,
            recorder=ctx.recorder, rank=ctx.rank,
        )
        nbytes = yield from self._write_file(
            writer, blocks, dict(file_attrs or {}, writer_rank=ctx.rank)
        )
        self.stats.files_created += 1
        self.stats.snapshots += 1
        self.stats.visible_write_time += ctx.now - t0
        ctx.io_record(
            self.name, "write_attribute", path=file_path, nbytes=nbytes, t_start=t0
        )
        ctx.trace("rochdf", f"wrote {len(blocks)} blocks to {file_path}")

    def _write_file(self, writer: SHDFWriter, blocks, file_attrs) -> int:
        """Generator: open/write/close one snapshot file, retrying faults.

        The VFS raises *before* mutating anything on a write fault, so
        resuming at the dataset that faulted never duplicates data; a
        retried ``open`` simply truncates and starts the file over.
        Returns the payload bytes written (stats are updated in place,
        exactly once per dataset, across however many attempts).

        Without an installed fault injector the VFS can never raise, so
        the plain loop below skips the per-write retry scaffolding — a
        measurable cost at table1 scale (hundreds of thousands of
        dataset writes per run).
        """
        stats = self.stats
        if self._faults is None:
            # Coalesced fast path: every dataset of the snapshot lands
            # through one merged filesystem transfer (the same
            # write-coalescing scheduler the Rocpanda servers use), so
            # a whole file costs one fs.write instead of one per
            # dataset.  T-Rochdf inherits this via its I/O thread.
            nbytes = 0
            records = []
            yield from writer.open(file_attrs=file_attrs)
            for block in blocks:
                for dataset in block_to_datasets(block):
                    records.append(
                        (dataset.name, encode_dataset(dataset), dataset.nbytes)
                    )
                    nbytes += dataset.nbytes
                stats.blocks_written += 1
            yield from writer.write_records(records)
            yield from writer.close()
            stats.bytes_written += nbytes
            return nbytes

        flat = []
        for block in blocks:
            datasets = block_to_datasets(block)
            for j, dataset in enumerate(datasets):
                flat.append((dataset, j == len(datasets) - 1))
        progress = {"i": 0}
        counted = [0]

        def attempt():
            if not writer.is_open and writer.ndatasets == 0:
                yield from writer.open(file_attrs=file_attrs)
            while progress["i"] < len(flat):
                dataset, ends_block = flat[progress["i"]]
                yield from writer.write_dataset(dataset)
                progress["i"] += 1
                self.stats.bytes_written += dataset.nbytes
                counted[0] += dataset.nbytes
                if ends_block:
                    self.stats.blocks_written += 1
            yield from writer.close()

        yield from retrying(
            self.ctx.env, self.retry, attempt, on_retry=self._note_retry
        )
        return counted[0]

    def read_attribute(
        self,
        window_name: str,
        attr_names: Optional[List[str]] = None,
        path: str = "snapshot",
    ):
        """Generator: restore this process's panes from snapshot files.

        Scans the snapshot's files starting at this rank's own index and
        wrapping around, stopping as soon as every wanted block is
        found.  Returns the list of restored block IDs.

        On the no-fault path each file is opened by structural scan and
        its wanted records are pulled through the
        :class:`~repro.fs.coalesce.ReadCoalescer` — one directory pass
        plus a few large sieved reads instead of a per-dataset
        lookup/read loop.  Fault-injected runs keep the per-dataset
        path, whose progress bookkeeping can resume mid-file.
        """
        ctx = self.ctx
        t0 = ctx.now
        nbytes = 0
        window = self.com.window(window_name)
        wanted = set(window.pane_ids())
        # Through the fs's disk, not the machine's: under a burst tier
        # the fs namespace is the union of resident and drained files,
        # so a restart sees snapshots the drain has not finished yet.
        files = list_snapshot_files(ctx.fs.disk, path)
        if not files:
            raise FileNotFoundError(f"no snapshot files with prefix {path!r}")
        restored: List[int] = []
        # Start at our own file (same-process-count restarts hit it
        # immediately); wrap around for the general case.
        start = ctx.rank % len(files)
        order = files[start:] + files[:start]
        for file_path in order:
            if not wanted:
                break
            reader = SHDFReader(
                ctx.env, ctx.fs, file_path, self.driver, node=ctx.node,
                recorder=ctx.recorder, rank=ctx.rank,
            )
            sieved = self._faults is None
            try:
                if sieved:
                    yield from reader.open_scan()
                else:
                    yield from reader.open()
            except TornFileError:
                # A crash left this file without its commit footer; keep
                # scanning.  If the wanted blocks exist nowhere else the
                # KeyError below tells the caller to fall back to the
                # previous good snapshot.
                if ctx.recorder is not None:
                    ctx.recorder.record_counter(self.name, "torn_files_skipped")
                ctx.trace(self.name, f"skipping torn snapshot file {file_path}")
                continue
            names = [
                n
                for n in reader.names()
                if _block_of(n) in wanted and n.startswith(window_name + "/")
            ]
            if attr_names is not None:
                # Partial attribute read: sieve only the requested
                # records instead of reading every dataset of the block
                # and discarding the rest after decode (the PR 6
                # follow-on).  Blocks none of whose records match keep
                # one record so their geometry still restores (the
                # post-decode filter below strips its array, matching
                # the old full-read semantics exactly).
                want_attrs = set(attr_names)
                matched = []
                matched_blocks = set()
                fallback: Dict[int, str] = {}
                for n in names:
                    b = _block_of(n)
                    if n.rsplit("/", 1)[1] in want_attrs:
                        matched.append(n)
                        matched_blocks.add(b)
                    elif b not in fallback:
                        fallback[b] = n
                for b, n in fallback.items():
                    if b not in matched_blocks:
                        matched.append(n)
                names = matched
            if sieved:
                # One directory pass + sieved bulk reads for the whole
                # file's wanted records.
                datasets = yield from reader.read_batch(names)
                for ds in datasets:
                    self.stats.bytes_read += ds.nbytes
                    nbytes += ds.nbytes
            else:
                datasets = []
                for name in names:
                    ds = yield from reader.read_dataset(name)
                    datasets.append(ds)
                    self.stats.bytes_read += ds.nbytes
                    nbytes += ds.nbytes
            yield from reader.close()
            for block in datasets_to_blocks(datasets):
                if attr_names is not None:
                    block.arrays = {
                        k: v for k, v in block.arrays.items() if k in attr_names
                    }
                    block.specs = {
                        k: v for k, v in block.specs.items() if k in attr_names
                    }
                apply_block(self.com, block)
                wanted.discard(block.block_id)
                restored.append(block.block_id)
                self.stats.blocks_read += 1
        if wanted:
            raise KeyError(
                f"blocks {sorted(wanted)} of window {window_name!r} not found "
                f"in snapshot {path!r}"
            )
        self.stats.visible_read_time += ctx.now - t0
        ctx.io_record(
            self.name, "read_attribute", path=path, nbytes=nbytes, t_start=t0
        )
        ctx.trace("rochdf", f"restored {len(restored)} blocks from {path}")
        return sorted(restored)

    def _tier_barrier(self):
        """Generator: wait for a burst tier's write-behind drain, if any.

        Under ``storage_tier="direct"`` the machine's fs has no
        ``drain_barrier`` and this is a pure no-op (no events, no time),
        keeping the seam timing-transparent.
        """
        barrier = getattr(self.ctx.fs, "drain_barrier", None)
        if barrier is not None:
            yield from barrier()

    def sync(self):
        """Generator: make every completed write durable.

        Non-threaded Rochdf writes are blocking, so without a storage
        tier this is a no-op; with a burst tier it waits for the
        write-behind drain (the durability promise ``sync`` makes).
        """
        t0 = self.ctx.now
        yield self.ctx.env.sleep(0)
        yield from self._tier_barrier()
        self.ctx.io_record(self.name, "sync", t_start=t0)


def _block_of(dataset_name: str) -> int:
    try:
        return int(dataset_name.split("/")[1][1:])
    except (IndexError, ValueError):
        return -1
