"""T-Rochdf: multi-threaded individual I/O with background writing (§6.2).

One persistent I/O thread per process handles all output.  A
``write_attribute`` call copies the output data into local buffers (the
only *visible* cost) and returns; the I/O thread writes the buffered
data while the main thread computes.  The main thread buffers all write
requests of the same snapshot, but blocks until the I/O thread has
drained the *previous* snapshot before buffering a new one — exactly
the paper's policy, which bounds buffer memory to one snapshot's worth.

The overlap is transparent: callers keep the simple blocking interface
and may reuse their arrays immediately after the call returns (we
snapshot the arrays with a real copy).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..des import Event, Store
from ..faults.retry import RetryPolicy
from ..fs.vfs import WriteFaultError
from ..shdf.drivers import HDFDriver
from ..shdf.file import SHDFWriter
from ..vthread import VThread
from .base import DataBlock, collect_blocks
from .rochdf import RochdfModule, snapshot_file_path

__all__ = ["TRochdfModule", "BackgroundWriteError"]

_SHUTDOWN = object()


class BackgroundWriteError(RuntimeError):
    """Unrecoverable write faults hit by the background I/O thread.

    The thread itself must not die silently (the main thread would wait
    on ``sync`` forever believing its data safe); instead it completes
    the job's ``done`` event and parks the failure here, and the *next*
    ``sync`` (or snapshot boundary, or unload) raises this on the main
    thread.  The partial file carries no commit footer, so restart
    readers detect it as torn.
    """


class _WriteJob:
    """One buffered write_attribute call, to be executed by the I/O thread."""

    __slots__ = ("path", "snapshot_id", "blocks", "file_attrs", "done")

    def __init__(self, path, snapshot_id, blocks, file_attrs, done):
        self.path = path
        self.snapshot_id = snapshot_id
        self.blocks = blocks
        self.file_attrs = file_attrs
        self.done = done


class TRochdfModule(RochdfModule):
    """Threaded Rochdf: same interface, overlapped writes.

    Restart (``read_attribute``) is inherited unchanged from Rochdf:
    "Since no computation can be overlapped with restart operations,
    T-Rochdf performs restart in the same way as Rochdf does" (§7.1).
    """

    name = "trochdf"

    def __init__(
        self,
        ctx,
        driver: Optional[HDFDriver] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        super().__init__(ctx, driver, retry)
        self._queue: Store = Store(ctx.env)
        self._pending: List[Event] = []
        self._current_snapshot: Optional[Any] = None
        self._thread: Optional[VThread] = None
        #: (file_path, exception) pairs from failed background writes,
        #: surfaced to the main thread by :meth:`_raise_io_errors`.
        self._io_errors: List[tuple] = []

    # -- module lifecycle ----------------------------------------------------
    def load(self, com) -> None:
        if self._thread is not None and self._thread.alive:
            raise RuntimeError(
                "trochdf reloaded while its previous I/O thread is still "
                "running; drive unload with 'yield from com.unload_module(...)'"
            )
        super().load(com)
        # The single persistent I/O thread (reduces thread switching
        # overhead and serializes competing write requests, §6.2).
        self._thread = VThread(
            self.ctx.env, self._io_thread_main(), name=f"trochdf-io-r{self.ctx.rank}"
        )

    def unload(self, com):
        """Generator: drain buffered snapshots, join the I/O thread, tear down.

        Unload must not lose buffered data: every pending write is
        waited for and the thread is joined before the window goes
        away, so a reload can never race a still-writing thread.
        Drive with ``yield from com.unload_module("trochdf")``.
        """
        thread = self._thread
        if thread is not None and thread.alive:
            self._queue.put(_SHUTDOWN)
            yield from self._drain(raise_errors=False)
            yield from thread.join()
        self._thread = None
        super().unload(com)
        self._raise_io_errors()

    # -- uniform I/O interface ---------------------------------------------------
    def write_attribute(
        self,
        window_name: str,
        attr_names: Optional[List[str]] = None,
        path: str = "snapshot",
        file_attrs: Optional[Dict[str, Any]] = None,
        snapshot_id: Optional[Any] = None,
    ):
        """Generator: buffer locally and return; I/O happens in background.

        ``snapshot_id`` groups back-to-back calls belonging to one
        snapshot (defaults to ``path``); a call with a *new* snapshot id
        first waits for the previous snapshot's writes to finish.
        """
        ctx = self.ctx
        t0 = ctx.now
        sid = snapshot_id if snapshot_id is not None else path
        if self._current_snapshot is not None and sid != self._current_snapshot:
            # New snapshot: block until the previous one is on disk.
            yield from self._drain()
        self._current_snapshot = sid

        blocks = collect_blocks(self.com, window_name, attr_names)
        # Copy into the shared buffers: the caller may immediately
        # overwrite its arrays.  This memcpy is the visible cost.
        total = 0
        buffered = []
        for block in blocks:
            arrays = {k: v.copy() for k, v in block.arrays.items()}
            total += block.nbytes
            buffered.append(
                DataBlock(
                    window=block.window,
                    block_id=block.block_id,
                    nnodes=block.nnodes,
                    nelems=block.nelems,
                    arrays=arrays,
                    specs=dict(block.specs),
                )
            )
        yield from ctx.memcpy(total)

        done = Event(ctx.env)
        self._pending.append(done)
        self._queue.put(
            _WriteJob(path, sid, buffered, dict(file_attrs or {}), done)
        )
        self.stats.snapshots += 1
        self.stats.visible_write_time += ctx.now - t0
        ctx.io_record(
            self.name, "write_attribute", path=path, nbytes=total, t_start=t0
        )
        ctx.trace("trochdf", f"buffered {len(blocks)} blocks ({total} B) for {path}")

    def sync(self):
        """Generator: wait until all buffered snapshots are on disk (§5)."""
        t0 = self.ctx.now
        yield from self._drain()
        yield from self._tier_barrier()
        self.stats.sync_time += self.ctx.now - t0
        self.ctx.io_record(self.name, "sync", t_start=t0)

    def read_attribute(
        self,
        window_name: str,
        attr_names: Optional[List[str]] = None,
        path: str = "snapshot",
    ):
        """Generator: restore panes, attr-sieved exactly like Rochdf.

        T-Rochdf performs restart the same way Rochdf does (§7.1) —
        including the ``attr_names`` partial-read sieve — but must first
        wait out its own buffered snapshots so a read-after-write of the
        same prefix never observes a half-written file.
        """
        if self._pending:
            yield from self._drain()
        result = yield from super().read_attribute(window_name, attr_names, path)
        return result

    # -- internals ---------------------------------------------------------------
    def _drain(self, raise_errors: bool = True):
        pending, self._pending = self._pending, []
        for done in pending:
            yield done
        self._current_snapshot = None
        if raise_errors:
            self._raise_io_errors()

    def _raise_io_errors(self) -> None:
        if not self._io_errors:
            return
        errors, self._io_errors = self._io_errors, []
        raise BackgroundWriteError(
            "background I/O thread hit unrecoverable write faults: "
            + "; ".join(f"{path}: {exc}" for path, exc in errors)
        )

    def _io_thread_main(self):
        """The persistent background writer loop."""
        ctx = self.ctx
        while True:
            job = yield self._queue.get()
            if job is _SHUTDOWN:
                return
            t0 = ctx.now
            file_path = snapshot_file_path(job.path, ctx.rank)
            writer = SHDFWriter(
                ctx.env, ctx.fs, file_path, self.driver, node=ctx.node,
                recorder=ctx.recorder, rank=ctx.rank, visible=False,
            )
            try:
                nbytes = yield from self._write_file(
                    writer, job.blocks, dict(job.file_attrs, writer_rank=ctx.rank)
                )
            except WriteFaultError as exc:
                # Report to the main thread at its next sync; don't die.
                self._io_errors.append((file_path, exc))
                if ctx.recorder is not None:
                    ctx.recorder.record_counter(self.name, "background_write_failures")
                ctx.trace("trochdf", f"background write of {file_path} FAILED: {exc}")
                job.done.succeed()
                continue
            self.stats.files_created += 1
            job.done.succeed()
            ctx.io_record(
                self.name, "bg_write", path=file_path, nbytes=nbytes,
                t_start=t0, visible=False,
            )
            ctx.trace("trochdf", f"background write of {file_path} complete")
