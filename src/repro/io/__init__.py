"""Parallel I/O services: Rocpanda (collective), Rochdf, and T-Rochdf.

All three register the same uniform Roccom interface
(``write_attribute`` / ``read_attribute`` / ``sync``), so simulation
code switches architectures by loading a different module (§5).
"""

from .base import (
    DataBlock,
    IOStats,
    apply_block,
    block_to_datasets,
    collect_blocks,
    dataset_name,
    datasets_to_blocks,
    parse_dataset_name,
)
from .rochdf import RochdfModule, list_snapshot_files, snapshot_file_path
from .rocpanda import (
    PandaServer,
    ProtocolError,
    RocpandaModule,
    ServerConfig,
    ServerStats,
    Topology,
    rocpanda_init,
    server_file_path,
    server_ranks,
)
from .trochdf import BackgroundWriteError, TRochdfModule

__all__ = [
    "BackgroundWriteError",
    "DataBlock",
    "IOStats",
    "collect_blocks",
    "apply_block",
    "block_to_datasets",
    "datasets_to_blocks",
    "dataset_name",
    "parse_dataset_name",
    "RochdfModule",
    "TRochdfModule",
    "snapshot_file_path",
    "list_snapshot_files",
    "RocpandaModule",
    "PandaServer",
    "ProtocolError",
    "ServerConfig",
    "ServerStats",
    "Topology",
    "rocpanda_init",
    "server_ranks",
    "server_file_path",
]
