"""Machine assembly: nodes + network + filesystem + noise, per run.

A :class:`MachineSpec` is pure data (what the hardware looks like); a
:class:`Machine` is one *run instance*: it owns a fresh DES environment
and samples per-run randomness (external load on shared nodes).  The
virtual disk may be shared between machines so one run can restart from
files written by a previous run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..des import Environment
from ..fs.models import FileSystemModel
from ..fs.vfs import VirtualDisk
from ..util.units import GB
from .network import Network, NetworkSpec
from .node import Node
from .noise import ExternalLoad, NoExternalLoad, NoiseModel, NoNoise

__all__ = ["MachineSpec", "Machine"]


@dataclass
class MachineSpec:
    """Static description of a platform."""

    name: str
    nnodes: int
    cpus_per_node: int
    mem_per_node: float = 1 * GB
    #: Relative per-CPU compute speed (1.0 = the reference CPU).
    cpu_speed: float = 1.0
    #: Node memory-copy bandwidth (bytes/s): the cost of buffering data
    #: locally (T-Rochdf's visible cost, Rocpanda server ingest copy).
    memcpy_bw: float = 300 * 1024 * 1024
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: Builds the filesystem model: ``fs_factory(env, disk)``.
    fs_factory: Callable[[Environment, VirtualDisk], FileSystemModel] = None
    noise: NoiseModel = field(default_factory=NoNoise)
    external_load: ExternalLoad = field(default_factory=NoExternalLoad)

    def total_cpus(self) -> int:
        return self.nnodes * self.cpus_per_node


class Machine:
    """One run instance of a platform."""

    def __init__(
        self,
        spec: MachineSpec,
        seed: int = 0,
        disk: Optional[VirtualDisk] = None,
    ):
        if spec.fs_factory is None:
            raise ValueError("MachineSpec.fs_factory must be set")
        self.spec = spec
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.env = Environment()
        self.nodes: List[Node] = [
            Node(i, spec.cpus_per_node, spec.mem_per_node, spec.cpu_speed)
            for i in range(spec.nnodes)
        ]
        spec.external_load.apply(self.nodes, self.rng)
        self.disk = disk if disk is not None else VirtualDisk()
        self.fs: FileSystemModel = spec.fs_factory(self.env, self.disk)
        self.noise: NoiseModel = spec.noise
        self._network: Optional[Network] = None
        #: Armed fault injector (:meth:`install_faults`), or ``None``.
        self.faults = None

    def install_faults(self, plan):
        """Arm a :class:`repro.faults.FaultPlan` on this run.

        Returns the live :class:`repro.faults.FaultInjector`; jobs
        launched on this machine pick it up automatically.
        """
        from ..faults.injector import FaultInjector

        if self.faults is not None:
            raise RuntimeError("faults already installed on this machine")
        self.faults = FaultInjector(self, plan)
        self.faults.install()
        return self.faults

    def build_network(self, nprocs: int) -> Network:
        """Instantiate the network for a job of ``nprocs`` processes."""
        self._network = Network(self.env, self.spec.network, self.nodes, nprocs)
        return self._network

    @property
    def network(self) -> Network:
        if self._network is None:
            raise RuntimeError("network not built yet; launch a job first")
        return self._network

    def compute_time(self, node: Node, nominal: float) -> float:
        """Wall time for ``nominal`` seconds of compute on ``node``.

        Applies CPU speed, external load (shared nodes), and OS noise.
        """
        if nominal < 0:
            raise ValueError("negative compute time")
        base = nominal / node.cpu_speed * node.external_load
        return base + self.noise.compute_penalty(node, base, self.rng)

    def __repr__(self) -> str:
        return (
            f"<Machine {self.spec.name!r}: {self.spec.nnodes} nodes x "
            f"{self.spec.cpus_per_node} cpus, seed={self.seed}>"
        )
