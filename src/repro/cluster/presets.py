"""Machine presets: the paper's two platforms plus a small test box.

All constants here are *calibration parameters*, chosen so the shapes
of Table 1 and Figures 3(a)/3(b) come out right; they are not claimed
to be exact hardware specifications.  EXPERIMENTS.md records the
paper-vs-measured comparison produced with these values.
"""

from __future__ import annotations

from ..fs.models import GPFSModel, LocalFSModel, NFSModel
from ..util.units import GB, MB, USEC
from .machine import MachineSpec
from .network import NetworkSpec
from .noise import ExternalLoad, NoExternalLoad, NoNoise, OSNoise

__all__ = ["turing", "frost", "testbox"]


def turing(
    write_bw: float = 55 * MB,
    read_bw: float = 20 * MB,
    read_slots: int = 8,
    write_penalty: float = 0.22,
    max_penalty_factor: float = 3.2,
    shared_nodes: bool = True,
    nnodes: int = 208,
) -> MachineSpec:
    """GENx's development platform (§7.1).

    208 nodes x 2 x 1 GHz Pentium III, 1 GB/node, Myrinet, shared
    filesystem on a single NFS server.  Nodes are shared with other
    users' interactive jobs (no scheduler), so runs see random external
    load; the paper reports best-of-five, and so does our harness.

    The message-passing layer "does not scale well" on Turing (§7.1):
    per-message latency grows with job size (``scale_alpha``).

    ``nnodes`` scales the cluster beyond the historical 208 nodes for
    what-if runs past 416 ranks (the scaling bench's 512/1024-client
    points); everything else — per-node CPUs, network, the single NFS
    server — keeps the Turing calibration.
    """
    return MachineSpec(
        name="turing",
        nnodes=nnodes,
        cpus_per_node=2,
        mem_per_node=1 * GB,
        cpu_speed=1.0,
        memcpy_bw=65 * MB,
        network=NetworkSpec(
            latency=65 * USEC,
            inter_bw=110 * MB,
            intra_bw=280 * MB,
            sw_overhead=18 * USEC,
            nic_streams=1,
            scale_alpha=0.012,
            eager_threshold=16 * 1024,
        ),
        fs_factory=lambda env, disk: NFSModel(
            env,
            disk,
            write_bw=write_bw,
            read_bw=read_bw,
            read_slots=read_slots,
            write_penalty=write_penalty,
            max_penalty_factor=max_penalty_factor,
        ),
        noise=NoNoise(),
        external_load=ExternalLoad(mean_extra=0.15, sigma=0.5, p_loaded=0.35)
        if shared_nodes
        else NoExternalLoad(),
    )


def frost(
    noise_duty: float = 0.12,
    server_bw: float = 60 * MB,
) -> MachineSpec:
    """GENx's production platform, ASCI Frost (§7.2).

    63 x 16-way POWER3 375 MHz SMP nodes, 16 GB/node, SP Switch2,
    GPFS through two server nodes.  Nodes are dedicated (batch
    scheduled), but AIX background activity ("operating system related
    tasks", §4.1) provides per-node OS noise; with per-timestep
    synchronization this noise is amplified with scale — the mechanism
    behind Figure 3(b).
    """
    return MachineSpec(
        name="frost",
        nnodes=63,
        cpus_per_node=16,
        mem_per_node=16 * GB,
        cpu_speed=1.0,
        memcpy_bw=350 * MB,
        network=NetworkSpec(
            latency=22 * USEC,
            inter_bw=330 * MB,
            intra_bw=900 * MB,
            sw_overhead=8 * USEC,
            nic_streams=2,
            scale_alpha=0.0,
            eager_threshold=16 * 1024,
        ),
        fs_factory=lambda env, disk: GPFSModel(
            env,
            disk,
            nservers=2,
            server_bw=server_bw,
            slots_per_server=1,
        ),
        noise=OSNoise(duty=noise_duty, leak=0.001, gamma_shape=0.5),
        external_load=NoExternalLoad(),
    )


def testbox(nnodes: int = 4, cpus_per_node: int = 4) -> MachineSpec:
    """A small quiet machine with a local disk model, for unit tests."""
    return MachineSpec(
        name="testbox",
        nnodes=nnodes,
        cpus_per_node=cpus_per_node,
        mem_per_node=4 * GB,
        cpu_speed=1.0,
        network=NetworkSpec(),
        fs_factory=lambda env, disk: LocalFSModel(env, disk),
        noise=NoNoise(),
        external_load=NoExternalLoad(),
    )
