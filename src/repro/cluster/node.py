"""Compute nodes and CPUs.

A :class:`Node` owns a fixed set of :class:`CPU` slots.  The SPMD
launcher assigns each MPI rank to one CPU ("occupies" it); dedicated
I/O server ranks mark their CPU with role ``"server"``, which matters
for the OS-noise model (a server CPU is mostly idle — blocked in probe
— and therefore absorbs operating-system background work, the effect
the paper observes on Frost in §4.1 / Fig 3(b)).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["CPU", "Node"]

#: CPU roles.
ROLE_FREE = "free"
ROLE_COMPUTE = "compute"
ROLE_SERVER = "server"


class CPU:
    """One processor slot on a node."""

    def __init__(self, node: "Node", index: int):
        self.node = node
        self.index = index
        self.role: str = ROLE_FREE
        #: Global rank occupying this CPU, if any.
        self.rank: Optional[int] = None
        #: Fraction of time a server CPU is busy with its own work
        #: (receiving/writing); the rest absorbs OS noise.  Maintained
        #: by the noise model / server library.
        self.server_busy_fraction: float = 0.15

    @property
    def occupied(self) -> bool:
        return self.role != ROLE_FREE

    def assign(self, rank: int, role: str) -> None:
        if self.occupied:
            raise RuntimeError(
                f"CPU {self.node.index}.{self.index} already occupied by rank {self.rank}"
            )
        if role not in (ROLE_COMPUTE, ROLE_SERVER):
            raise ValueError(f"bad role {role!r}")
        self.role = role
        self.rank = rank

    def __repr__(self) -> str:
        return f"<CPU n{self.node.index}c{self.index} {self.role} rank={self.rank}>"


class Node:
    """An SMP node: ``ncpus`` CPUs sharing memory and one NIC."""

    def __init__(self, index: int, ncpus: int, mem_bytes: float, cpu_speed: float = 1.0):
        if ncpus <= 0:
            raise ValueError("ncpus must be > 0")
        self.index = index
        self.cpus: List[CPU] = [CPU(self, i) for i in range(ncpus)]
        self.mem_bytes = mem_bytes
        #: Relative compute speed multiplier (1.0 = nominal).
        self.cpu_speed = cpu_speed
        #: Per-run external slowdown factor (shared Turing nodes); set
        #: by the machine's interference model, 1.0 = dedicated node.
        self.external_load = 1.0

    @property
    def ncpus(self) -> int:
        return len(self.cpus)

    def free_cpus(self) -> List[CPU]:
        return [c for c in self.cpus if not c.occupied]

    def compute_cpus(self) -> List[CPU]:
        return [c for c in self.cpus if c.role == ROLE_COMPUTE]

    def server_cpus(self) -> List[CPU]:
        return [c for c in self.cpus if c.role == ROLE_SERVER]

    def noise_absorbing_capacity(self) -> float:
        """How much background OS work this node can hide from compute.

        Each fully idle CPU absorbs 1.0 CPU's worth; each server CPU
        absorbs its idle fraction.  (§4.1: "many operating system
        related tasks go to the server processor automatically, where
        the CPU is mostly idle".)
        """
        cap = float(len(self.free_cpus()))
        for cpu in self.server_cpus():
            cap += 1.0 - cpu.server_busy_fraction
        return cap

    def __repr__(self) -> str:
        return f"<Node {self.index}: {self.ncpus} cpus>"
