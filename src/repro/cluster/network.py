"""Interconnect model.

Messages between two CPUs cost::

    software_overhead + latency * scale_factor(nprocs) + nbytes / bw

where ``bw`` is the intra-node memory-bus bandwidth when both endpoints
share a node (the effect behind the 1→15-client throughput rise in
Fig 3(a)) and the link bandwidth otherwise.  Each node's NIC admits a
bounded number of concurrent incoming transfers; additional transfers
queue — this produces the contention seen when many clients target one
I/O server.

``scale_factor`` models the paper's observation that Turing's message
passing layer "does not scale well" (§7.1): per-message cost grows with
the job size.  On Frost it is 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..des import Environment, Event, Resource
from ..util.units import MB, USEC
from .node import Node

__all__ = ["NetworkSpec", "Network"]


@dataclass(frozen=True)
class NetworkSpec:
    """Static parameters of an interconnect."""

    #: One-way small-message latency (seconds).
    latency: float = 60 * USEC
    #: Inter-node point-to-point bandwidth (bytes/s).
    inter_bw: float = 120 * MB
    #: Intra-node (shared-memory) bandwidth (bytes/s).
    intra_bw: float = 350 * MB
    #: CPU-side software overhead charged at each endpoint per message.
    sw_overhead: float = 15 * USEC
    #: Max concurrent incoming transfers a NIC serves; more queue up.
    nic_streams: int = 1
    #: Per-message latency growth per process in the job: the effective
    #: latency is ``latency * (1 + scale_alpha * nprocs)``.
    scale_alpha: float = 0.0
    #: Messages up to this size use the eager protocol (no handshake).
    eager_threshold: int = 16 * 1024


class Network:
    """Runtime network instance bound to a DES environment."""

    def __init__(self, env: Environment, spec: NetworkSpec, nodes: List[Node], nprocs: int):
        self.env = env
        self.spec = spec
        self.nodes = nodes
        self.nprocs = nprocs
        self._nics: Dict[int, Resource] = {
            node.index: Resource(env, capacity=spec.nic_streams) for node in nodes
        }
        #: Total payload bytes moved (diagnostics).
        self.bytes_transferred = 0
        self.messages = 0
        #: Optional fault filter installed by the fault injector:
        #: ``filter(src_rank, dst_rank, tag, nbytes)`` returns ``None``
        #: (deliver normally) or ``(kind, extra_delay)`` with ``kind``
        #: in ``{"drop", "duplicate", "delay"}``.  Consulted by
        #: ``Comm.send``; ``None`` (the default) costs one attribute
        #: check on the no-fault path.
        self.fault_filter = None

    # -- cost helpers ---------------------------------------------------
    def effective_latency(self) -> float:
        return self.spec.latency * (1.0 + self.spec.scale_alpha * self.nprocs)

    def bandwidth(self, src: Node, dst: Node) -> float:
        return self.spec.intra_bw if src.index == dst.index else self.spec.inter_bw

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.spec.eager_threshold

    def fault_decision(self, src_rank: int, dst_rank: int, tag: int, nbytes: int):
        """Consult the installed fault filter for one message, if any."""
        if self.fault_filter is None:
            return None
        return self.fault_filter(src_rank, dst_rank, tag, nbytes)

    def transfer_time(self, src: Node, dst: Node, nbytes: int) -> float:
        """Pure wire time, excluding NIC queueing and endpoint overhead."""
        return self.effective_latency() + nbytes / self.bandwidth(src, dst)

    # -- operations -----------------------------------------------------
    def transfer(self, src: Node, dst: Node, nbytes: int):
        """Generator: move ``nbytes`` from ``src`` to ``dst``.

        Intra-node transfers bypass the NIC (memory copy); inter-node
        transfers hold one of the destination NIC's stream slots for
        the duration, so concurrent senders to one node queue up.
        External load on either node (shared Turing nodes) slows the
        transfer proportionally.
        """
        load = max(src.external_load, dst.external_load)
        duration = self.transfer_time(src, dst, nbytes) * load
        self.messages += 1
        self.bytes_transferred += nbytes
        if src.index == dst.index:
            yield self.env.timeout(duration)
            return
        nic = self._nics[dst.index]
        req = nic.request()
        yield req
        try:
            yield self.env.timeout(duration)
        finally:
            nic.release(req)

    def schedule_transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: int,
        callback: Callable[[], None],
        extra_delay: float = 0.0,
    ) -> None:
        """Fire-and-forget :meth:`transfer`: ``callback()`` runs when the
        payload lands.

        Virtual timing (including NIC queueing) is identical to
        ``transfer``; the difference is purely mechanical — the flight is
        chained through event callbacks instead of occupying a dedicated
        generator process, which matters because one of these runs per
        eager message.  ``extra_delay`` adds injected flight time
        (message-delay faults).
        """
        load = max(src.external_load, dst.external_load)
        duration = self.transfer_time(src, dst, nbytes) * load + extra_delay
        self.messages += 1
        self.bytes_transferred += nbytes
        env = self.env

        def _fly(_event) -> None:
            done = Event(env)
            done._ok = True
            done._value = None
            done.callbacks.append(_land)
            env.schedule(done, delay=duration)

        if src.index == dst.index:
            def _land(_event) -> None:
                callback()

            _fly(None)
            return
        nic = self._nics[dst.index]
        req = nic.request()

        def _land(_event) -> None:
            nic.release(req)
            callback()

        req.callbacks.append(_fly)

    def control_message(self, src: Node, dst: Node):
        """Generator: a zero-payload control message (handshake leg).

        Control messages do not occupy NIC stream slots.
        """
        load = max(src.external_load, dst.external_load)
        yield self.env.timeout(self.effective_latency() * load)
