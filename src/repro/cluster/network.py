"""Interconnect model.

Messages between two CPUs cost::

    software_overhead + latency * scale_factor(nprocs) + nbytes / bw

where ``bw`` is the intra-node memory-bus bandwidth when both endpoints
share a node (the effect behind the 1→15-client throughput rise in
Fig 3(a)) and the link bandwidth otherwise.  Each node's NIC admits a
bounded number of concurrent incoming transfers; additional transfers
queue — this produces the contention seen when many clients target one
I/O server.

``scale_factor`` models the paper's observation that Turing's message
passing layer "does not scale well" (§7.1): per-message cost grows with
the job size.  On Frost it is 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..des import Environment, Resource
from ..util.units import MB, USEC
from .node import Node

__all__ = ["NetworkSpec", "Network"]


def _invoke(cb) -> None:
    # Module-level landing trampoline for intra-node flights: lets
    # schedule_transfer hand the user callback straight to the DES
    # bulk-delivery path without allocating a closure per message.
    cb()


def _land_nic(args) -> None:
    # Landing trampoline for inter-node flights: free the NIC stream
    # slot, then deliver.
    nic, req, cb = args
    nic.release(req)
    cb()


def _deliver(args) -> None:
    # Landing trampoline for intra-node mailbox deliveries.
    mailbox, envelope = args
    mailbox.deliver(envelope)


def _land_nic_deliver(args) -> None:
    # Landing trampoline for inter-node mailbox deliveries.
    nic, req, mailbox, envelope = args
    nic.release(req)
    mailbox.deliver(envelope)


@dataclass(frozen=True)
class NetworkSpec:
    """Static parameters of an interconnect."""

    #: One-way small-message latency (seconds).
    latency: float = 60 * USEC
    #: Inter-node point-to-point bandwidth (bytes/s).
    inter_bw: float = 120 * MB
    #: Intra-node (shared-memory) bandwidth (bytes/s).
    intra_bw: float = 350 * MB
    #: CPU-side software overhead charged at each endpoint per message.
    sw_overhead: float = 15 * USEC
    #: Max concurrent incoming transfers a NIC serves; more queue up.
    nic_streams: int = 1
    #: Per-message latency growth per process in the job: the effective
    #: latency is ``latency * (1 + scale_alpha * nprocs)``.
    scale_alpha: float = 0.0
    #: Messages up to this size use the eager protocol (no handshake).
    eager_threshold: int = 16 * 1024


class Network:
    """Runtime network instance bound to a DES environment."""

    def __init__(self, env: Environment, spec: NetworkSpec, nodes: List[Node], nprocs: int):
        self.env = env
        self.spec = spec
        self.nodes = nodes
        self.nprocs = nprocs
        self._nics: Dict[int, Resource] = {
            node.index: Resource(env, capacity=spec.nic_streams) for node in nodes
        }
        # spec and nprocs are fixed for the lifetime of the instance, so
        # the latency scale factor and per-(locality, size) wire times
        # are interned once instead of recomputed per message.  The
        # memo is capped: block payloads cluster into a few dozen size
        # classes, but a pathological workload with unique sizes must
        # not grow it without bound.
        self._eff_latency = spec.latency * (1.0 + spec.scale_alpha * nprocs)
        self._tt_memo: Dict[tuple, float] = {}
        #: Total payload bytes moved (diagnostics).
        self.bytes_transferred = 0
        self.messages = 0
        #: Optional fault filter installed by the fault injector:
        #: ``filter(src_rank, dst_rank, tag, nbytes)`` returns ``None``
        #: (deliver normally) or ``(kind, extra_delay)`` with ``kind``
        #: in ``{"drop", "duplicate", "delay"}``.  Consulted by
        #: ``Comm.send``; ``None`` (the default) costs one attribute
        #: check on the no-fault path.
        self.fault_filter = None

    # -- cost helpers ---------------------------------------------------
    def effective_latency(self) -> float:
        return self._eff_latency

    def bandwidth(self, src: Node, dst: Node) -> float:
        return self.spec.intra_bw if src.index == dst.index else self.spec.inter_bw

    def is_eager(self, nbytes: int) -> bool:
        return nbytes <= self.spec.eager_threshold

    def fault_decision(self, src_rank: int, dst_rank: int, tag: int, nbytes: int):
        """Consult the installed fault filter for one message, if any."""
        if self.fault_filter is None:
            return None
        return self.fault_filter(src_rank, dst_rank, tag, nbytes)

    def transfer_time(self, src: Node, dst: Node, nbytes: int) -> float:
        """Pure wire time, excluding NIC queueing and endpoint overhead.

        Memoized per (locality, size) class — ``latency + nbytes / bw``
        evaluated once per distinct message size, with the division
        kept (not turned into a multiply by a reciprocal) so memoized
        and cold results are bit-identical.
        """
        memo = self._tt_memo
        same = src.index == dst.index
        key = (same, nbytes)
        t = memo.get(key)
        if t is None:
            bw = self.spec.intra_bw if same else self.spec.inter_bw
            t = self._eff_latency + nbytes / bw
            if len(memo) < 65536:
                memo[key] = t
        return t

    # -- operations -----------------------------------------------------
    def transfer(self, src: Node, dst: Node, nbytes: int):
        """Generator: move ``nbytes`` from ``src`` to ``dst``.

        Intra-node transfers bypass the NIC (memory copy); inter-node
        transfers hold one of the destination NIC's stream slots for
        the duration, so concurrent senders to one node queue up.
        External load on either node (shared Turing nodes) slows the
        transfer proportionally.
        """
        load = max(src.external_load, dst.external_load)
        duration = self.transfer_time(src, dst, nbytes) * load
        self.messages += 1
        self.bytes_transferred += nbytes
        if src.index == dst.index:
            yield self.env.sleep(duration)
            return
        nic = self._nics[dst.index]
        req = nic.request()
        yield req
        try:
            yield self.env.sleep(duration)
        finally:
            nic.release(req)

    def schedule_transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: int,
        callback: Callable[[], None],
        extra_delay: float = 0.0,
    ) -> None:
        """Fire-and-forget :meth:`transfer`: ``callback()`` runs when the
        payload lands.

        Virtual timing (including NIC queueing) is identical to
        ``transfer``; the difference is purely mechanical — the flight
        rides the DES bulk-delivery path
        (:meth:`~repro.des.Environment.schedule_callback`) instead of
        occupying a dedicated generator process or even a dedicated
        completion Event, which matters because one of these runs per
        eager message, and co-landing flights (a tree-collective level,
        a coalesced scatter) fuse into a single vectorized dispatch.
        ``extra_delay`` adds injected flight time (message-delay
        faults).
        """
        load = max(src.external_load, dst.external_load)
        duration = self.transfer_time(src, dst, nbytes) * load + extra_delay
        self.messages += 1
        self.bytes_transferred += nbytes
        env = self.env
        if src.index == dst.index:
            env.schedule_callback(_invoke, callback, delay=duration)
            return
        nic = self._nics[dst.index]
        req = nic.request()

        def _fly(_event) -> None:
            env.schedule_callback(_land_nic, (nic, req, callback), delay=duration)

        req.callbacks.append(_fly)

    def schedule_delivery(
        self,
        src: Node,
        dst: Node,
        nbytes: int,
        mailbox,
        envelope,
        extra_delay: float = 0.0,
    ) -> None:
        """:meth:`schedule_transfer` specialized to a mailbox delivery.

        The flight schedule is identical; the only difference is that
        the landing action is ``mailbox.deliver(envelope)`` expressed
        as data instead of a per-message closure — the dominant eager
        path (one of these per point-to-point message) allocates no
        callable at all.
        """
        load = max(src.external_load, dst.external_load)
        duration = self.transfer_time(src, dst, nbytes) * load + extra_delay
        self.messages += 1
        self.bytes_transferred += nbytes
        env = self.env
        if src.index == dst.index:
            env.schedule_callback(_deliver, (mailbox, envelope), delay=duration)
            return
        nic = self._nics[dst.index]
        req = nic.request()

        def _fly(_event) -> None:
            env.schedule_callback(
                _land_nic_deliver, (nic, req, mailbox, envelope), delay=duration
            )

        req.callbacks.append(_fly)

    def control_message(self, src: Node, dst: Node):
        """Generator: a zero-payload control message (handshake leg).

        Control messages do not occupy NIC stream slots.
        """
        load = max(src.external_load, dst.external_load)
        yield self.env.sleep(self._eff_latency * load)
