"""Cluster hardware models: nodes, network, noise, machine presets."""

from .machine import Machine, MachineSpec
from .network import Network, NetworkSpec
from .node import CPU, Node
from .noise import ExternalLoad, NoExternalLoad, NoiseModel, NoNoise, OSNoise
from .presets import frost, testbox, turing

__all__ = [
    "CPU",
    "Node",
    "Network",
    "NetworkSpec",
    "Machine",
    "MachineSpec",
    "NoiseModel",
    "NoNoise",
    "OSNoise",
    "ExternalLoad",
    "NoExternalLoad",
    "turing",
    "frost",
    "testbox",
]
