"""Operating-system noise and external-load interference models.

Two distinct phenomena from the paper:

* **OS noise (Frost, Fig 3(b))** — AIX daemons and kernel tasks consume
  a small fraction of a node's CPU time.  If the node has an idle CPU
  (the "15NS" configuration) or a mostly-idle I/O server CPU ("15S"),
  the noise runs there and compute is barely affected.  If all 16 CPUs
  run compute ranks ("16NS"), the noise preempts compute work, and
  because ranks synchronize every timestep the *slowest* rank sets the
  pace — so the expected penalty grows with the number of nodes
  (classic noise amplification).

* **External load (Turing, §7.1)** — Turing has no job scheduler and
  nodes are shared with other users' jobs; run-to-run variance is large
  and the paper reports best-of-five.  We model a per-node slowdown
  factor drawn per run.
"""

from __future__ import annotations

import numpy as np

from .node import Node

__all__ = ["NoiseModel", "NoNoise", "OSNoise", "ExternalLoad", "NoExternalLoad"]


class NoiseModel:
    """Interface: extra time added to a compute burst on a given CPU."""

    def compute_penalty(self, node: Node, duration: float, rng: np.random.Generator) -> float:
        raise NotImplementedError


class NoNoise(NoiseModel):
    """Perfectly quiet machine."""

    def compute_penalty(self, node: Node, duration: float, rng: np.random.Generator) -> float:
        return 0.0


class OSNoise(NoiseModel):
    """Background OS work of ``duty`` CPUs-worth per node.

    For a compute burst of length ``d`` on a node whose absorbing
    capacity (idle + mostly-idle server CPUs) is ``a``:

    * unabsorbed duty ``u = max(0, duty - a * absorb_efficiency)`` is
      spread over the node's compute CPUs, hitting each burst with a
      random (Gamma-distributed, mean ``u/ncompute``) share — the
      randomness is what makes the max-over-ranks grow with scale;
    * even fully absorbed noise leaves a small residual ``leak`` on
      compute CPUs (cache pollution, interrupts).
    """

    def __init__(
        self,
        duty: float = 0.045,
        leak: float = 0.002,
        gamma_shape: float = 0.6,
    ):
        if not 0 <= duty < 1:
            raise ValueError("duty must be in [0, 1)")
        self.duty = duty
        self.leak = leak
        self.gamma_shape = gamma_shape

    def compute_penalty(self, node: Node, duration: float, rng: np.random.Generator) -> float:
        ncompute = max(1, len(node.compute_cpus()))
        absorbed = min(self.duty, node.noise_absorbing_capacity())
        unabsorbed = self.duty - absorbed
        mean_share = (unabsorbed / ncompute + self.leak) * duration
        if mean_share <= 0:
            return 0.0
        # Gamma with mean `mean_share`: shape k, scale mean/k.
        return float(rng.gamma(self.gamma_shape, mean_share / self.gamma_shape))


class ExternalLoad:
    """Per-run node slowdown from other users' jobs (shared nodes)."""

    def __init__(self, mean_extra: float = 0.35, sigma: float = 0.6, p_loaded: float = 0.55):
        self.mean_extra = mean_extra
        self.sigma = sigma
        self.p_loaded = p_loaded

    def sample_factor(self, rng: np.random.Generator) -> float:
        """Multiplicative slowdown for one node in one run (>= 1)."""
        if rng.random() >= self.p_loaded:
            return 1.0
        extra = rng.lognormal(mean=np.log(self.mean_extra), sigma=self.sigma)
        return 1.0 + float(extra)

    def apply(self, nodes, rng: np.random.Generator) -> None:
        for node in nodes:
            node.external_load = self.sample_factor(rng)


class NoExternalLoad(ExternalLoad):
    """Dedicated nodes (scheduled production machine)."""

    def __init__(self):
        super().__init__()

    def sample_factor(self, rng: np.random.Generator) -> float:
        return 1.0
