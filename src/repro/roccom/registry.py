"""The per-process Roccom registry and COM_call_function dispatch.

One :class:`Roccom` instance lives on each rank; modules create windows
in it, register their data and functions, and invoke each other's
functions by qualified name (``"Window.function"``) without compile-
time coupling — the mechanism that lets GENx swap Rocpanda and Rochdf
by loading a different module (§5).
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional

from .window import Window

__all__ = ["Roccom"]


class Roccom:
    """Per-process component registry."""

    def __init__(self, ctx=None):
        #: The owning rank's context (None outside a simulation).
        self.ctx = ctx
        self._windows: Dict[str, Window] = {}
        self._modules: Dict[str, Any] = {}

    # -- windows -----------------------------------------------------------
    def new_window(self, name: str) -> Window:
        if name in self._windows:
            raise ValueError(f"window {name!r} already exists")
        window = Window(name)
        self._windows[name] = window
        return window

    def window(self, name: str) -> Window:
        try:
            return self._windows[name]
        except KeyError:
            raise KeyError(f"no window named {name!r}") from None

    def has_window(self, name: str) -> bool:
        return name in self._windows

    def delete_window(self, name: str) -> None:
        try:
            del self._windows[name]
        except KeyError:
            raise KeyError(f"no window named {name!r}") from None

    def window_names(self) -> List[str]:
        return sorted(self._windows)

    # -- qualified data access ------------------------------------------------
    def get_array(self, qualified: str, pane_id: int):
        """``get_array("Fluid.pressure", pane_id)``."""
        window_name, attr = self._split(qualified)
        return self.window(window_name).get_array(attr, pane_id)

    def set_array(self, qualified: str, pane_id: int, array) -> None:
        window_name, attr = self._split(qualified)
        self.window(window_name).set_array(attr, pane_id, array)

    # -- function dispatch -------------------------------------------------------
    def call_function(self, qualified: str, *args, **kwargs):
        """Generator: invoke ``"Window.function"``; returns its result.

        Works uniformly for plain functions and DES generator functions
        (the registered I/O operations are generators); plain results
        are returned without yielding.  Always drive it with
        ``yield from`` inside a rank process.
        """
        fn = self._resolve(qualified)
        result = fn(*args, **kwargs)
        if inspect.isgenerator(result):
            result = yield from result
        return result

    def call_sync(self, qualified: str, *args, **kwargs):
        """Invoke a non-blocking registered function directly."""
        fn = self._resolve(qualified)
        result = fn(*args, **kwargs)
        if inspect.isgenerator(result):
            raise TypeError(
                f"{qualified} is a blocking (generator) function; use "
                f"'yield from com.call_function(...)'"
            )
        return result

    def _resolve(self, qualified: str) -> Callable:
        window_name, func = self._split(qualified)
        return self.window(window_name).function(func)

    @staticmethod
    def _split(qualified: str):
        if "." not in qualified:
            raise ValueError(
                f"expected 'Window.member' qualified name, got {qualified!r}"
            )
        window_name, _, member = qualified.partition(".")
        return window_name, member

    # -- module lifecycle -----------------------------------------------------
    def load_module(self, module, *args, **kwargs):
        """Load a service module: calls ``module.load(self, ...)``.

        The module's ``load`` creates its window(s) and registers its
        interface functions (§5: "The load_module routine creates a
        window in Roccom, registers a Rocpanda or Rochdf object in the
        window, and associates user interface functions...").
        """
        name = module.name
        if name in self._modules:
            raise ValueError(f"module {name!r} already loaded")
        module.load(self, *args, **kwargs)
        self._modules[name] = module
        return module

    def unload_module(self, name: str):
        """Unload a service module; returns an iterator to drive it.

        Modules whose ``unload`` must wait on simulated time (drain
        buffered I/O, join a background thread) implement it as a
        generator; plain modules tear down eagerly.  Call sites inside
        a rank process should uniformly write
        ``yield from com.unload_module(name)`` — for an eager module
        the returned iterator is empty and yields nothing.  The module
        is removed from the registry immediately in both cases.
        """
        try:
            module = self._modules.pop(name)
        except KeyError:
            raise KeyError(f"module {name!r} is not loaded") from None
        result = module.unload(self)
        if inspect.isgenerator(result):
            return result
        return iter(())

    def loaded_modules(self) -> List[str]:
        return sorted(self._modules)

    def module(self, name: str):
        try:
            return self._modules[name]
        except KeyError:
            raise KeyError(f"module {name!r} is not loaded") from None
