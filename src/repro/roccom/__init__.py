"""Roccom: the component-integration framework (§5).

Windows partitioned into panes, attribute registration/retrieval,
function registration with :func:`COM_call_function` dispatch, and the
load_module/unload_module mechanism that makes the I/O services
interchangeable.
"""

from .attribute import (
    LOC_ELEMENT,
    LOC_NODE,
    LOC_PANE,
    LOC_WINDOW,
    AttributeSpec,
)
from .bindings import (
    COM_call_function,
    COM_finalize,
    COM_get_array,
    COM_get_com,
    COM_init,
    COM_load_module,
    COM_new_attribute,
    COM_new_window,
    COM_delete_window,
    COM_register_function,
    COM_register_pane,
    COM_set_array,
    COM_unload_module,
    f90_string,
)
from .module import IO_FUNCTIONS, IO_WINDOW, ServiceModule
from .registry import Roccom
from .window import Pane, Window

__all__ = [
    "AttributeSpec",
    "LOC_NODE",
    "LOC_ELEMENT",
    "LOC_PANE",
    "LOC_WINDOW",
    "Pane",
    "Window",
    "Roccom",
    "ServiceModule",
    "IO_WINDOW",
    "IO_FUNCTIONS",
    "COM_init",
    "COM_finalize",
    "COM_get_com",
    "COM_new_window",
    "COM_delete_window",
    "COM_new_attribute",
    "COM_register_pane",
    "COM_set_array",
    "COM_get_array",
    "COM_register_function",
    "COM_call_function",
    "COM_load_module",
    "COM_unload_module",
    "f90_string",
]
