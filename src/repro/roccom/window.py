"""Windows and panes: Roccom's distributed data objects.

A :class:`Window` encapsulates data members (mesh + field attributes)
and public functions of a module.  In a parallel setting a window is
partitioned into :class:`Pane` s; each pane is owned by one process and
a process may own any number of panes (§5).  This module is the
*local* view: a process's Roccom registry holds the window with only
the locally-owned panes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

import numpy as np

from .attribute import (
    LOC_ELEMENT,
    LOC_NODE,
    LOC_PANE,
    LOC_WINDOW,
    AttributeSpec,
)

__all__ = ["Pane", "Window"]


class Pane:
    """One data block: the locally-owned piece of a window.

    ``nnodes``/``nelems`` size the node- and element-located attribute
    arrays.  Arrays are stored by attribute name.
    """

    def __init__(self, pane_id: int, nnodes: int, nelems: int):
        if pane_id < 0:
            raise ValueError("pane id must be >= 0")
        if nnodes < 0 or nelems < 0:
            raise ValueError("sizes must be >= 0")
        self.id = pane_id
        self.nnodes = nnodes
        self.nelems = nelems
        self._arrays: Dict[str, np.ndarray] = {}

    def nitems(self, location: str) -> int:
        if location == LOC_NODE:
            return self.nnodes
        if location == LOC_ELEMENT:
            return self.nelems
        raise ValueError(f"no item count for location {location!r}")

    def resize(self, nnodes: Optional[int] = None, nelems: Optional[int] = None) -> None:
        """Change mesh sizes (adaptive refinement); drops stale arrays.

        Mesh blocks "change as the propellant burns in the simulation,
        requiring adaptive refinement over time" (§3.2); the I/O path
        re-reads whatever arrays are registered at output time, so no
        re-registration with the I/O library is ever needed (§4.1).
        """
        if nnodes is not None and nnodes != self.nnodes:
            self.nnodes = nnodes
            self._drop_stale(LOC_NODE)
        if nelems is not None and nelems != self.nelems:
            self.nelems = nelems
            self._drop_stale(LOC_ELEMENT)

    def _drop_stale(self, location: str) -> None:
        # The window tracks specs; the pane only knows names, so the
        # window calls back into _set/_get.  Stale arrays are removed
        # lazily by Window.set_array validation; here we clear arrays
        # whose first dimension no longer matches.
        for name in list(self._arrays):
            arr = self._arrays[name]
            if location == LOC_NODE and arr.shape[0] == self.nnodes:
                continue
            if location == LOC_ELEMENT and arr.shape[0] == self.nelems:
                continue
            # Conservatively keep arrays that still match either size.
            if arr.shape[0] in (self.nnodes, self.nelems):
                continue
            del self._arrays[name]

    def array_names(self) -> List[str]:
        return sorted(self._arrays)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())

    def __repr__(self) -> str:
        return f"<Pane {self.id}: {self.nnodes} nodes, {self.nelems} elems>"


class Window:
    """A named collection of attribute specs, panes, and functions."""

    def __init__(self, name: str):
        if not name or "." in name:
            raise ValueError(f"bad window name {name!r} ('.' reserved)")
        self.name = name
        self._specs: Dict[str, AttributeSpec] = {}
        self._panes: Dict[int, Pane] = {}
        self._functions: Dict[str, Callable] = {}
        self._window_values: Dict[str, Any] = {}

    # -- attribute declaration ---------------------------------------------
    def declare_attribute(self, spec: AttributeSpec) -> AttributeSpec:
        if spec.name in self._specs:
            raise ValueError(f"attribute {spec.name!r} already declared on {self.name!r}")
        self._specs[spec.name] = spec
        return spec

    def attribute(self, name: str) -> AttributeSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"window {self.name!r} has no attribute {name!r}") from None

    def attribute_names(self) -> List[str]:
        return list(self._specs)

    # -- panes ------------------------------------------------------------
    def register_pane(self, pane_id: int, nnodes: int, nelems: int) -> Pane:
        if pane_id in self._panes:
            raise ValueError(f"pane {pane_id} already registered on {self.name!r}")
        pane = Pane(pane_id, nnodes, nelems)
        self._panes[pane_id] = pane
        return pane

    def deregister_pane(self, pane_id: int) -> None:
        """Remove a pane (block migrated away under load balancing)."""
        try:
            del self._panes[pane_id]
        except KeyError:
            raise KeyError(f"no pane {pane_id} on window {self.name!r}") from None

    def pane(self, pane_id: int) -> Pane:
        try:
            return self._panes[pane_id]
        except KeyError:
            raise KeyError(f"no pane {pane_id} on window {self.name!r}") from None

    def pane_ids(self) -> List[int]:
        return sorted(self._panes)

    def panes(self) -> Iterator[Pane]:
        for pane_id in sorted(self._panes):
            yield self._panes[pane_id]

    @property
    def npanes(self) -> int:
        return len(self._panes)

    # -- data access ---------------------------------------------------------
    def set_array(self, attr_name: str, pane_id: int, array: np.ndarray) -> None:
        """Register (or replace) a pane's array for a declared attribute."""
        spec = self.attribute(attr_name)
        if spec.location == LOC_WINDOW:
            raise ValueError(
                f"{attr_name!r} is window-located; use set_window_value"
            )
        pane = self.pane(pane_id)
        array = np.asarray(array)
        if spec.location in (LOC_NODE, LOC_ELEMENT):
            spec.validate(array, pane.nitems(spec.location))
        else:  # LOC_PANE: free-size, dtype checked only
            if np.dtype(spec.dtype) != array.dtype:
                raise ValueError(
                    f"attribute {attr_name!r}: dtype {array.dtype} != declared {spec.dtype}"
                )
        pane._arrays[attr_name] = array

    def get_array(self, attr_name: str, pane_id: int) -> np.ndarray:
        # Hot path (physics kernels hit this per field per block per
        # step): plain dict lookups, diagnose failures only on miss.
        spec = self._specs.get(attr_name)
        if spec is None:
            raise KeyError(f"window {self.name!r} has no attribute {attr_name!r}")
        if spec.location == LOC_WINDOW:
            raise ValueError(f"{attr_name!r} is window-located; use get_window_value")
        pane = self._panes.get(pane_id)
        if pane is None:
            raise KeyError(f"no pane {pane_id} on window {self.name!r}")
        try:
            return pane._arrays[attr_name]
        except KeyError:
            raise KeyError(
                f"pane {pane_id} of {self.name!r} has no data for {attr_name!r}"
            ) from None

    def has_array(self, attr_name: str, pane_id: int) -> bool:
        return attr_name in self.pane(pane_id)._arrays

    def set_window_value(self, attr_name: str, value: Any) -> None:
        spec = self.attribute(attr_name)
        if spec.location != LOC_WINDOW:
            raise ValueError(f"{attr_name!r} is not window-located")
        self._window_values[attr_name] = value

    def get_window_value(self, attr_name: str) -> Any:
        spec = self.attribute(attr_name)
        if spec.location != LOC_WINDOW:
            raise ValueError(f"{attr_name!r} is not window-located")
        try:
            return self._window_values[attr_name]
        except KeyError:
            raise KeyError(f"window value {attr_name!r} not set on {self.name!r}") from None

    # -- functions ---------------------------------------------------------
    def register_function(self, func_name: str, fn: Callable) -> None:
        if "." in func_name:
            raise ValueError("function name must not contain '.'")
        if func_name in self._functions:
            raise ValueError(
                f"function {func_name!r} already registered on {self.name!r}"
            )
        self._functions[func_name] = fn

    def function(self, func_name: str) -> Callable:
        try:
            return self._functions[func_name]
        except KeyError:
            raise KeyError(
                f"window {self.name!r} has no function {func_name!r}"
            ) from None

    def function_names(self) -> List[str]:
        return list(self._functions)

    @property
    def local_nbytes(self) -> int:
        return sum(p.nbytes for p in self._panes.values())

    def __repr__(self) -> str:
        return (
            f"<Window {self.name!r}: {len(self._specs)} attrs, "
            f"{len(self._panes)} panes, {len(self._functions)} functions>"
        )
