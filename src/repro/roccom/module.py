"""Service-module protocol and the uniform I/O interface contract.

Every interchangeable I/O service module (Rocpanda, Rochdf, T-Rochdf)
implements :class:`ServiceModule` and, on ``load``, creates a window
named by ``window_name`` (default ``"OUT"``) exposing the three
file-format-independent collective operations of §5:

* ``write_attribute(window_name, attr_names, path, file_attrs=None)``
* ``read_attribute(window_name, attr_names, path_or_prefix)``
* ``sync()`` — wait for previously issued (overlapped) output

Because every module registers the same function names under the same
window, application code written against ``COM_call_function`` is
untouched when the module is swapped.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ServiceModule", "IO_WINDOW", "IO_FUNCTIONS"]

#: Conventional window name under which I/O services register.
IO_WINDOW = "OUT"

#: The uniform collective I/O interface (§5).
IO_FUNCTIONS = ("write_attribute", "read_attribute", "sync")


class ServiceModule:
    """Base class for loadable service modules."""

    #: Unique module name (subclasses must override).
    name: str = ""

    def load(self, com, *args, **kwargs) -> None:
        raise NotImplementedError

    def unload(self, com) -> None:
        raise NotImplementedError

    # -- helpers shared by the I/O modules ----------------------------------
    def _register_io_window(self, com, window_name: str = IO_WINDOW) -> None:
        window = com.new_window(window_name)
        for func in IO_FUNCTIONS:
            window.register_function(func, getattr(self, func))

    def _deregister_io_window(self, com, window_name: str = IO_WINDOW) -> None:
        com.delete_window(window_name)
