"""C-style procedural bindings for Roccom.

Roccom's interface routines "have different bindings for C, C++, and
Fortran 90, with similar semantics" (§5).  The object API in
:mod:`repro.roccom.registry` is the C++ binding analogue; this module
provides the flat, C-style procedural binding that GENx's C driver and
Fortran computation modules would call, including Fortran conveniences
(trailing-blank trimming, the analogue of appending null terminators
to Fortran strings).
"""

from __future__ import annotations

from typing import Any, Optional

from .attribute import AttributeSpec
from .registry import Roccom

__all__ = [
    "COM_init",
    "COM_finalize",
    "COM_new_window",
    "COM_delete_window",
    "COM_new_attribute",
    "COM_register_pane",
    "COM_set_array",
    "COM_get_array",
    "COM_register_function",
    "COM_call_function",
    "COM_load_module",
    "COM_unload_module",
    "COM_get_com",
    "f90_string",
]

_active: Optional[Roccom] = None


def f90_string(s: str) -> str:
    """Normalize a Fortran-style blank-padded string."""
    return s.rstrip(" ")


def COM_init(ctx=None) -> Roccom:
    """Create and activate the process-global Roccom instance."""
    global _active
    if _active is not None:
        raise RuntimeError("Roccom already initialized; call COM_finalize first")
    _active = Roccom(ctx)
    return _active


def COM_finalize() -> None:
    """Deactivate and discard the process-global Roccom instance."""
    global _active
    _active = None


def COM_get_com() -> Roccom:
    """The active process-global Roccom instance."""
    if _active is None:
        raise RuntimeError("Roccom not initialized; call COM_init first")
    return _active


def COM_new_window(name: str) -> None:
    """Create a window: ``COM_new_window("Fluid")``."""
    COM_get_com().new_window(f90_string(name))


def COM_delete_window(name: str) -> None:
    """Delete a window and everything registered in it."""
    COM_get_com().delete_window(f90_string(name))


def COM_new_attribute(
    window_attr: str, location: str, ncomp: int = 1, dtype: str = "f8", unit: str = ""
) -> None:
    """Declare an attribute: ``COM_new_attribute("Fluid.pressure", "element")``."""
    window_name, _, attr = f90_string(window_attr).partition(".")
    spec = AttributeSpec(attr, location=location, ncomp=ncomp, dtype=dtype, unit=unit)
    COM_get_com().window(window_name).declare_attribute(spec)


def COM_register_pane(window: str, pane_id: int, nnodes: int, nelems: int) -> None:
    """Register a local data block as a pane of a window."""
    COM_get_com().window(f90_string(window)).register_pane(pane_id, nnodes, nelems)


def COM_set_array(window_attr: str, pane_id: int, array) -> None:
    """Register a pane's array: ``COM_set_array("Fluid.pressure", 3, p)``."""
    COM_get_com().set_array(f90_string(window_attr), pane_id, array)


def COM_get_array(window_attr: str, pane_id: int):
    """Retrieve a registered array by qualified name and pane id."""
    return COM_get_com().get_array(f90_string(window_attr), pane_id)


def COM_register_function(window_func: str, fn) -> None:
    """Register a public function: ``COM_register_function("W.solve", f)``."""
    window_name, _, func = f90_string(window_func).partition(".")
    COM_get_com().window(window_name).register_function(func, fn)


def COM_call_function(window_func: str, *args, **kwargs):
    """Generator: invoke a registered function (drive with ``yield from``)."""
    result = yield from COM_get_com().call_function(
        f90_string(window_func), *args, **kwargs
    )
    return result


def COM_load_module(module, *args, **kwargs):
    """Load a service module into the active Roccom (§5)."""
    return COM_get_com().load_module(module, *args, **kwargs)


def COM_unload_module(name: str):
    """Unload a service module by name.

    Returns the iterator from :meth:`Roccom.unload_module`; drive it
    with ``yield from`` when the module's teardown blocks on I/O.
    """
    return COM_get_com().unload_module(f90_string(name))
