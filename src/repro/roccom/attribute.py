"""Attribute specifications for Roccom windows.

An *attribute* is a named data member every pane of a window carries:
mesh coordinates, connectivity, node- or element-centered field values,
or per-pane/window scalars.  All panes of a window share the same
attribute collection while sizes vary per pane (§5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "AttributeSpec",
    "LOC_NODE",
    "LOC_ELEMENT",
    "LOC_PANE",
    "LOC_WINDOW",
]

#: One value-row per mesh node.
LOC_NODE = "node"
#: One value-row per mesh element.
LOC_ELEMENT = "element"
#: One array per pane, size independent of the mesh.
LOC_PANE = "pane"
#: A single window-level value (shared, not per-pane).
LOC_WINDOW = "window"

_LOCATIONS = (LOC_NODE, LOC_ELEMENT, LOC_PANE, LOC_WINDOW)


@dataclass(frozen=True)
class AttributeSpec:
    """Declaration of one window attribute.

    ``ncomp`` is the number of components per item (3 for coordinates
    or velocity, 1 for pressure, nodes-per-element for connectivity).
    """

    name: str
    location: str
    ncomp: int = 1
    dtype: str = "f8"
    unit: str = ""

    def __post_init__(self):
        if not self.name or "/" in self.name or "." in self.name:
            raise ValueError(f"bad attribute name {self.name!r} ('/' and '.' reserved)")
        if self.location not in _LOCATIONS:
            raise ValueError(f"bad location {self.location!r}, must be one of {_LOCATIONS}")
        if self.ncomp < 1:
            raise ValueError("ncomp must be >= 1")
        np.dtype(self.dtype)  # raises TypeError on nonsense

    def expected_shape(self, nitems: int):
        """Expected array shape for a pane with ``nitems`` nodes/elements."""
        if self.location == LOC_WINDOW:
            raise ValueError("window-located attributes are not per-pane arrays")
        if self.ncomp == 1:
            return (nitems,)
        return (nitems, self.ncomp)

    def validate(self, array: np.ndarray, nitems: int) -> None:
        """Check an array against this spec for a pane of ``nitems``."""
        expected = self.expected_shape(nitems)
        squeezed_ok = (
            self.ncomp == 1 and array.shape == (nitems, 1)
        )
        if array.shape != expected and not squeezed_ok:
            raise ValueError(
                f"attribute {self.name!r}: shape {array.shape} != expected {expected}"
            )
        if np.dtype(self.dtype) != array.dtype:
            raise ValueError(
                f"attribute {self.name!r}: dtype {array.dtype} != declared {self.dtype}"
            )
