"""Exporters for the instrumentation stream: JSON, CSV, timelines.

The JSON payload is what benchmark reports embed (``BENCH_*.json``);
the CSV form mirrors Darshan's flat per-record log for offline
plotting; the timeline renderer backs ``python -m repro trace``.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Iterable, List, Optional, Sequence

from .aggregate import aggregate, overlap_ratio, phase_rollup, records_by_rank
from .records import IORecord, Recorder

__all__ = [
    "records_to_dicts",
    "records_to_csv",
    "summary_payload",
    "to_json",
    "write_json",
    "render_timeline",
]

_CSV_FIELDS = ("module", "op", "rank", "path", "nbytes", "t_start", "t_end", "visible")


def records_to_dicts(records: Iterable[IORecord]) -> List[Dict]:
    """Plain-dict form of the records (JSON/CSV ready)."""
    return [
        {
            "module": r.module,
            "op": r.op,
            "rank": r.rank,
            "path": r.path,
            "nbytes": r.nbytes,
            "t_start": r.t_start,
            "t_end": r.t_end,
            "visible": r.visible,
        }
        for r in records
    ]


def records_to_csv(records: Iterable[IORecord]) -> str:
    """Darshan-style flat CSV of the per-operation records."""
    buf = io.StringIO()
    buf.write(",".join(_CSV_FIELDS) + "\n")
    for r in records:
        buf.write(
            f"{r.module},{r.op},{r.rank},{r.path},{r.nbytes},"
            f"{r.t_start!r},{r.t_end!r},{int(r.visible)}\n"
        )
    return buf.getvalue()


def summary_payload(recorder: Recorder, include_records: bool = False) -> Dict:
    """Aggregated JSON-ready payload of one job's instrumentation.

    Per-module rollups (visible/background split, per-op totals, the
    overlap ratio), per-phase times, and the comm counters.  With
    ``include_records`` the raw per-operation records ride along too.
    """
    modules = {}
    for name, rollup in sorted(aggregate(recorder.io_records).items()):
        modules[name] = {
            "visible_time": rollup.visible_time,
            "visible_write_time": rollup.visible_write_time,
            "background_time": rollup.background_time,
            "overlap_ratio": rollup.overlap_ratio,
            "bytes_total": rollup.bytes_total,
            "nrecords": rollup.nrecords,
            "ops": {
                op: {
                    "count": r.count,
                    "nbytes": r.nbytes,
                    "time": r.time,
                    "visible": r.visible,
                }
                for op, r in sorted(rollup.ops.items())
            },
        }
    payload = {
        "nrecords": len(recorder.io_records),
        "modules": modules,
        "phases": phase_rollup(recorder.io_records),
        "comm": recorder.comm.as_dict(),
        "counters": {
            module: dict(sorted(bucket.items()))
            for module, bucket in sorted(recorder.counters.items())
        },
    }
    if include_records:
        payload["records"] = records_to_dicts(recorder.io_records)
    return payload


def to_json(recorder: Recorder, include_records: bool = False, indent: int = 2) -> str:
    """Serialized :func:`summary_payload`."""
    return json.dumps(
        summary_payload(recorder, include_records=include_records), indent=indent
    )


def write_json(recorder: Recorder, path: str, include_records: bool = False) -> None:
    """Write :func:`to_json` output to ``path``."""
    with open(path, "w") as fh:
        fh.write(to_json(recorder, include_records=include_records) + "\n")


def render_timeline(
    records: Sequence[IORecord],
    ranks: Optional[Sequence[int]] = None,
    modules: Optional[Sequence[str]] = None,
    limit_per_rank: Optional[int] = None,
) -> str:
    """Per-rank timeline of the records, one line per operation."""
    wanted_ranks = set(ranks) if ranks is not None else None
    wanted_modules = set(modules) if modules is not None else None
    lines: List[str] = []
    for rank, rank_records in sorted(records_by_rank(records).items()):
        if wanted_ranks is not None and rank not in wanted_ranks:
            continue
        if wanted_modules is not None:
            rank_records = [r for r in rank_records if r.module in wanted_modules]
        if not rank_records:
            continue
        lines.append(f"rank {rank}:")
        shown = rank_records if limit_per_rank is None else rank_records[:limit_per_rank]
        for record in shown:
            lines.append(f"  {record}")
        omitted = len(rank_records) - len(shown)
        if omitted > 0:
            lines.append(f"  ... {omitted} more record(s)")
    return "\n".join(lines)
