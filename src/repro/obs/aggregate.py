"""Rollups over the instrumentation record stream.

Aggregation answers the paper's central question per module: how much
I/O time sat on the callers' critical path (*visible*) vs how much was
hidden behind computation (*background* write-behind on Panda servers,
T-Rochdf threads, and client-side background senders).  The headline
metric is the **overlap ratio**::

    overlap_ratio = background_time / (background_time + visible_write_time)

Plain Rochdf does everything in the callers' faces, so its ratio is 0;
T-Rochdf and Rocpanda hide most of the file time, so theirs approach 1.

Records are also bucketed into coarse *phases* (``output``, ``restart``,
``sync``, ``write-behind``) for per-phase rollups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .records import IORecord

__all__ = [
    "OpRollup",
    "ModuleRollup",
    "aggregate",
    "overlap_ratio",
    "phase_of",
    "phase_rollup",
    "records_by_rank",
]

#: Visible operations that belong to the restart (read) phase.
_READ_OPS = frozenset({"read_attribute", "read_dataset", "restart_scan"})


@dataclass
class OpRollup:
    """Totals for one (module, op) pair."""

    module: str
    op: str
    count: int = 0
    nbytes: int = 0
    time: float = 0.0
    visible: bool = True

    def add(self, record: IORecord) -> None:
        self.count += 1
        self.nbytes += record.nbytes
        self.time += record.duration


@dataclass
class ModuleRollup:
    """Per-module totals with the visible/background split."""

    module: str
    visible_time: float = 0.0
    background_time: float = 0.0
    visible_write_time: float = 0.0
    bytes_total: int = 0
    nrecords: int = 0
    ops: Dict[str, OpRollup] = field(default_factory=dict)

    @property
    def overlap_ratio(self) -> float:
        """Fraction of write-path time hidden behind computation."""
        denom = self.background_time + self.visible_write_time
        return self.background_time / denom if denom > 0 else 0.0

    def add(self, record: IORecord) -> None:
        self.nrecords += 1
        self.bytes_total += record.nbytes
        if record.visible:
            self.visible_time += record.duration
            if record.op not in _READ_OPS and record.op != "sync":
                self.visible_write_time += record.duration
        else:
            self.background_time += record.duration
        rollup = self.ops.get(record.op)
        if rollup is None:
            rollup = self.ops[record.op] = OpRollup(
                module=record.module, op=record.op, visible=record.visible
            )
        rollup.add(record)


def aggregate(records: Iterable[IORecord]) -> Dict[str, ModuleRollup]:
    """Collapse a record stream into per-module rollups."""
    out: Dict[str, ModuleRollup] = {}
    for record in records:
        rollup = out.get(record.module)
        if rollup is None:
            rollup = out[record.module] = ModuleRollup(module=record.module)
        rollup.add(record)
    return out


def overlap_ratio(records: Iterable[IORecord], module: Optional[str] = None) -> float:
    """Overlap ratio over ``records``, optionally for one module only."""
    background = 0.0
    visible_write = 0.0
    for record in records:
        if module is not None and record.module != module:
            continue
        if record.visible:
            if record.op not in _READ_OPS and record.op != "sync":
                visible_write += record.duration
        else:
            background += record.duration
    denom = background + visible_write
    return background / denom if denom > 0 else 0.0


def phase_of(record: IORecord) -> str:
    """Coarse phase bucket of one record."""
    if not record.visible:
        return "write-behind"
    if record.op in _READ_OPS:
        return "restart"
    if record.op == "sync":
        return "sync"
    return "output"


def phase_rollup(records: Iterable[IORecord]) -> Dict[str, Dict[str, float]]:
    """``{module: {phase: seconds}}`` over the record stream."""
    out: Dict[str, Dict[str, float]] = {}
    for record in records:
        phases = out.setdefault(record.module, {})
        phase = phase_of(record)
        phases[phase] = phases.get(phase, 0.0) + record.duration
    return out


def records_by_rank(records: Iterable[IORecord]) -> Dict[int, List[IORecord]]:
    """Group records per rank, each group sorted by start time."""
    out: Dict[int, List[IORecord]] = {}
    for record in records:
        out.setdefault(record.rank, []).append(record)
    for rank_records in out.values():
        rank_records.sort(key=lambda r: (r.t_start, r.t_end))
    return out
