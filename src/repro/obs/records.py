"""Darshan-style structured I/O instrumentation records.

The paper's argument is about *where time goes*: visible write cost on
the compute ranks vs background write-behind on Panda servers and
T-Rochdf threads (§6.1–§7.1).  This module provides the per-rank,
per-operation record layer that makes those claims inspectable:

* :class:`IORecord` — one timed I/O operation (module, op, path, bytes,
  ``t_start``/``t_end`` on the DES clock, rank, visibility);
* :class:`TraceRecord` — a free-form event message (the legacy
  :class:`repro.util.trace.Tracer` stream, kept for compatibility);
* :class:`CommCounters` — message counters and bytes-on-wire totals fed
  by the :class:`repro.vmpi.comm.Comm` hooks;
* :class:`Recorder` — the per-job sink all of the above land in;
* :class:`IOSpan` — a span-style timer driven off the DES clock (never
  wall-clock), usable as a context manager inside DES generators.

A record is *visible* when its duration was spent inside a blocking
interface call on the caller's critical path (``write_attribute``,
``read_attribute``, ``sync``), and *background* when the time was
hidden behind computation (T-Rochdf's I/O thread, Rocpanda's
write-behind servers and background senders).  The ratio of the two is
the overlap metric computed in :mod:`repro.obs.aggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "IORecord",
    "TraceRecord",
    "CommCounters",
    "Recorder",
    "IOSpan",
]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """A free-form traced event (legacy ``Tracer`` message stream)."""

    time: float
    category: str
    rank: int
    message: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] r{self.rank:<4d} {self.category:<12s} {self.message}"


@dataclass(frozen=True, slots=True)
class IORecord:
    """One timed I/O operation on one rank (Darshan-style).

    Allocated once per traced operation on every rank, so it is slotted
    like the DES event hierarchy.
    """

    #: Which subsystem produced the record ("rochdf", "trochdf",
    #: "rocpanda", "shdf", ...).
    module: str
    #: Operation kind ("write_attribute", "bg_write", "ingest",
    #: "open", "write_dataset", ...).
    op: str
    rank: int
    path: str = ""
    nbytes: int = 0
    t_start: float = 0.0
    t_end: float = 0.0
    #: True when the duration sat on the caller's critical path; False
    #: for background (overlapped) work.
    visible: bool = True

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def __str__(self) -> str:
        kind = "visible" if self.visible else "background"
        where = f" {self.path}" if self.path else ""
        return (
            f"[{self.t_start:12.6f} .. {self.t_end:12.6f}] r{self.rank:<4d} "
            f"{self.module:<10s} {self.op:<16s} {self.nbytes:>12d} B "
            f"({kind}){where}"
        )


@dataclass
class CommCounters:
    """Message counters and bytes on the wire (fed from ``Comm``)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    eager_messages: int = 0
    rendezvous_messages: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    #: Global sender rank -> messages / payload bytes originated there.
    sent_by_rank: Dict[int, int] = field(default_factory=dict)
    bytes_by_rank: Dict[int, int] = field(default_factory=dict)

    def count_send(self, src: int, dst: int, nbytes: int, eager: bool) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if eager:
            self.eager_messages += 1
        else:
            self.rendezvous_messages += 1
        self.sent_by_rank[src] = self.sent_by_rank.get(src, 0) + 1
        self.bytes_by_rank[src] = self.bytes_by_rank.get(src, 0) + nbytes

    def count_recv(self, dst: int, nbytes: int) -> None:
        self.messages_received += 1
        self.bytes_received += nbytes

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the counters."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "eager_messages": self.eager_messages,
            "rendezvous_messages": self.rendezvous_messages,
            "messages_received": self.messages_received,
            "bytes_received": self.bytes_received,
            "sent_by_rank": dict(sorted(self.sent_by_rank.items())),
            "bytes_by_rank": dict(sorted(self.bytes_by_rank.items())),
        }


class IOSpan:
    """Span-style timer on the DES clock.

    Usable as a context manager *inside* a DES generator — the clock
    advances while the generator is suspended, so enter/exit timestamps
    bracket the operation's virtual duration::

        with ctx.io_span("rochdf", "write_attribute", path=p) as span:
            ...  # yields happen here
            span.nbytes = total
    """

    __slots__ = ("recorder", "env", "module", "op", "rank", "path", "nbytes", "visible", "t_start")

    def __init__(self, recorder, env, module, op, rank, path="", nbytes=0, visible=True):
        self.recorder = recorder
        self.env = env
        self.module = module
        self.op = op
        self.rank = rank
        self.path = path
        self.nbytes = nbytes
        self.visible = visible
        self.t_start = None

    def __enter__(self) -> "IOSpan":
        self.t_start = self.env.now
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.recorder.record_io(
                self.module,
                self.op,
                self.rank,
                path=self.path,
                nbytes=self.nbytes,
                t_start=self.t_start,
                t_end=self.env.now,
                visible=self.visible,
            )
        return False


class Recorder:
    """Per-job sink for I/O records, trace events, and comm counters.

    Cheap when disabled; when enabled (the default) every record is a
    small frozen dataclass appended to a list, so jobs can always be
    inspected after the fact.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.io_records: List[IORecord] = []
        #: Legacy free-form event stream (what ``Tracer`` shims onto).
        self.events: List[TraceRecord] = []
        self.comm = CommCounters()
        #: Named counters per module: ``{"rocpanda": {"retries": 3}}``.
        #: Fed by resilience code (retry/failover/overflow) and the
        #: fault injector; rolled up by :func:`summary_payload`.
        self.counters: Dict[str, Dict[str, float]] = {}

    # -- I/O records ----------------------------------------------------
    def record_io(
        self,
        module: str,
        op: str,
        rank: int,
        *,
        path: str = "",
        nbytes: int = 0,
        t_start: float = 0.0,
        t_end: float = 0.0,
        visible: bool = True,
    ) -> None:
        """Append one :class:`IORecord` (no-op when disabled)."""
        if not self.enabled:
            return
        self.io_records.append(
            IORecord(
                module=module,
                op=op,
                rank=rank,
                path=path,
                nbytes=int(nbytes),
                t_start=t_start,
                t_end=t_end,
                visible=visible,
            )
        )

    def span(
        self,
        env,
        module: str,
        op: str,
        rank: int,
        *,
        path: str = "",
        nbytes: int = 0,
        visible: bool = True,
    ) -> IOSpan:
        """A DES-clock :class:`IOSpan` that records itself on exit."""
        return IOSpan(self, env, module, op, rank, path=path, nbytes=nbytes, visible=visible)

    # -- legacy trace events --------------------------------------------
    def log_event(self, time: float, category: str, rank: int, message: str) -> None:
        """Append one legacy :class:`TraceRecord` (no-op when disabled)."""
        if not self.enabled:
            return
        self.events.append(TraceRecord(time, category, rank, message))

    # -- counters --------------------------------------------------------
    def record_counter(self, module: str, name: str, value: float = 1) -> None:
        """Bump the named counter for ``module`` (no-op when disabled)."""
        if not self.enabled:
            return
        bucket = self.counters.setdefault(module, {})
        bucket[name] = bucket.get(name, 0) + value

    # -- comm hooks ------------------------------------------------------
    def count_send(self, src: int, dst: int, nbytes: int, eager: bool) -> None:
        """Count one message leaving ``src`` (called by ``Comm.send``)."""
        if self.enabled:
            self.comm.count_send(src, dst, nbytes, eager)

    def count_recv(self, dst: int, nbytes: int) -> None:
        """Count one message consumed at ``dst`` (called by ``Comm.recv``)."""
        if self.enabled:
            self.comm.count_recv(dst, nbytes)

    # -- views -----------------------------------------------------------
    def by_rank(self, rank: int) -> List[IORecord]:
        return [r for r in self.io_records if r.rank == rank]

    def by_module(self, module: str) -> List[IORecord]:
        return [r for r in self.io_records if r.module == module]

    def __len__(self) -> int:
        return len(self.io_records)
