"""Structured I/O instrumentation (Darshan-style observability).

Per-rank, per-operation I/O records emitted by the I/O service modules
and the SHDF file layer; message counters from the virtual MPI; span
timers on the DES clock; aggregation into per-module/per-phase rollups
with the overlap ratio; JSON/CSV exporters and timeline rendering.
"""

from .aggregate import (
    ModuleRollup,
    OpRollup,
    aggregate,
    overlap_ratio,
    phase_of,
    phase_rollup,
    records_by_rank,
)
from .export import (
    records_to_csv,
    records_to_dicts,
    render_timeline,
    summary_payload,
    to_json,
    write_json,
)
from .records import CommCounters, IORecord, IOSpan, Recorder, TraceRecord

__all__ = [
    "IORecord",
    "TraceRecord",
    "CommCounters",
    "Recorder",
    "IOSpan",
    "OpRollup",
    "ModuleRollup",
    "aggregate",
    "overlap_ratio",
    "phase_of",
    "phase_rollup",
    "records_by_rank",
    "records_to_dicts",
    "records_to_csv",
    "summary_payload",
    "to_json",
    "write_json",
    "render_timeline",
]
