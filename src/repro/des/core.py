"""Core of the discrete-event simulation kernel.

This is a compact, dependency-free kernel in the style of SimPy:
*processes* are Python generators that ``yield`` :class:`Event` objects
and are resumed when those events fire.  Simulated time only advances
between events; all computation between yields happens at a single
instant of virtual time.

The kernel is deterministic: events scheduled for the same time fire in
(priority, insertion-order) order, so repeated runs of the same program
produce identical traces.

Two queue implementations share that contract
(``Environment(queue=...)``):

* ``"bucketed"`` (default) — the production scheduler.  Three
  structures merge into one total order:

  - a binary heap of singleton ``(time, priority, eid, event)``
    entries;
  - the "now ladder" deque of zero-delay NORMAL events (PR 7);
  - *buckets*: per-``(time, priority)`` deques for the same-timestamp
    bursts that tree collectives and coalesced flushes emit.  A burst
    is detected when a key repeats back-to-back (or an existing bucket
    is hit); from then on every event of that key lands in the bucket
    with a plain ``deque.append`` instead of an O(log n) heap push.
    One 3-tuple ``(time, priority, first_eid)`` per live bucket sits
    in a small key heap; because all later entries of a key are
    *forced* into its bucket, the first eid under-approximates every
    bucketed eid while no foreign entry of that key can sort between
    them — so the head-to-head tuple comparison against the singleton
    heap and the now ladder reproduces the single-heap pop order
    exactly (property-tested against the spec).

  The bucketed queue also supports *lazy cancellation*
  (:meth:`Event.cancel`), pooled auto-free timeouts
  (:meth:`Environment.sleep`) and *fused bulk delivery*
  (:meth:`Environment.schedule_callback`): many same-timestamp
  callbacks ride one queue entry and run in a single dispatch, with
  the fan-out still counted in ``events_processed``.

* ``"heapq"`` — the original single-heap scheduler, kept verbatim as
  the executable specification.  Every schedule is one ``heappush``
  and every pop one ``heappop``; cancellation, pooling and bulk
  callbacks behave identically (bulk entries are simply never fused).
  The hypothesis property suite drives both implementations with the
  same schedule/cancel/bulk interleavings and asserts identical
  callback firing order.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for internal bookkeeping events (fire first).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Sentinel for "event has no value yet".
_PENDING = object()

_INF = float("inf")


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*, becomes *triggered* when it gets
    scheduled with a value (or an exception), and *processed* after its
    callbacks have run.  Processes wait for events by yielding them.
    """

    # One Event (and usually several) is allocated per message, timeout
    # and process across millions of simulated events, so the whole
    # hierarchy is slotted.
    __slots__ = (
        "env", "callbacks", "_value", "_ok", "_defused", "_cancelled",
        "__weakref__",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set when a failed event's exception was delivered somewhere.
        self._defused = False
        #: Set by :meth:`cancel`; the run loop skips the queue entry.
        self._cancelled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def cancelled(self) -> bool:
        """True once the event was lazily cancelled."""
        return self._cancelled

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state/value of ``event``.

        Useful as a callback to chain events.
        """
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def cancel(self) -> bool:
        """Lazily cancel a triggered-but-unprocessed event.

        The queue entry is *not* removed (a heap cannot delete from the
        middle cheaply); instead the entry is skipped when it surfaces,
        its callbacks never run, and the scaling diagnostics discount
        it (a cancelled event inflates neither ``events_processed`` nor
        the sampled queue depth).  Returns ``True`` if the cancellation
        took effect, ``False`` if the event was already processed (or
        already cancelled).  Cancelling an event that was never
        scheduled would leak accounting, so it raises.
        """
        if self.callbacks is None:
            return False
        if self._value is _PENDING:
            raise RuntimeError(
                f"{self!r} is not scheduled; only triggered events can "
                f"be cancelled"
            )
        self.callbacks = None
        self._cancelled = True
        env = self.env
        env._ncancelled += 1
        env.events_cancelled += 1
        return True

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "Event":
        from .events import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Event":
        from .events import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if delay != delay or delay == _INF:
            # NaN compares unequal to itself; NaN/inf delays would
            # poison the heap ordering of every later event.
            raise ValueError(f"non-finite delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout({self._delay}) at {id(self):#x}>"


class _PooledTimeout(Timeout):
    """A freelisted timeout created by :meth:`Environment.sleep`.

    The run loop recycles the object into the environment's pool right
    after its callbacks ran, bumping ``_gen`` so tests can prove a
    recycled incarnation never fires for a stale holder.  Contract:
    the creator yields it immediately and drops the reference — which
    is exactly how the vmpi/network hot paths use their per-message
    software-overhead waits.
    """

    __slots__ = ("_gen",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        self._gen = 0
        super().__init__(env, delay, value)


class _Bulk:
    """A fused bulk-delivery entry: many callbacks, one queue slot.

    Scheduled via :meth:`Environment.schedule_callback`; ``callbacks``
    holds ``(fn, arg)`` pairs appended while the entry is still pending
    at the same ``(time, priority)`` key.  Duck-types just enough of
    :class:`Event` (``callbacks``/``_ok``/``_defused``/``_cancelled``)
    for the run loop; the loop dispatches on the class to run the pairs
    and count the fan-out in ``events_processed``.
    """

    __slots__ = ("callbacks", "_ok", "_defused", "_cancelled")

    def __init__(self):
        self.callbacks: Optional[list] = []
        self._ok = True
        self._defused = True
        self._cancelled = False


class Initialize(Event):
    """Internal event that starts a new :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A process: wraps a generator yielding events.

    The process object is itself an event that fires (with the
    generator's return value) when the generator terminates.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting for (None when
        #: the process is active or terminated).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into this process.

        The process is rescheduled immediately; the event it was
        waiting for is abandoned (but not cancelled for other waiters).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the value of ``event``."""
        env = self.env
        # If we were interrupted while waiting for another event, stop
        # listening on that event.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc_t = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc_t
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process({self.name}) at {id(self):#x}>"


class Environment:
    """Execution environment of a simulation.

    Holds the clock and the event queue, and provides factory helpers
    for the common event types.  ``queue`` selects the scheduler:
    ``"bucketed"`` (production) or ``"heapq"`` (the single-heap
    executable spec; see the module docstring).
    """

    #: Sampling stride for the queue-depth high-water mark kept by
    #: :meth:`run` (power of two; sampled every N events).
    _DEPTH_SAMPLE_MASK = 4095

    def __init__(self, initial_time: float = 0.0, queue: str = "bucketed"):
        if queue not in ("bucketed", "heapq"):
            raise ValueError(f"unknown queue implementation {queue!r}")
        self._spec = queue == "heapq"
        self._now = float(initial_time)
        self._queue: list = []
        #: The "now ladder": zero-delay NORMAL-priority events in
        #: insertion order.  These are the overwhelming majority of
        #: schedules (succeed/trigger chains), and a deque append/pop
        #: replaces an O(log n) heap operation for each.  Entries are
        #: full ``(time, priority, eid, event)`` tuples so the pop rule
        #: is a plain tuple comparison against the heap head; because
        #: time never decreases and eids increase, the deque is always
        #: sorted, and the queue merge pops events in exactly the
        #: single-heap order.
        self._nowq: deque = deque()
        #: Burst buckets: ``(time, priority) -> deque of events`` plus
        #: a key heap of ``(time, priority, first_eid)`` 3-tuples (one
        #: per live bucket).  ``_last_key`` tracks the most recent heap
        #: key to detect back-to-back bursts.
        self._buckets: dict = {}
        self._bucket_heap: list = []
        self._last_key = None
        #: Fusion state for :meth:`schedule_callback`: the most recent
        #: pending bulk entry on the heap side (with its key) and on
        #: the now ladder.  ``_lb`` is invalidated whenever a normal
        #: event is scheduled at the same key, which is exactly the
        #: condition under which further fusion would reorder
        #: callbacks; the now-ladder check is positional (the bulk must
        #: still be the deque tail) and needs no invalidation.
        self._lb: Optional[_Bulk] = None
        self._lb_key = None
        self._lbn: Optional[_Bulk] = None
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: Freelist for :meth:`sleep` timeouts.
        self._timeout_pool: list = []
        #: Cancelled-but-still-queued entry count (depth accounting).
        self._ncancelled = 0
        #: Total events processed by :meth:`run`/:meth:`step` (scaling
        #: diagnostics; maintained cheaply in the run loop).  A fused
        #: bulk entry counts its full fan-out; cancelled entries do not
        #: count.
        self.events_processed = 0
        #: Sampled high-water mark of the pending-event count
        #: (cancelled entries excluded).
        self.max_queue_depth = 0
        #: Total events lazily cancelled (diagnostics).
        self.events_cancelled = 0
        #: Total callbacks that fused into an existing bulk entry
        #: instead of costing their own queue slot (diagnostics).
        self.bulk_merged = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None between events)."""
        return self._active_proc

    @property
    def queue_impl(self) -> str:
        """Name of the active scheduler implementation."""
        return "heapq" if self._spec else "bucketed"

    # -- factories -----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Timeout:
        """A pooled, auto-freed :meth:`timeout` for fire-and-forget waits.

        The returned event is recycled into a freelist right after its
        callbacks ran, so the caller must yield it immediately and must
        not keep a reference past the wakeup — the contract of every
        per-message overhead wait in the messaging hot paths, where
        this removes one object allocation per message.  Delay
        validation (negative/NaN/inf) is re-applied on every reuse.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            if delay != delay or delay == _INF:
                raise ValueError(f"non-finite delay {delay}")
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._ok = True
            t._defused = False
            t._cancelled = False
            t._delay = delay
            self.schedule(t, delay=delay)
            return t
        return _PooledTimeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        from .events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from .events import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to fire after ``delay`` time units."""
        if self._spec:
            heappush(
                self._queue, (self._now + delay, priority, next(self._eid), event)
            )
            return
        if delay == 0.0 and priority == NORMAL:
            self._nowq.append((self._now, NORMAL, next(self._eid), event))
            return
        at = self._now + delay
        key = (at, priority)
        if key == self._lb_key:
            # A normal event lands between bulk callbacks of this key:
            # further fusion would fire later callbacks ahead of it.
            self._lb = None
            self._lb_key = None
        bucket = self._buckets.get(key)
        if bucket is not None:
            # Every event of a bucketed key *must* join the bucket so
            # no entry of that key with a larger eid exists outside it.
            bucket.append(event)
            return
        if key == self._last_key:
            # Back-to-back repeat: open a bucket for the burst.  The
            # fresh eid under-approximates all future bucket members
            # while every earlier entry of this key (singletons on the
            # main heap) has a smaller eid still — head comparisons
            # stay exact.
            self._buckets[key] = deque((event,))
            heappush(self._bucket_heap, (at, priority, next(self._eid)))
            return
        heappush(self._queue, (at, priority, next(self._eid), event))
        self._last_key = key

    def schedule_many(
        self, events: Iterable[Event], priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Bulk-schedule ``events`` with one shared (priority, delay).

        Semantically identical to calling :meth:`schedule` per event in
        iteration order.  Zero-delay batches extend the now ladder;
        delayed batches go straight into a burst bucket — one key-heap
        push for the whole batch instead of one heap push per event.
        """
        if self._spec:
            queue = self._queue
            eid = self._eid
            at = self._now + delay
            for ev in events:
                heappush(queue, (at, priority, next(eid), ev))
            return
        if delay == 0.0 and priority == NORMAL:
            now = self._now
            eid = self._eid
            self._nowq.extend((now, NORMAL, next(eid), ev) for ev in events)
            return
        batch = deque(events)
        if not batch:
            return
        at = self._now + delay
        key = (at, priority)
        if key == self._lb_key:
            self._lb = None
            self._lb_key = None
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.extend(batch)
            return
        self._buckets[key] = batch
        heappush(self._bucket_heap, (at, priority, next(self._eid)))
        self._last_key = key

    def schedule_callback(
        self,
        fn: Callable[[Any], None],
        arg: Any = None,
        priority: int = NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Schedule ``fn(arg)`` to run after ``delay`` — fused when possible.

        The cheap path for fire-and-forget completions (message
        landings, NIC releases): no :class:`Event` is allocated, and
        consecutive callbacks targeting the same ``(time, priority)``
        slot *fuse* into one pending :class:`_Bulk` entry, running
        back-to-back in one dispatch.  Fusion preserves the exact
        unfused firing order: a bulk only accepts another callback
        while no other event has been scheduled at its key since the
        bulk was created (heap side) or while it is still the tail of
        the now ladder (zero-delay side), so nothing can sort between
        its members.  Timing is identical by construction — fusion
        never changes *when* a callback runs, only how many queue
        entries carry the batch.
        """
        if self._spec:
            bulk = _Bulk()
            bulk.callbacks.append((fn, arg))
            heappush(
                self._queue, (self._now + delay, priority, next(self._eid), bulk)
            )
            return
        if delay == 0.0 and priority == NORMAL:
            nowq = self._nowq
            lbn = self._lbn
            if lbn is not None and nowq and nowq[-1][3] is lbn:
                lbn.callbacks.append((fn, arg))
                self.bulk_merged += 1
                return
            bulk = _Bulk()
            bulk.callbacks.append((fn, arg))
            self._lbn = bulk
            nowq.append((self._now, NORMAL, next(self._eid), bulk))
            return
        at = self._now + delay
        key = (at, priority)
        lb = self._lb
        if lb is not None and key == self._lb_key and lb.callbacks is not None:
            lb.callbacks.append((fn, arg))
            self.bulk_merged += 1
            return
        bulk = _Bulk()
        bulk.callbacks.append((fn, arg))
        self._lb = bulk
        self._lb_key = key
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.append(bulk)
            return
        if key == self._last_key:
            self._buckets[key] = deque((bulk,))
            heappush(self._bucket_heap, (at, priority, next(self._eid)))
            return
        heappush(self._queue, (at, priority, next(self._eid), bulk))
        self._last_key = key

    def _pop_next(self):
        """Pop the globally next entry; returns ``(time, event)``."""
        nowq = self._nowq
        queue = self._queue
        bheap = self._bucket_heap
        if bheap:
            best = bheap[0]
            src = 2
            if queue and queue[0] < best:
                best = queue[0]
                src = 1
            if nowq and nowq[0] < best:
                best = nowq[0]
                src = 0
            if src == 2:
                t, p, _ = bheap[0]
                key = (t, p)
                bucket = self._buckets[key]
                event = bucket.popleft()
                if not bucket:
                    heappop(bheap)
                    del self._buckets[key]
                return t, event
            if src == 1:
                t, _, _, event = heappop(queue)
                return t, event
            t, _, _, event = nowq.popleft()
            return t, event
        if nowq:
            if queue and queue[0] < nowq[0]:
                t, _, _, event = heappop(queue)
            else:
                t, _, _, event = nowq.popleft()
            return t, event
        if queue:
            t, _, _, event = heappop(queue)
            return t, event
        raise EmptySchedule()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        t = _INF
        nowq = self._nowq
        queue = self._queue
        bheap = self._bucket_heap
        if nowq:
            t = nowq[0][0]
        if queue and queue[0][0] < t:
            t = queue[0][0]
        if bheap and bheap[0][0] < t:
            t = bheap[0][0]
        return t

    def queue_depth(self) -> int:
        """Exact count of pending (non-cancelled) queue entries."""
        depth = len(self._queue) + len(self._nowq) - self._ncancelled
        if self._buckets:
            depth += sum(map(len, self._buckets.values()))
        return depth

    def step(self) -> None:
        """Process the next scheduled live event.

        Cancelled entries surfacing first are drained (uncounted).
        Raises :class:`EmptySchedule` if no events are left.
        Keep in sync with the inlined loop in :meth:`run`.
        """
        while True:
            self._now, event = self._pop_next()
            callbacks, event.callbacks = event.callbacks, None
            if callbacks is None:
                if event._cancelled:
                    self._ncancelled -= 1
                    continue
                # Event was already processed (condition shortcut).
                self.events_processed += 1
                return
            break
        if event.__class__ is _Bulk:
            self.events_processed += len(callbacks)
            for fn, arg in callbacks:
                fn(arg)
            return
        self.events_processed += 1
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody waited on: crash the simulation so
            # errors in detached processes are never silently dropped.
            exc = event._value
            raise exc
        if event.__class__ is _PooledTimeout:
            event._gen += 1
            self._timeout_pool.append(event)

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until is None`` — run until no events remain.
        * number — run until simulated time reaches it.
        * :class:`Event` — run until the event fires; returns its value.
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value
                until.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until ({at}) must be >= now ({self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(_stop_simulation)
                self.schedule(stop, priority=URGENT, delay=at - self._now)

        # Inlined step() with all queues bound locally: this loop
        # executes once per simulated event (millions per sweep), and
        # the per-iteration attribute/call overhead of delegating to
        # step() is measurable.  Keep the two bodies in sync.
        queue = self._queue
        nowq = self._nowq
        bheap = self._bucket_heap
        buckets = self._buckets
        pool = self._timeout_pool
        sample_mask = self._DEPTH_SAMPLE_MASK
        nevents = 0
        max_depth = self.max_queue_depth
        try:
            while True:
                if bheap:
                    # Buckets live: 3-way merge.  The bucket head wins
                    # ties by construction (its first_eid bounds every
                    # member from below; see the module docstring).
                    best = bheap[0]
                    src = 2
                    if queue and queue[0] < best:
                        best = queue[0]
                        src = 1
                    if nowq and nowq[0] < best:
                        best = nowq[0]
                        src = 0
                    if src == 2:
                        t, p, _ = bheap[0]
                        key = (t, p)
                        bucket = buckets[key]
                        event = bucket.popleft()
                        self._now = t
                        if not bucket:
                            heappop(bheap)
                            del buckets[key]
                    elif src == 1:
                        self._now, _, _, event = heappop(queue)
                    else:
                        self._now, _, _, event = nowq.popleft()
                elif nowq:
                    if queue and queue[0] < nowq[0]:
                        self._now, _, _, event = heappop(queue)
                    else:
                        self._now, _, _, event = nowq.popleft()
                elif queue:
                    self._now, _, _, event = heappop(queue)
                else:
                    raise EmptySchedule()
                nevents += 1
                if not nevents & sample_mask:
                    depth = len(queue) + len(nowq) - self._ncancelled
                    if buckets:
                        depth += sum(map(len, buckets.values()))
                    if depth > max_depth:
                        max_depth = depth
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is None:
                    if event._cancelled:
                        # Lazily-cancelled entry: not an event that
                        # happened — keep the diagnostics clean.
                        nevents -= 1
                        self._ncancelled -= 1
                    continue  # already processed (condition shortcut)
                cls = event.__class__
                if cls is _Bulk:
                    # Fused bulk delivery: one queue entry, many
                    # callbacks; the fan-out still counts as events.
                    nevents += len(callbacks) - 1
                    for fn, arg in callbacks:
                        fn(arg)
                    continue
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: crash the
                    # simulation so errors in detached processes are
                    # never silently dropped.
                    raise event._value
                if cls is _PooledTimeout:
                    event._gen += 1
                    pool.append(event)
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "ran out of events before the awaited event fired"
                ) from None
            return None
        finally:
            self.events_processed += nevents
            self.max_queue_depth = max_depth


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value
