"""Core of the discrete-event simulation kernel.

This is a compact, dependency-free kernel in the style of SimPy:
*processes* are Python generators that ``yield`` :class:`Event` objects
and are resumed when those events fire.  Simulated time only advances
between events; all computation between yields happens at a single
instant of virtual time.

The kernel is deterministic: events scheduled for the same time fire in
(priority, insertion-order) order, so repeated runs of the same program
produce identical traces.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for internal bookkeeping events (fire first).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

#: Sentinel for "event has no value yet".
_PENDING = object()

_INF = float("inf")


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *untriggered*, becomes *triggered* when it gets
    scheduled with a value (or an exception), and *processed* after its
    callbacks have run.  Processes wait for events by yielding them.
    """

    # One Event (and usually several) is allocated per message, timeout
    # and process across millions of simulated events, so the whole
    # hierarchy is slotted.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "__weakref__")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        #: Set when a failed event's exception was delivered somewhere.
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event fired successfully (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        if self._value is _PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state/value of ``event``.

        Useful as a callback to chain events.
        """
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "Event":
        from .events import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Event":
        from .events import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        if delay != delay or delay == _INF:
            # NaN compares unequal to itself; NaN/inf delays would
            # poison the heap ordering of every later event.
            raise ValueError(f"non-finite delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout({self._delay}) at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a new :class:`Process`."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A process: wraps a generator yielding events.

    The process object is itself an event that fires (with the
    generator's return value) when the generator terminates.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting for (None when
        #: the process is active or terminated).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into this process.

        The process is rescheduled immediately; the event it was
        waiting for is abandoned (but not cancelled for other waiters).
        """
        if not self.is_alive:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._resume]
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Resume the generator with the value of ``event``."""
        env = self.env
        # If we were interrupted while waiting for another event, stop
        # listening on that event.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        env._active_proc = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(type(exc), exc, None)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc_t = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc_t
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event

        env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process({self.name}) at {id(self):#x}>"


class Environment:
    """Execution environment of a simulation.

    Holds the clock and the event queue, and provides factory helpers
    for the common event types.
    """

    #: Sampling stride for the queue-depth high-water mark kept by
    #: :meth:`run` (power of two; sampled every N events).
    _DEPTH_SAMPLE_MASK = 4095

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        #: The "now ladder": zero-delay NORMAL-priority events in
        #: insertion order.  These are the overwhelming majority of
        #: schedules (succeed/trigger chains), and a deque append/pop
        #: replaces an O(log n) heap operation for each.  Entries are
        #: full ``(time, priority, eid, event)`` tuples so the pop rule
        #: is a plain tuple comparison against the heap head; because
        #: time never decreases and eids increase, the deque is always
        #: sorted, and the two-queue merge pops events in exactly the
        #: single-heap order.
        self._nowq: deque = deque()
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: Total events processed by :meth:`run`/:meth:`step` (scaling
        #: diagnostics; maintained cheaply in the run loop).
        self.events_processed = 0
        #: Sampled high-water mark of the pending-event count.
        self.max_queue_depth = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing (None between events)."""
        return self._active_proc

    # -- factories -----------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        from .events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from .events import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling ----------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Schedule ``event`` to fire after ``delay`` time units."""
        if delay == 0.0 and priority == NORMAL:
            self._nowq.append((self._now, NORMAL, next(self._eid), event))
        else:
            heappush(
                self._queue, (self._now + delay, priority, next(self._eid), event)
            )

    def schedule_many(
        self, events: Iterable[Event], priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Bulk-schedule ``events`` with one shared (priority, delay).

        Semantically identical to calling :meth:`schedule` per event in
        iteration order, but the queue selection, time arithmetic, and
        attribute lookups are hoisted out of the loop — the win matters
        when a collective or a batched I/O phase releases hundreds of
        same-time events at once.
        """
        eid = self._eid
        if delay == 0.0 and priority == NORMAL:
            now = self._now
            self._nowq.extend((now, NORMAL, next(eid), ev) for ev in events)
        else:
            queue = self._queue
            at = self._now + delay
            for ev in events:
                heappush(queue, (at, priority, next(eid), ev))

    def _pop_next(self):
        """Pop the globally next (time, priority, eid, event) entry."""
        nowq = self._nowq
        queue = self._queue
        if nowq:
            if queue and queue[0] < nowq[0]:
                return heappop(queue)
            return nowq.popleft()
        if queue:
            return heappop(queue)
        raise EmptySchedule()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        nowq = self._nowq
        queue = self._queue
        if nowq:
            if queue and queue[0] < nowq[0]:
                return queue[0][0]
            return nowq[0][0]
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` if no events are left.
        Keep in sync with the inlined loop in :meth:`run`.
        """
        self._now, _, _, event = self._pop_next()
        self.events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # Event was already processed (e.g. condition shortcut).
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody waited on: crash the simulation so
            # errors in detached processes are never silently dropped.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``until is None`` — run until no events remain.
        * number — run until simulated time reaches it.
        * :class:`Event` — run until the event fires; returns its value.
        """
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    return until.value
                until.callbacks.append(_stop_simulation)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until ({at}) must be >= now ({self._now})")
                stop = Event(self)
                stop._ok = True
                stop._value = None
                stop.callbacks.append(_stop_simulation)
                self.schedule(stop, priority=URGENT, delay=at - self._now)

        # Inlined step() with both queues bound locally: this loop
        # executes once per simulated event (millions per sweep), and
        # the per-iteration attribute/call overhead of delegating to
        # step() is measurable.  Keep the two bodies in sync.
        queue = self._queue
        nowq = self._nowq
        sample_mask = self._DEPTH_SAMPLE_MASK
        nevents = 0
        max_depth = self.max_queue_depth
        try:
            while True:
                if nowq:
                    if queue and queue[0] < nowq[0]:
                        self._now, _, _, event = heappop(queue)
                    else:
                        self._now, _, _, event = nowq.popleft()
                elif queue:
                    self._now, _, _, event = heappop(queue)
                else:
                    raise EmptySchedule()
                nevents += 1
                if not nevents & sample_mask:
                    depth = len(queue) + len(nowq)
                    if depth > max_depth:
                        max_depth = depth
                callbacks, event.callbacks = event.callbacks, None
                if callbacks is None:
                    continue  # already processed (condition shortcut)
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # A failed event nobody waited on: crash the
                    # simulation so errors in detached processes are
                    # never silently dropped.
                    raise event._value
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise SimulationError(
                    "ran out of events before the awaited event fired"
                ) from None
            return None
        finally:
            self.events_processed += nevents
            self.max_queue_depth = max_depth


def _stop_simulation(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value
