"""Shared resources for the DES kernel.

* :class:`Resource` — capacity-limited resource with FIFO (or priority)
  request queue; models CPUs, NICs, file-server service slots.
* :class:`Store` — unbounded/bounded FIFO object store; models message
  queues and mailboxes.
* :class:`FilterStore` — store whose ``get`` takes a predicate; models
  tag/source-matched message retrieval.
* :class:`Container` — continuous-level resource; models memory pools.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .core import Environment, Event

__all__ = [
    "Resource",
    "PriorityResource",
    "Request",
    "Release",
    "Store",
    "FilterStore",
    "Container",
]


class Request(Event):
    """A request to use a :class:`Resource`.

    Fires once the resource grants a slot.  Use as::

        req = resource.request()
        yield req
        ...critical section...
        resource.release(req)

    or as a context manager inside a process (releasing on exit is the
    caller's responsibility since generators cannot use ``with`` across
    yields portably; we provide ``resource.acquire()`` helpers higher up
    the stack instead).
    """

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.time = resource.env.now
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request from the queue."""
        if not self.triggered and self in self.resource.queue:
            self.resource.queue.remove(self)


class Release(Event):
    """Releases a previously granted :class:`Request` (fires instantly)."""

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)
        self.succeed()


class Resource:
    """A capacity-limited resource with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of granted (active) requests."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internals -----------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            raise RuntimeError("releasing a request that was never granted") from None
        self._grant_next()

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            request = self.queue.pop(0)
            self.users.append(request)
            request.succeed()


class PriorityResource(Resource):
    """Resource whose queue is ordered by (priority, request time).

    Lower ``priority`` values are served first.
    """

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)
        self.queue.sort(key=lambda r: (r.priority, r.time))


class StorePut(Event):
    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        store._do_put(self)


class StoreGet(Event):
    def __init__(self, store: "Store", filter: Optional[Callable] = None):
        super().__init__(store.env)
        self.filter = filter
        store._do_get(self)

    def cancel(self) -> None:
        """Withdraw an unfulfilled get from the store's waiter queue."""
        if not self.triggered:
            try:
                self._store_ref.getters.remove(self)
            except (AttributeError, ValueError):
                pass


class Store:
    """FIFO object store with optional capacity bound."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self.putters: List[StorePut] = []
        self.getters: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    # -- internals -----------------------------------------------------
    def _do_put(self, event: StorePut) -> None:
        if len(self.items) < self.capacity:
            self.items.append(event.item)
            event.succeed()
            self._serve_getters()
        else:
            self.putters.append(event)

    def _do_get(self, event: StoreGet) -> None:
        event._store_ref = self
        self.getters.append(event)
        self._serve_getters()

    def _serve_getters(self) -> None:
        # Serve waiting getters FIFO while items are available.
        while self.getters and self.items:
            getter = self.getters[0]
            item = self._match(getter)
            if item is _NO_MATCH:
                break
            self.getters.pop(0)
            getter.succeed(item)
            self._admit_putters()

    def _match(self, getter: StoreGet) -> Any:
        return self.items.pop(0)

    def _admit_putters(self) -> None:
        while self.putters and len(self.items) < self.capacity:
            putter = self.putters.pop(0)
            self.items.append(putter.item)
            putter.succeed()


_NO_MATCH = object()


class FilterStore(Store):
    """Store whose ``get(filter)`` retrieves the first matching item.

    Unlike the plain :class:`Store`, *every* waiting getter is checked
    against the available items whenever the store changes, so a getter
    with a narrow filter does not block getters behind it.
    """

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        return StoreGet(self, filter)

    def _serve_getters(self) -> None:
        progress = True
        while progress:
            progress = False
            for getter in list(self.getters):
                if getter.triggered:
                    self.getters.remove(getter)
                    continue
                for i, item in enumerate(self.items):
                    if getter.filter is None or getter.filter(item):
                        del self.items[i]
                        self.getters.remove(getter)
                        getter.succeed(item)
                        self._admit_putters()
                        progress = True
                        break


class ContainerPut(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount
        container._do_put(self)


class ContainerGet(Event):
    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be > 0")
        super().__init__(container.env)
        self.amount = amount
        container._do_get(self)


class Container:
    """A continuous-level resource (e.g. a memory pool in bytes)."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be > 0")
        if not 0 <= init <= capacity:
            raise ValueError("init must be within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self.putters: List[ContainerPut] = []
        self.getters: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    # -- internals -----------------------------------------------------
    def _do_put(self, event: ContainerPut) -> None:
        self.putters.append(event)
        self._settle()

    def _do_get(self, event: ContainerGet) -> None:
        self.getters.append(event)
        self._settle()

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self.putters:
                put = self.putters[0]
                if self._level + put.amount <= self.capacity:
                    self.putters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self.getters:
                get = self.getters[0]
                if get.amount <= self._level:
                    self.getters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progress = True
