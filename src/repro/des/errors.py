"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the DES kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` at ``until``."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The interrupting party supplies ``cause``, available as
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        return self.args[0]
