"""Discrete-event simulation kernel (SimPy-style, dependency-free).

The kernel provides virtual time, generator-based processes, composable
events, and shared resources.  Everything else in :mod:`repro` — the
cluster model, virtual MPI, filesystems, and the I/O libraries — runs on
top of this kernel, so a whole multi-hour "run" of the rocket simulation
executes in milliseconds of wall time while producing faithful virtual
timings.
"""

from .core import NORMAL, URGENT, Environment, Event, Process, Timeout
from .errors import EmptySchedule, Interrupt, SimulationError, StopSimulation
from .events import AllOf, AnyOf, Condition, ConditionValue
from .resources import (
    Container,
    FilterStore,
    PriorityResource,
    Release,
    Request,
    Resource,
    Store,
)
from .sync import CondVar, CyclicBarrier, Mutex, Semaphore

__all__ = [
    "Environment",
    "Event",
    "Process",
    "Timeout",
    "URGENT",
    "NORMAL",
    "EmptySchedule",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Resource",
    "PriorityResource",
    "Request",
    "Release",
    "Store",
    "FilterStore",
    "Container",
    "Mutex",
    "CondVar",
    "Semaphore",
    "CyclicBarrier",
]
