"""Composite (condition) events: AllOf / AnyOf."""

from __future__ import annotations

from typing import Callable, List

from .core import Event, URGENT

__all__ = ["Condition", "AllOf", "AnyOf", "ConditionValue"]


class ConditionValue:
    """Ordered mapping from events to their values.

    Returned as the value of a fired :class:`Condition`.  Only events
    that have fired appear.
    """

    def __init__(self):
        self.events: List[Event] = []

    def __getitem__(self, key: Event):
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return list(self.events)

    def values(self):
        return [e._value for e in self.events]

    def items(self):
        return [(e, e._value) for e in self.events]

    def todict(self):
        return dict(self.items())

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Fires when ``evaluate(events, n_fired)`` becomes true.

    Fails immediately if any constituent event fails.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate: Callable, events: List[Event]):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")

        if not self._events or self._evaluate(self._events, 0):
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _build_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if event.callbacks is None and event._ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self._count += 1
            if self._evaluate(self._events, self._count):
                self.succeed(self._build_value())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_event(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when *all* of ``events`` have fired."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when *any* of ``events`` has fired."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.any_event, events)
