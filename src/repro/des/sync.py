"""Synchronization primitives built on the DES kernel.

These mirror the pthread primitives T-Rochdf relies on (mutex, condition
variable) plus a semaphore and a reusable barrier for SPMD code.

All primitives follow the generator-process convention: methods that may
block return an event (or a generator to delegate to with ``yield
from``), never block the Python interpreter.
"""

from __future__ import annotations

from typing import List, Optional

from .core import Environment, Event

__all__ = ["Mutex", "CondVar", "Semaphore", "CyclicBarrier"]


class Mutex:
    """A non-reentrant mutual-exclusion lock.

    Usage inside a process::

        yield mutex.acquire()
        ...critical section...
        mutex.release()
    """

    def __init__(self, env: Environment):
        self.env = env
        self._locked = False
        self._waiters: List[Event] = []

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        event = Event(self.env)
        if not self._locked:
            self._locked = True
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError("release of an unlocked Mutex")
        if self._waiters:
            # Hand the lock directly to the next waiter (no unlock gap).
            self._waiters.pop(0).succeed()
        else:
            self._locked = False


class CondVar:
    """A condition variable associated with a :class:`Mutex`.

    ``wait()`` must be called with the mutex held; it atomically
    releases the mutex and suspends, and re-acquires the mutex before
    returning.  Use with ``yield from``::

        yield mutex.acquire()
        while not predicate():
            yield from cond.wait()
        ...
        mutex.release()
    """

    def __init__(self, env: Environment, mutex: Mutex):
        self.env = env
        self.mutex = mutex
        self._waiters: List[Event] = []

    def wait(self):
        """Generator: release mutex, sleep until notified, re-acquire."""
        if not self.mutex.locked:
            raise RuntimeError("CondVar.wait() without holding the mutex")
        event = Event(self.env)
        self._waiters.append(event)
        self.mutex.release()
        yield event
        yield self.mutex.acquire()

    def notify(self, n: int = 1) -> None:
        """Wake up to ``n`` waiters (mutex need not be held, as in POSIX)."""
        for _ in range(min(n, len(self._waiters))):
            self._waiters.pop(0).succeed()

    def notify_all(self) -> None:
        self.notify(len(self._waiters))


class Semaphore:
    """A counting semaphore."""

    def __init__(self, env: Environment, value: int = 1):
        if value < 0:
            raise ValueError("initial value must be >= 0")
        self.env = env
        self._value = value
        self._waiters: List[Event] = []

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        event = Event(self.env)
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).succeed()
        else:
            self._value += 1


class CyclicBarrier:
    """A reusable barrier for ``parties`` processes.

    Each participant does ``yield barrier.wait()``; all are released
    when the last one arrives.  The barrier resets automatically for
    the next round.
    """

    def __init__(self, env: Environment, parties: int):
        if parties <= 0:
            raise ValueError("parties must be > 0")
        self.env = env
        self.parties = parties
        self._arrived = 0
        self._gate = Event(env)
        #: Number of completed rounds (useful for tests/diagnostics).
        self.generation = 0

    def wait(self) -> Event:
        self._arrived += 1
        gate = self._gate
        if self._arrived == self.parties:
            self._arrived = 0
            self.generation += 1
            self._gate = Event(self.env)
            gate.succeed(self.generation)
        return gate
