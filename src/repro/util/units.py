"""Unit constants and formatting helpers.

Simulated time is in **seconds**; data sizes in **bytes**; bandwidths in
**bytes/second**.  These helpers keep hardware model parameters legible.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "USEC",
    "MSEC",
    "MINUTE",
    "fmt_bytes",
    "fmt_bandwidth",
    "fmt_time",
]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

USEC = 1e-6
MSEC = 1e-3
MINUTE = 60.0


def fmt_bytes(n: float) -> str:
    """Human-readable byte count: ``fmt_bytes(3*MB) == '3.00 MB'``."""
    n = float(n)
    for unit, div in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= div:
            return f"{n / div:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_bandwidth(bps: float) -> str:
    """Human-readable bandwidth: ``fmt_bandwidth(875*MB) == '875.00 MB/s'``."""
    return fmt_bytes(bps) + "/s"


def fmt_time(seconds: float) -> str:
    """Human-readable duration with µs/ms/s/min scaling."""
    s = float(seconds)
    if abs(s) < MSEC:
        return f"{s / USEC:.1f} us"
    if abs(s) < 1.0:
        return f"{s / MSEC:.2f} ms"
    if abs(s) < 2 * MINUTE:
        return f"{s:.2f} s"
    return f"{s / MINUTE:.2f} min"
