"""Shared utilities: units, statistics, and tracing."""

from .stats import Summary, best_of, mean_ci, t_critical_95
from .trace import TraceRecord, Tracer
from .units import (
    GB,
    KB,
    MB,
    MINUTE,
    MSEC,
    TB,
    USEC,
    fmt_bandwidth,
    fmt_bytes,
    fmt_time,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "USEC",
    "MSEC",
    "MINUTE",
    "fmt_bytes",
    "fmt_bandwidth",
    "fmt_time",
    "Summary",
    "best_of",
    "mean_ci",
    "t_critical_95",
    "Tracer",
    "TraceRecord",
]
