"""Small statistics helpers for the benchmark harness.

The paper reports Turing numbers as the *best of five consecutive runs*
(shared, unscheduled nodes) and Frost numbers as the *mean of three runs
with 95% confidence intervals*.  These helpers implement exactly those
two summaries without requiring scipy at runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence

__all__ = ["Summary", "best_of", "mean_ci", "t_critical_95"]

# Two-sided 95% Student-t critical values for df = 1..30 (then normal).
_T95 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_critical_95(df: int) -> float:
    """Two-sided 95% Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("df must be >= 1")
    if df <= len(_T95):
        return _T95[df - 1]
    return 1.960


@dataclass(frozen=True)
class Summary:
    """A summarized sample: central value plus a half-width error bar."""

    value: float
    halfwidth: float
    n: int

    @property
    def low(self) -> float:
        return self.value - self.halfwidth

    @property
    def high(self) -> float:
        return self.value + self.halfwidth

    def __str__(self) -> str:
        if self.halfwidth:
            return f"{self.value:.2f} ± {self.halfwidth:.2f}"
        return f"{self.value:.2f}"


def best_of(samples: Sequence[float]) -> Summary:
    """Best (minimum) of the samples — the paper's Turing methodology."""
    samples = list(samples)
    if not samples:
        raise ValueError("need at least one sample")
    return Summary(value=min(samples), halfwidth=0.0, n=len(samples))


def mean_ci(samples: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean with a 95% CI half-width — the paper's Frost methodology.

    With a single sample the half-width is 0 (no variance information).
    Only ``confidence == 0.95`` is supported (matching the paper).
    """
    if confidence != 0.95:
        raise ValueError("only 95% confidence supported")
    samples = list(samples)
    n = len(samples)
    if n == 0:
        raise ValueError("need at least one sample")
    mean = sum(samples) / n
    if n == 1:
        return Summary(value=mean, halfwidth=0.0, n=1)
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(var / n)
    return Summary(value=mean, halfwidth=t_critical_95(n - 1) * sem, n=n)
