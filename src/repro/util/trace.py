"""Structured event tracing for simulations (compatibility shim).

A :class:`Tracer` collects ``(time, category, rank, message)`` records.
It is cheap when disabled (the default) and lets tests and examples
inspect exactly what the I/O libraries did and when.

Since the introduction of :mod:`repro.obs`, the tracer is a thin shim
over an :class:`repro.obs.Recorder`'s event stream: every job owns one
recorder holding both the legacy free-form events and the structured
per-operation :class:`~repro.obs.IORecord` stream, so old call sites
(``tracer.log``/``tracer.records``) keep working unchanged while new
code reads ``tracer.recorder``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..obs.records import Recorder, TraceRecord

__all__ = ["TraceRecord", "Tracer"]


class Tracer:
    """Collects trace records; disabled tracers drop records for free.

    ``recorder`` is the backing :class:`~repro.obs.Recorder`; a private
    one is created when none is given, so a standalone tracer behaves
    exactly as before.
    """

    def __init__(self, enabled: bool = False, recorder: Optional[Recorder] = None):
        self.enabled = enabled
        self.recorder = recorder if recorder is not None else Recorder()

    @property
    def records(self) -> List[TraceRecord]:
        return self.recorder.events

    def log(self, time: float, category: str, rank: int, message: str) -> None:
        if self.enabled:
            self.recorder.log_event(time, category, rank, message)

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def by_rank(self, rank: int) -> List[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self) -> str:
        return "\n".join(str(r) for r in self.records)
