"""Structured event tracing for simulations.

A :class:`Tracer` collects ``(time, category, rank, message)`` records.
It is cheap when disabled (the default) and lets tests and examples
inspect exactly what the I/O libraries did and when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    time: float
    category: str
    rank: int
    message: str

    def __str__(self) -> str:
        return f"[{self.time:12.6f}] r{self.rank:<4d} {self.category:<12s} {self.message}"


class Tracer:
    """Collects trace records; disabled tracers drop records for free."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def log(self, time: float, category: str, rank: int, message: str) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, category, rank, message))

    def by_category(self, category: str) -> List[TraceRecord]:
        return [r for r in self.records if r.category == category]

    def by_rank(self, rank: int) -> List[TraceRecord]:
        return [r for r in self.records if r.rank == rank]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def dump(self) -> str:
        return "\n".join(str(r) for r in self.records)
