"""Declarative fault plans.

A :class:`FaultPlan` is pure data: a tuple of fault specs describing
*what* goes wrong and *when* (virtual time).  The
:class:`repro.faults.injector.FaultInjector` turns a plan into live
hooks on a :class:`repro.cluster.machine.Machine`; everything the
injector does is derived from the plan plus the machine seed, so two
runs with the same (spec, seed, plan) triple fail identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "ServerCrash",
    "TransientEIO",
    "DiskFull",
    "MessageFault",
    "Straggler",
    "FaultPlan",
]


@dataclass(frozen=True)
class ServerCrash:
    """Kill rank ``rank`` (its DES process is interrupted) at ``at_time``.

    Named for its main use — killing a Rocpanda I/O server — but any
    rank can be targeted.  The victim must already be past collective
    initialization at ``at_time``, and its surviving peers must be able
    to make progress without it (see DESIGN.md, fault model).
    """

    rank: int
    at_time: float


@dataclass(frozen=True)
class TransientEIO:
    """Fail the next ``count`` I/O ops matching ``path_prefix``.

    ``op`` selects which direction faults: ``"write"`` (the default,
    hooked before any byte lands) or ``"read"`` (hooked in the checked
    read entry point the coalesced restart path uses).  Failures begin
    at virtual time ``start``; each raises
    :class:`repro.fs.vfs.TransientIOError`.  A retry after the budget is
    exhausted succeeds — the canonical transient-EIO shape.
    """

    path_prefix: str = ""
    start: float = 0.0
    count: int = 1
    op: str = "write"

    def __post_init__(self):
        if self.op not in ("write", "read"):
            raise ValueError(f"unknown TransientEIO op {self.op!r}")


@dataclass(frozen=True)
class DiskFull:
    """Clamp disk capacity to ``capacity_bytes`` during a time window.

    At ``at_time`` the disk's capacity is set so writes overflowing
    ``capacity_bytes`` raise :class:`repro.fs.vfs.DiskFullError`; after
    ``duration`` seconds the previous capacity is restored (an operator
    freed space).  ``duration=None`` leaves the clamp in place forever.
    """

    at_time: float
    capacity_bytes: int
    duration: Optional[float] = None


@dataclass(frozen=True)
class MessageFault:
    """Drop, duplicate, or delay point-to-point messages.

    Applies to the first ``count`` messages at/after ``start`` that
    match the (``src``, ``dst``, ``tag``) filter — ``None`` matches any.
    ``kind`` is ``"drop"``, ``"duplicate"``, or ``"delay"`` (adding
    ``delay`` seconds of extra flight time).
    """

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[int] = None
    start: float = 0.0
    count: int = 1
    delay: float = 0.0

    def __post_init__(self):
        if self.kind not in ("drop", "duplicate", "delay"):
            raise ValueError(f"unknown message fault kind {self.kind!r}")


@dataclass(frozen=True)
class Straggler:
    """Multiply node ``node``'s external load by ``factor`` for a window.

    Slows both compute and transfers touching the node — the classic
    slow-node failure mode on shared Turing nodes (§7.1).
    """

    node: int
    start: float
    duration: float
    factor: float = 4.0


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault specs."""

    faults: Tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __iter__(self):
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, kind: type) -> Tuple:
        return tuple(f for f in self.faults if isinstance(f, kind))
