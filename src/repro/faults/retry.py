"""Timeout / exponential-backoff retry helper for DES generators.

The I/O modules share one retry shape: attempt an operation (itself a
generator of DES events), and on a retryable fault back off
exponentially in *virtual* time and try again with a fresh generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from ..fs.vfs import WriteFaultError

__all__ = ["RetryPolicy", "retrying"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule: ``base_delay * factor**attempt``."""

    max_attempts: int = 5
    base_delay: float = 1e-3
    factor: float = 2.0
    #: Timeout for one remote attempt (used by Rocpanda's guarded sends).
    op_timeout: float = 0.25

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.base_delay * self.factor**attempt


def retrying(
    env,
    policy: RetryPolicy,
    op_factory: Callable[[], object],
    retry_on: Tuple[Type[BaseException], ...] = (WriteFaultError,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Generator: run ``op_factory()`` to completion, retrying faults.

    ``op_factory`` must return a *fresh* generator per call (a bound
    lambda), because a generator that raised cannot be resumed.  Between
    attempts the caller sleeps ``policy.delay(attempt)`` virtual
    seconds.  After ``max_attempts`` failures the last fault propagates.
    ``on_retry(attempt, exc)`` is called before each backoff — the hook
    where callers bump their retry counters.
    """
    for attempt in range(policy.max_attempts):
        try:
            result = yield from op_factory()
            return result
        except retry_on as exc:
            if attempt == policy.max_attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            yield env.timeout(policy.delay(attempt))
    raise AssertionError("unreachable")
