"""Turns a :class:`FaultPlan` into live hooks on a machine and job.

The injector owns three attachment points:

* the virtual disk's ``fault_hook`` (transient EIO) and capacity limit
  (disk-full windows) — installed at :meth:`FaultInjector.install`;
* per-node external load (stragglers) — DES processes scheduled at
  install time;
* the network's ``fault_filter`` (message drop/duplicate/delay) and
  rank-crash processes — installed by :meth:`FaultInjector.attach_job`,
  which :meth:`repro.vmpi.launcher.Job.run` calls automatically when
  ``machine.faults`` is set.

Everything is deterministic: fault times and budgets come straight from
the plan, and the injector's private RNG stream is derived from the
machine seed, so two runs with identical (spec, seed, plan) inject
identical faults.  Every injected fault is recorded as an obs trace
event and a ``"faults"`` counter so post-run rollups show what was
done to the run.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from ..fs.vfs import TransientIOError
from .plan import (
    DiskFull,
    FaultPlan,
    MessageFault,
    ServerCrash,
    Straggler,
    TransientEIO,
)

__all__ = ["FaultInjector"]


class FaultInjector:
    """Live fault state for one machine (one run)."""

    def __init__(self, machine, plan: FaultPlan):
        self.machine = machine
        self.plan = plan
        #: Private stream so fault randomness never perturbs the
        #: machine's own noise/load sampling.
        self.rng = np.random.default_rng((machine.seed << 8) ^ 0xFA)
        self._dead: Set[int] = set()
        self._recorder = None
        #: Remaining-failure budgets, one mutable cell per plan spec,
        #: split by direction (write vs read hooks).
        self._eio_budgets: List[Tuple[TransientEIO, List[int]]] = [
            (spec, [spec.count])
            for spec in plan.of_type(TransientEIO)
            if spec.op == "write"
        ]
        self._read_eio_budgets: List[Tuple[TransientEIO, List[int]]] = [
            (spec, [spec.count])
            for spec in plan.of_type(TransientEIO)
            if spec.op == "read"
        ]
        self._msg_budgets: List[Tuple[MessageFault, List[int]]] = [
            (spec, [spec.count]) for spec in plan.of_type(MessageFault)
        ]
        self._installed = False

    # -- death oracle ----------------------------------------------------
    def is_dead(self, rank: int) -> bool:
        """True once ``rank`` has been crashed by the injector."""
        return rank in self._dead

    def dead_ranks(self) -> Set[int]:
        return set(self._dead)

    # -- observability ---------------------------------------------------
    def _record(self, name: str, rank: int, message: str) -> None:
        rec = self._recorder
        if rec is not None:
            rec.record_counter("faults", name)
            rec.log_event(self.machine.env.now, "fault", rank, message)

    # -- machine-level hooks (disk, stragglers) --------------------------
    def install(self) -> None:
        """Install disk hooks and schedule time-windowed faults."""
        if self._installed:
            raise RuntimeError("fault injector already installed")
        self._installed = True
        env = self.machine.env
        if self._eio_budgets:
            self.machine.disk.fault_hook = self._disk_hook
        if self._read_eio_budgets:
            self.machine.disk.read_fault_hook = self._disk_read_hook
        for spec in self.plan.of_type(DiskFull):
            env.process(self._disk_full_proc(spec), name="fault-diskfull")
        for spec in self.plan.of_type(Straggler):
            env.process(self._straggler_proc(spec), name="fault-straggler")

    def _disk_hook(self, path: str, nbytes: int) -> None:
        now = self.machine.env.now
        for spec, budget in self._eio_budgets:
            if budget[0] <= 0 or now < spec.start:
                continue
            if not path.startswith(spec.path_prefix):
                continue
            budget[0] -= 1
            self._record("eio_injected", -1, f"EIO on write to {path}")
            raise TransientIOError(f"injected transient EIO ({path})")

    def _disk_read_hook(self, path: str, nbytes: int) -> None:
        now = self.machine.env.now
        for spec, budget in self._read_eio_budgets:
            if budget[0] <= 0 or now < spec.start:
                continue
            if not path.startswith(spec.path_prefix):
                continue
            budget[0] -= 1
            self._record("eio_injected", -1, f"EIO on read of {path}")
            raise TransientIOError(f"injected transient read EIO ({path})")

    def _disk_full_proc(self, spec: DiskFull):
        env = self.machine.env
        yield env.timeout(max(0.0, spec.at_time - env.now))
        disk = self.machine.disk
        prev = disk.capacity_bytes
        disk.set_capacity(spec.capacity_bytes)
        self._record("disk_full_window", -1, f"capacity clamped to {spec.capacity_bytes}")
        if spec.duration is not None:
            yield env.timeout(spec.duration)
            disk.set_capacity(prev)
            self._record("disk_full_cleared", -1, "capacity restored")

    def _straggler_proc(self, spec: Straggler):
        env = self.machine.env
        yield env.timeout(max(0.0, spec.start - env.now))
        node = self.machine.nodes[spec.node]
        prev = node.external_load
        node.external_load = prev * spec.factor
        self._record("straggler_window", -1, f"node {spec.node} load x{spec.factor}")
        yield env.timeout(spec.duration)
        node.external_load = prev
        self._record("straggler_cleared", -1, f"node {spec.node} load restored")

    # -- job-level hooks (crashes, message faults) -----------------------
    def attach_job(self, job, procs) -> None:
        """Arm per-job faults; called by ``Job.run`` after spawning ranks."""
        self._recorder = job.recorder
        if self._msg_budgets:
            job.network.fault_filter = self._message_decision
        env = self.machine.env
        for spec in self.plan.of_type(ServerCrash):
            if 0 <= spec.rank < len(procs):
                env.process(self._crash_proc(spec, procs), name=f"fault-crash{spec.rank}")

    def _crash_proc(self, spec: ServerCrash, procs):
        env = self.machine.env
        yield env.timeout(max(0.0, spec.at_time - env.now))
        victim = procs[spec.rank]
        if not victim.is_alive:
            return
        # Mark dead *before* the interrupt resumes the victim (URGENT):
        # survivors that poll ``is_dead`` during the victim's unwinding
        # must already see the truth.
        self._dead.add(spec.rank)
        self._record("server_crash", spec.rank, f"rank {spec.rank} crashed")
        victim.interrupt(f"injected crash of rank {spec.rank}")

    def _message_decision(
        self, src: int, dst: int, tag: int, nbytes: int
    ) -> Optional[Tuple[str, float]]:
        """Network fault filter: ``(kind, extra_delay)`` or ``None``."""
        now = self.machine.env.now
        for spec, budget in self._msg_budgets:
            if budget[0] <= 0 or now < spec.start:
                continue
            if spec.src is not None and spec.src != src:
                continue
            if spec.dst is not None and spec.dst != dst:
                continue
            if spec.tag is not None and spec.tag != tag:
                continue
            budget[0] -= 1
            self._record(f"msg_{spec.kind}", src, f"{spec.kind} msg {src}->{dst} tag {tag}")
            return (spec.kind, spec.delay)
        return None
