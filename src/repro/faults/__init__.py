"""Seeded, deterministic fault injection for the simulated I/O stack.

A :class:`FaultPlan` (pure data) describes rank crashes, VFS write
faults (transient EIO / disk-full), message drop/duplication/delay, and
straggler nodes.  ``machine.install_faults(plan)`` arms the plan; the
job launcher wires the per-job parts automatically.  All fault timing
derives from the plan and the machine seed, so failures are exactly
reproducible — the property the ``faultbench`` chaos matrix checks.
"""

from .injector import FaultInjector
from .plan import (
    DiskFull,
    FaultPlan,
    MessageFault,
    ServerCrash,
    Straggler,
    TransientEIO,
)
from .retry import RetryPolicy, retrying

__all__ = [
    "FaultPlan",
    "ServerCrash",
    "TransientEIO",
    "DiskFull",
    "MessageFault",
    "Straggler",
    "FaultInjector",
    "RetryPolicy",
    "retrying",
]
