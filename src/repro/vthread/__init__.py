"""Virtual threads on the DES kernel.

T-Rochdf (§6.2) uses one persistent POSIX I/O thread per process; this
module provides the equivalent on virtual time.  A :class:`VThread`
wraps a DES process that shares the owning rank's node; synchronization
uses :class:`~repro.des.Mutex` / :class:`~repro.des.CondVar`, mirroring
pthread mutexes and condition variables.

The I/O thread spends almost all its time blocked on filesystem
operations rather than computing, so we do not model CPU stealing from
the main thread; the main thread's visible cost of a buffered write is
just the memory copy (``RankContext.memcpy``).
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..des import CondVar, Environment, Event, Interrupt, Mutex, Process

__all__ = ["VThread", "Mutex", "CondVar"]


class VThread:
    """A background thread of control within one rank."""

    def __init__(self, env: Environment, body: Generator, name: str = "vthread"):
        self.env = env
        self.name = name
        self._proc: Process = env.process(self._run(body), name=name)

    def _run(self, body: Generator):
        result = yield from body
        return result

    @property
    def alive(self) -> bool:
        return self._proc.is_alive

    def join(self):
        """Generator: wait for the thread to finish; returns its value."""
        value = yield self._proc
        return value

    def cancel(self, cause=None) -> None:
        """Interrupt the thread (delivers :class:`Interrupt` inside it)."""
        if self._proc.is_alive:
            self._proc.interrupt(cause)

    def __repr__(self) -> str:
        return f"<VThread {self.name} alive={self.alive}>"
