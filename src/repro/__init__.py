"""repro: reproduction of "Flexible and Efficient Parallel I/O for
Large-Scale Multi-component Simulations" (Ma, Jiao, Campbell, Winslett,
IPPS 2003).

Layered architecture (bottom up):

* :mod:`repro.des` -- discrete-event simulation kernel (virtual time);
* :mod:`repro.cluster` -- machine models (Turing, ASCI Frost);
* :mod:`repro.fs` -- filesystem models (NFS, GPFS) over a real-byte disk;
* :mod:`repro.vmpi` -- virtual MPI (p2p, collectives, SPMD launcher);
* :mod:`repro.vthread` -- virtual threads (for T-Rochdf);
* :mod:`repro.shdf` -- the HDF-stand-in scientific file format;
* :mod:`repro.roccom` -- the component-integration framework;
* :mod:`repro.io` -- the paper's I/O services: Rocpanda (collective,
  active buffering), Rochdf, T-Rochdf;
* :mod:`repro.genx` -- the mini rocket simulation workload + driver;
* :mod:`repro.bench` -- the Table 1 / Fig 3(a) / Fig 3(b) harness.

Quick start::

    from repro.cluster import Machine, turing
    from repro.genx import GENxConfig, lab_scale_motor, run_genx

    machine = Machine(turing(), seed=0)
    config = GENxConfig(
        workload=lab_scale_motor(scale=0.05, steps=20, snapshot_interval=10),
        io_mode="rocpanda",
        nservers=2,
    )
    result = run_genx(machine, nprocs=18, config=config)
    print(result.computation_time, result.visible_io_time)
"""

__version__ = "1.0.0"
