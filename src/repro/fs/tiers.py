"""Storage tiers: a burst-buffer front absorbing writes at memory speed.

The paper's Rocpanda servers hide I/O latency one level up — dedicated
processes absorb snapshot data over the network and write behind the
computation.  A burst buffer pushes the same idea one level *down* the
storage stack: writes land in a bounded memory tier at memory-bandwidth
cost and are *visible-complete* immediately, while a background drain
process flushes dirty extents to the backing disk through the same
:class:`~repro.fs.coalesce.WriteCoalescer` the servers use.

Layering
--------
:class:`BurstBufferTier` is a :class:`~repro.fs.models.FileSystemModel`
that *fronts* another one (``backing``).  Its disk is a
:class:`TierDisk`: a front namespace holding the absorbed bytes whose
misses (opens, existence checks, listings) fall through to the backing
disk, so readers always see a complete namespace.  The tier never
touches ``machine.disk`` — that remains the durable backing store that
restart machines share — it only interposes on ``machine.fs``.

State machine (per file)
------------------------
``absorbing -> draining -> clean -> evicted``, with two back edges:

* any write makes a clean/evicted file dirty again (an evicted file's
  bytes re-register; the durable prefix on the backing disk is *not*
  re-drained);
* ``truncate`` starts a new *epoch*: the drain pointer resets, the
  backing file is truncated before the new epoch's first flush, and
  progress recorded for the old epoch is discarded.

Watermarks and eviction
-----------------------
Residency is bounded by ``capacity_bytes``.  Crossing the high
watermark evicts *clean* files (fully drained, LRU by last write) down
to the low watermark — dropping clean memory is free.  If an incoming
write still does not fit, the tier degrades gracefully: it *spills* —
drains the oldest dirty bytes synchronously, charging the caller the
backing write cost, which is exactly today's direct-write behaviour.

Drain journal and crash consistency
-----------------------------------
The :class:`DrainJournal` advances a file's drained pointer only
*after* the backing write completed, so the journal never claims bytes
the backing disk does not hold.  The drain appends strictly in file
order, so the backing copy is always a prefix of the front copy — a
crash mid-drain leaves a file whose SHDF commit footer is missing, and
the reader-side torn-file detection works unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..des import Environment, Event
from ..faults.retry import RetryPolicy, retrying
from .coalesce import WriteCoalescer
from .models import FileSystemModel
from .vfs import FileExists, VirtualDisk, VirtualFile, WriteFaultError

__all__ = [
    "TierConfig",
    "TierStats",
    "DrainJournal",
    "DrainFailedError",
    "TierDisk",
    "BurstBufferTier",
]


class DrainFailedError(WriteFaultError):
    """The background drain exhausted its retries; buffered data is not
    durable.  Raised by :meth:`BurstBufferTier.drain_barrier` so callers
    that promised durability (``sync``) fail loudly instead of hanging.
    """


@dataclass(frozen=True)
class TierConfig:
    """Knobs of one burst-buffer tier."""

    #: Bound on resident front-tier bytes (soft: a write that cannot
    #: spill enough room still lands, it just waits on the spill first).
    capacity_bytes: int = 256 * 1024 * 1024
    #: Absorb bandwidth — the memcpy into the tier (bytes/s).
    absorb_bw: float = 300 * 1024 * 1024
    #: Fixed per-write absorb setup cost (seconds).
    absorb_latency: float = 20e-6
    #: Flat metadata latency of the front tier (open/close/create).
    meta_latency: float = 20e-6
    #: Crossing ``high_watermark * capacity`` evicts clean files ...
    high_watermark: float = 0.75
    #: ... down to ``low_watermark * capacity`` (clean-first LRU).
    low_watermark: float = 0.5
    #: Largest extent one drain flush moves to the backing disk.
    drain_chunk_bytes: int = 4 * 1024 * 1024
    #: Backoff schedule for transient backing-disk faults hit mid-drain.
    retry: RetryPolicy = field(default_factory=RetryPolicy)


@dataclass
class TierStats:
    """Aggregate tier counters (deterministic; compared by faultbench)."""

    absorbed_bytes: int = 0
    drain_flushes: int = 0
    drained_bytes: int = 0
    evictions: int = 0
    evicted_bytes: int = 0
    spills: int = 0
    drain_retries: int = 0
    drain_failures: int = 0
    backlog_peak_bytes: int = 0


class DrainJournal:
    """Crash-consistent record of drain progress, per path.

    Entries are ``path -> (epoch, drained_bytes)``.  The invariant the
    tier maintains — advance only after the backing append returned —
    means :meth:`validate` can always prove the backing disk holds at
    least every byte the journal claims, even mid-drain.
    """

    def __init__(self):
        self._entries: Dict[str, Tuple[int, int]] = {}

    def advance(self, path: str, epoch: int, drained: int) -> None:
        cur = self._entries.get(path)
        if cur is not None and cur[0] == epoch and cur[1] >= drained:
            return  # never regress within an epoch
        self._entries[path] = (epoch, drained)

    def forget(self, path: str) -> None:
        self._entries.pop(path, None)

    def entry(self, path: str) -> Optional[Tuple[int, int]]:
        return self._entries.get(path)

    def entries(self) -> Dict[str, Tuple[int, int]]:
        return dict(self._entries)

    def validate(self, backing: VirtualDisk) -> List[str]:
        """Journal claims the backing disk cannot honour (must be empty)."""
        problems = []
        for path, (epoch, drained) in sorted(self._entries.items()):
            if drained == 0:
                continue
            if not backing.exists(path):
                problems.append(f"{path}: journal claims {drained} B, no backing file")
            elif backing.open(path).size < drained:
                problems.append(
                    f"{path}: journal claims {drained} B, backing holds "
                    f"{backing.open(path).size} B (epoch {epoch})"
                )
        return problems


class _PathState:
    """Drain bookkeeping for one front-tier file."""

    __slots__ = (
        "path", "vfile", "backing_vfile", "epoch", "drained", "known_size",
        "pending_ns", "resident", "resident_bytes", "queued",
        "in_flight", "last_touch",
    )

    def __init__(self, path: str, vfile: "_TierFile"):
        self.path = path
        self.vfile = vfile
        self.backing_vfile: Optional[VirtualFile] = None
        self.epoch = 0
        #: Bytes of the current epoch already durable on the backing disk.
        self.drained = 0
        #: Front-file size the tier has accounted for.
        self.known_size = 0
        #: The backing namespace is out of sync: the file must be
        #: (re)created/truncated there before the barrier can report
        #: clean — even if no data bytes ever arrive (empty files and
        #: truncate-only epochs must still materialise on the backing).
        self.pending_ns = False
        self.resident = False
        self.resident_bytes = 0
        self.queued = False
        self.in_flight = False
        self.last_touch = 0

    @property
    def dirty(self) -> int:
        return self.known_size - self.drained

    @property
    def needs_flush(self) -> bool:
        return self.dirty > 0 or self.pending_ns


class _TierFile(VirtualFile):
    """A front-tier file: every mutation notifies the tier."""

    def __init__(self, path: str, disk: "TierDisk", tier: "BurstBufferTier"):
        super().__init__(path, disk=disk)
        self._tier = tier

    def append(self, data) -> int:
        offset = super().append(data)
        self._tier._note_write(self)
        return offset

    def append_many(self, chunks) -> int:
        offset = super().append_many(chunks)
        self._tier._note_write(self)
        return offset

    def write_at(self, offset: int, data) -> None:
        super().write_at(offset, data)
        self._tier._note_overwrite(self, offset)

    def truncate(self) -> None:
        super().truncate()
        self._tier._note_truncate(self)


class TierDisk(VirtualDisk):
    """Front namespace of a burst tier; misses fall through to backing.

    Writers created here land in the front tier; readers opening a path
    the front no longer holds (never written here, or evicted after a
    full drain) get the backing file, which by the eviction rule is
    complete.  The front never enforces capacity through
    :class:`~repro.fs.vfs.DiskFullError` — pressure is the tier's job
    (eviction, then synchronous spill).
    """

    def __init__(self, tier: "BurstBufferTier", backing: VirtualDisk):
        super().__init__(capacity_bytes=None)
        self._tier = tier
        self.backing = backing

    def create(self, path: str, exist_ok: bool = False) -> VirtualFile:
        existing = self._files.get(path)
        if existing is not None:
            if not exist_ok:
                raise FileExists(path)
            return existing
        if self.backing.exists(path) and not exist_ok:
            raise FileExists(path)
        f = _TierFile(path, self, self._tier)
        prefilled = 0
        if self.backing.exists(path):
            # Shadow the durable content so create(exist_ok=True) keeps
            # its return-the-existing-file contract; the copied prefix
            # is already on the backing disk, so the drain starts past
            # it (no re-drain, no double write).
            data = self.backing.open(path).read()
            if data:
                f._data.extend(data)
                self._used += len(data)
                prefilled = len(data)
        self._files[path] = f
        self._tier._note_create(f, prefilled)
        return f

    def open(self, path: str) -> VirtualFile:
        f = self._files.get(path)
        if f is not None:
            return f
        return self.backing.open(path)

    def exists(self, path: str) -> bool:
        return path in self._files or self.backing.exists(path)

    def unlink(self, path: str) -> None:
        found = False
        f = self._files.pop(path, None)
        if f is not None:
            self._used -= f.size
            found = True
        if self.backing.exists(path):
            self.backing.unlink(path)
            found = True
        if not found:
            super().unlink(path)  # raises FileNotFound
        self._tier._note_unlink(path)

    def listdir(self, prefix: str = "") -> List[str]:
        names = {p for p in self._files if p.startswith(prefix)}
        names.update(self.backing.listdir(prefix))
        return sorted(names)


class BurstBufferTier(FileSystemModel):
    """Memory-speed write absorb with write-behind drain.

    Fronts ``backing`` (any :class:`FileSystemModel`): writes are
    charged at memory bandwidth and become visible-complete
    immediately; a background DES process drains dirty extents to the
    backing filesystem through a :class:`WriteCoalescer`, retrying
    transient faults with :attr:`TierConfig.retry`.  Reads delegate to
    the backing model's timing (conservative: a resident read would be
    faster, but restart dominates on cold data and the executable spec
    stays comparable).
    """

    def __init__(
        self,
        env: Environment,
        backing: FileSystemModel,
        config: Optional[TierConfig] = None,
    ):
        self.backing = backing
        self.config = config if config is not None else TierConfig()
        super().__init__(env, TierDisk(self, backing.disk))
        self.meta_latency = self.config.meta_latency
        self.journal = DrainJournal()
        self.stats = TierStats()
        self._states: Dict[str, _PathState] = {}
        #: FIFO of dirty paths awaiting the drain (deterministic order).
        self._dirty_queue: Deque[str] = deque()
        #: Total dirty (not yet durable) bytes across all files.
        self._backlog = 0
        #: Total resident front-tier bytes (clean + dirty).
        self._resident = 0
        #: Files whose backing namespace entry is out of sync (pending
        #: create/truncate); the barrier waits for these too.
        self._pending_ns = 0
        self._flushes_in_flight = 0
        self._wakeup: Optional[Event] = None
        self._barrier_waiters: List[Event] = []
        self._failure: Optional[BaseException] = None
        self._recorder = None
        self._reported_backlog_peak = 0
        #: Monotonic LRU clock (not env.now: ties must break by order).
        self._touch_clock = 0
        env.process(self._drain_loop(), name="tier-drain")

    # -- job hookup ------------------------------------------------------
    def attach_job(self, job) -> None:
        """Adopt the job's instrumentation stream (called by Job.run)."""
        self._recorder = job.recorder

    # -- properties ------------------------------------------------------
    @property
    def backlog_bytes(self) -> int:
        """Dirty bytes still awaiting drain to the backing disk."""
        return self._backlog

    @property
    def resident_bytes(self) -> int:
        """Bytes currently held in the front tier."""
        return self._resident

    # -- timing hooks ----------------------------------------------------
    def _service_meta(self, node):
        yield self.env.timeout(self.meta_latency)

    def _service_write(self, nbytes: int, node):
        cfg = self.config
        limit = cfg.capacity_bytes
        if self._resident + nbytes > cfg.high_watermark * limit:
            # Evict down to where the incoming bytes land at (or under)
            # the low watermark, not just to the low watermark itself.
            self._evict_clean(int(cfg.low_watermark * limit) - nbytes)
        if self._resident + nbytes > limit and self._backlog > 0:
            yield from self._spill(nbytes, node)
        yield self.env.timeout(cfg.absorb_latency + nbytes / cfg.absorb_bw)
        self.stats.absorbed_bytes += nbytes
        self._kick_drain()

    def _service_read(self, nbytes: int, node):
        yield from self.backing._service_read(nbytes, node)

    # -- mutation notifications (from _TierFile) -------------------------
    def _ensure_state(self, vfile: _TierFile) -> _PathState:
        state = self._states.get(vfile.path)
        if state is None:
            state = self._states[vfile.path] = _PathState(vfile.path, vfile)
        elif state.vfile is not vfile:
            # The path was re-created (fresh front file object).  The
            # epoch bump below is handled by _note_create/_note_truncate.
            state.vfile = vfile
        return state

    def _note_create(self, vfile: _TierFile, prefilled: int) -> None:
        state = self._states.get(vfile.path)
        if state is None:
            state = self._states[vfile.path] = _PathState(vfile.path, vfile)
        else:
            # Re-created over prior state: any undrained bytes of the
            # old object are gone with it.
            self._backlog -= state.dirty
            if state.resident:
                self._resident -= state.resident_bytes
            state.vfile = vfile
            state.epoch += 1
            self._set_pending_ns(state, False)
        state.drained = prefilled
        state.known_size = prefilled
        state.resident = True
        state.resident_bytes = prefilled
        state.queued = False
        self._resident += prefilled
        self.journal.advance(state.path, state.epoch, prefilled)
        self._touch(state)
        if not self.backing.disk.exists(state.path):
            # Brand-new file: the backing namespace doesn't know it yet.
            # The drain must materialise it even if no byte ever lands
            # (direct mode creates the file immediately; images must
            # stay bit-identical for empty files too).
            state.backing_vfile = None
            self._set_pending_ns(state, True)
            self._enqueue(state)
            self._kick_drain()
        self._check_barrier()

    def _note_write(self, vfile: _TierFile) -> None:
        state = self._ensure_state(vfile)
        if not state.resident:
            # Evicted file written again: its bytes re-register in full
            # (the object kept them; only the accounting had let go).
            state.resident = True
            state.resident_bytes = vfile.size
            self._resident += vfile.size
            if self.disk._files.get(vfile.path) is not vfile:
                self.disk._files[vfile.path] = vfile
                self.disk._used += vfile.size
        else:
            self._resident += vfile.size - state.resident_bytes
            state.resident_bytes = vfile.size
        added = vfile.size - state.known_size
        state.known_size = vfile.size
        if added > 0:
            self._backlog += added
            self._note_backlog_peak()
        self._touch(state)
        if state.needs_flush:
            self._enqueue(state)
        self._kick_drain()

    def _note_overwrite(self, vfile: _TierFile, offset: int) -> None:
        state = self._ensure_state(vfile)
        if offset < state.drained:
            # A rewrite below the drain pointer invalidates the durable
            # prefix; the drain is append-only, so restart the epoch
            # (truncate the backing copy and re-drain from scratch).
            self._backlog -= state.dirty
            state.drained = 0
            state.known_size = 0
            state.epoch += 1
            self._set_pending_ns(state, True)
            self.journal.advance(state.path, state.epoch, 0)
        self._note_write(vfile)

    def _note_truncate(self, vfile: _TierFile) -> None:
        state = self._states.get(vfile.path)
        if state is None:
            return
        self._backlog -= state.dirty
        if state.resident:
            self._resident -= state.resident_bytes
        state.resident_bytes = 0
        state.resident = True
        state.known_size = 0
        state.drained = 0
        state.epoch += 1
        self._set_pending_ns(state, True)
        self.journal.advance(state.path, state.epoch, 0)
        self._touch(state)
        # A truncate with no follow-up writes must still reach the
        # backing disk: schedule a (namespace-only) drain visit.
        self._enqueue(state)
        self._kick_drain()

    def _note_unlink(self, path: str) -> None:
        state = self._states.pop(path, None)
        if state is not None:
            self._backlog -= state.dirty
            if state.resident:
                self._resident -= state.resident_bytes
            if state.pending_ns:
                self._pending_ns -= 1
        self.journal.forget(path)
        self._check_barrier()

    def _set_pending_ns(self, state: _PathState, flag: bool) -> None:
        if state.pending_ns != flag:
            state.pending_ns = flag
            self._pending_ns += 1 if flag else -1

    def _enqueue(self, state: _PathState) -> None:
        if not state.queued:
            state.queued = True
            self._dirty_queue.append(state.path)

    def _touch(self, state: _PathState) -> None:
        state.last_touch = self._touch_clock
        self._touch_clock += 1

    def _note_backlog_peak(self) -> None:
        if self._backlog > self.stats.backlog_peak_bytes:
            self.stats.backlog_peak_bytes = self._backlog
        if self._recorder is not None and self._backlog > self._reported_backlog_peak:
            # Counters are additive; reporting the delta keeps the
            # rolled-up value equal to the peak backlog.
            self._recorder.record_counter(
                "tier", "drain_backlog_bytes",
                self._backlog - self._reported_backlog_peak,
            )
            self._reported_backlog_peak = self._backlog

    # -- eviction and spill ----------------------------------------------
    def _evict_clean(self, target: int) -> None:
        """Drop clean (fully drained) files, LRU-first, until resident
        bytes fall to ``target``.  Dropping clean memory is free."""
        if self._resident <= target:
            return
        candidates = sorted(
            (
                s for s in self._states.values()
                if s.resident and not s.needs_flush and not s.in_flight
                and s.resident_bytes > 0
            ),
            key=lambda s: s.last_touch,
        )
        for state in candidates:
            if self._resident <= target:
                break
            self._evict(state)

    def _evict(self, state: _PathState) -> None:
        if self.disk._files.get(state.path) is state.vfile:
            del self.disk._files[state.path]
            self.disk._used -= state.vfile.size
        self._resident -= state.resident_bytes
        self.stats.evictions += 1
        self.stats.evicted_bytes += state.resident_bytes
        state.resident = False
        state.resident_bytes = 0
        if self._recorder is not None:
            self._recorder.record_counter("tier", "tier_evictions")

    def _spill(self, incoming: int, node):
        """Generator: the tier is full of dirty data — drain synchronously
        until the incoming write fits (or nothing dirty remains),
        charging the caller the backing write cost (graceful
        degradation to direct-write behaviour)."""
        cfg = self.config
        self.stats.spills += 1
        while self._resident + incoming > cfg.capacity_bytes and self._backlog > 0:
            state = self._pick_dirty()
            if state is None:
                break  # everything dirty is already in flight elsewhere
            yield from self._flush_chunk(state, node)
            self._evict_clean(cfg.capacity_bytes - incoming)

    # -- the drain -------------------------------------------------------
    def _pick_dirty(self) -> Optional[_PathState]:
        while self._dirty_queue:
            path = self._dirty_queue.popleft()
            state = self._states.get(path)
            if state is None:
                continue
            state.queued = False
            if state.in_flight or not state.needs_flush:
                continue
            return state
        return None

    def _drain_loop(self):
        while True:
            state = self._pick_dirty()
            if state is None:
                self._check_barrier()
                ev = Event(self.env)
                self._wakeup = ev
                yield ev
                continue
            try:
                yield from self._flush_chunk(state, None)
            except WriteFaultError as exc:
                # The drain must not die silently: park the failure,
                # fail every durability barrier loudly, and stop — a
                # drain whose retries exhausted will not magically
                # succeed on the same bytes a moment later.
                self._failure = exc
                self.stats.drain_failures += 1
                waiters, self._barrier_waiters = self._barrier_waiters, []
                for waiter in waiters:
                    waiter.succeed()
                return

    def _kick_drain(self) -> None:
        ev = self._wakeup
        if ev is not None:
            self._wakeup = None
            ev.succeed()

    def _note_drain_retry(self, attempt: int, exc: BaseException) -> None:
        self.stats.drain_retries += 1
        if self._recorder is not None:
            self._recorder.record_counter("tier", "drain_retries")

    def _flush_chunk(self, state: _PathState, node):
        """Generator: move one drain chunk of ``state`` to the backing
        disk; advance the journal only after the write landed."""
        state.in_flight = True
        self._flushes_in_flight += 1
        try:
            if state.backing_vfile is None or state.pending_ns:
                yield from self.backing.meta_op(node)
                bf = self.backing.disk.create(state.path, exist_ok=True)
                if state.pending_ns:
                    bf.truncate()
                    self._set_pending_ns(state, False)
                    self.journal.advance(state.path, state.epoch, 0)
                state.backing_vfile = bf
            epoch0 = state.epoch
            start = state.drained
            end = min(state.vfile.size, start + self.config.drain_chunk_bytes)
            if end > start:
                data = state.vfile.read(start, end - start)
                t0 = self.env.now
                coalescer = WriteCoalescer(self.backing, state.backing_vfile, node=node)
                coalescer.add(data)
                yield from retrying(
                    self.env, self.config.retry,
                    coalescer.flush, on_retry=self._note_drain_retry,
                )
                if state.epoch == epoch0:
                    state.drained = end
                    self._backlog -= end - start
                    self.journal.advance(state.path, epoch0, end)
                    self.stats.drain_flushes += 1
                    self.stats.drained_bytes += end - start
                    if self._recorder is not None:
                        self._recorder.record_counter("tier", "drain_flushes")
                        self._recorder.record_io(
                            "tier", "drain_flush", -1, path=state.path,
                            nbytes=end - start, t_start=t0, t_end=self.env.now,
                            visible=False,
                        )
                # else: the file was truncated/re-created mid-flight;
                # the landed bytes are stale and the pending truncate
                # removes them before the new epoch drains.
        finally:
            state.in_flight = False
            self._flushes_in_flight -= 1
            if state.needs_flush:
                self._enqueue(state)
                self._kick_drain()
            self._check_barrier()

    # -- durability barrier ----------------------------------------------
    def _check_barrier(self) -> None:
        if (
            self._backlog == 0
            and self._flushes_in_flight == 0
            and self._pending_ns == 0
        ):
            waiters, self._barrier_waiters = self._barrier_waiters, []
            for waiter in waiters:
                waiter.succeed()

    def drain_barrier(self):
        """Generator: return once every absorbed byte is durable on the
        backing disk (zero-cost when the tier is already clean).

        Raises :class:`DrainFailedError` if the drain exhausted its
        retries — the durability promise cannot be kept.
        """
        while True:
            if self._failure is not None:
                raise DrainFailedError(
                    f"write-behind drain failed: {self._failure}"
                ) from self._failure
            if (
                self._backlog == 0
                and self._flushes_in_flight == 0
                and self._pending_ns == 0
            ):
                return
            ev = Event(self.env)
            self._barrier_waiters.append(ev)
            self._kick_drain()
            yield ev
