"""Virtual disk: real bytes behind the simulated filesystems.

The timing of I/O operations is modeled by the filesystem models in
:mod:`repro.fs.models`; the *content* lives here.  Keeping real bytes
means snapshot/restart round-trips are bit-exact and testable, and a
virtual disk can be persisted to (or loaded from) a real directory.

Write faults
------------
A disk can refuse writes in two ways, both checked *before* any byte is
mutated so a failed write never leaves partial state behind:

* ``capacity_bytes`` — a hard limit on the total bytes stored across all
  files; growth past it raises :class:`DiskFullError`.
* ``fault_hook`` — an optional callable ``hook(path, nbytes)`` installed
  by the fault injector; it may raise :class:`TransientIOError` (or any
  :class:`WriteFaultError`) to fail the write.

Read faults
-----------
Reads are checked only through :meth:`VirtualFile.read_checked`, which
consults the disk's ``read_fault_hook`` before returning any byte.  The
plain :meth:`VirtualFile.read` stays unchecked on purpose: structural
parses (``SHDFReader.open``, torn-file detection) must observe the disk
as-is, and capacity never constrains reads.  Fault-injected read paths
(the :class:`~repro.fs.coalesce.ReadCoalescer`) go through the checked
entry point so a transient read EIO can be retried.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

__all__ = [
    "VirtualFile",
    "VirtualDisk",
    "FileNotFound",
    "FileExists",
    "WriteFaultError",
    "TransientIOError",
    "DiskFullError",
]


class FileNotFound(KeyError):
    """Raised when opening a path that does not exist on the disk."""


class FileExists(KeyError):
    """Raised when exclusively creating a path that already exists."""


class WriteFaultError(OSError):
    """Base class for injected or capacity-driven write failures."""


class TransientIOError(WriteFaultError):
    """An EIO-style fault that may succeed if the write is retried."""


class DiskFullError(WriteFaultError):
    """The disk's ``capacity_bytes`` limit would be exceeded (ENOSPC)."""


class VirtualFile:
    """A byte container with append/at-offset write and ranged read."""

    def __init__(self, path: str, disk: Optional["VirtualDisk"] = None):
        self.path = path
        self.disk = disk
        self._data = bytearray()

    @property
    def size(self) -> int:
        return len(self._data)

    def _check_write(self, grow: int) -> None:
        if self.disk is not None:
            self.disk._check_write(self.path, grow)

    def append(self, data: bytes) -> int:
        """Append ``data``; returns the offset it was written at."""
        self._check_write(len(data))
        offset = len(self._data)
        self._data.extend(data)
        if self.disk is not None:
            self.disk._used += len(data)
        return offset

    def append_many(self, chunks) -> int:
        """Append several chunks as one transfer; returns the first offset.

        The fault/capacity check covers the *combined* size and runs
        before any chunk lands, so a coalesced write preserves the
        raise-before-mutate guarantee at batch granularity: either every
        chunk is appended or the file is untouched.
        """
        total = sum(len(c) for c in chunks)
        self._check_write(total)
        offset = len(self._data)
        for chunk in chunks:
            self._data.extend(chunk)
        if self.disk is not None:
            self.disk._used += total
        return offset

    def write_at(self, offset: int, data: bytes) -> None:
        if offset < 0:
            raise ValueError("negative offset")
        end = offset + len(data)
        grow = max(0, end - len(self._data))
        self._check_write(grow)
        if grow:
            self._data.extend(b"\x00" * grow)
            if self.disk is not None:
                self.disk._used += grow
        self._data[offset:end] = data

    def read(self, offset: int = 0, nbytes: Optional[int] = None) -> bytes:
        if nbytes is None:
            return bytes(self._data[offset:])
        return bytes(self._data[offset : offset + nbytes])

    def read_checked(self, offset: int = 0, nbytes: Optional[int] = None) -> bytes:
        """Ranged read that consults the disk's read fault hook first.

        Raises whatever the hook raises (a :class:`TransientIOError`
        under injection) *before* returning any data, so callers can
        retry the whole read without having consumed a partial result.
        """
        if self.disk is not None:
            want = len(self._data) - offset if nbytes is None else nbytes
            self.disk._check_read(self.path, max(0, want))
        return self.read(offset, nbytes)

    def truncate(self) -> None:
        if self.disk is not None:
            self.disk._used -= len(self._data)
        self._data.clear()

    def __repr__(self) -> str:
        return f"<VirtualFile {self.path!r} ({self.size} bytes)>"


class VirtualDisk:
    """A flat namespace of :class:`VirtualFile` objects."""

    def __init__(self, capacity_bytes: Optional[int] = None):
        self._files: Dict[str, VirtualFile] = {}
        self.capacity_bytes = capacity_bytes
        #: Optional ``hook(path, nbytes)`` consulted before every write;
        #: may raise a :class:`WriteFaultError` to fail it.
        self.fault_hook: Optional[Callable[[str, int], None]] = None
        #: Optional ``hook(path, nbytes)`` consulted by checked reads
        #: (:meth:`VirtualFile.read_checked`); may raise
        #: :class:`TransientIOError` to fail the read.  Capacity never
        #: applies to reads.
        self.read_fault_hook: Optional[Callable[[str, int], None]] = None
        self._used = 0

    def _check_write(self, path: str, grow: int) -> None:
        if self.fault_hook is not None:
            self.fault_hook(path, grow)
        cap = self.capacity_bytes
        if cap is not None and self._used + grow > cap:
            raise DiskFullError(
                f"disk full: {self._used} + {grow} > capacity {cap} ({path})"
            )

    def _check_read(self, path: str, nbytes: int) -> None:
        if self.read_fault_hook is not None:
            self.read_fault_hook(path, nbytes)

    def set_capacity(self, capacity_bytes: Optional[int]) -> None:
        """Change the capacity limit (``None`` removes it).

        Existing content is never discarded, even if it already exceeds
        the new limit; only further growth is refused.
        """
        self.capacity_bytes = capacity_bytes

    def create(self, path: str, exist_ok: bool = False) -> VirtualFile:
        if path in self._files:
            if not exist_ok:
                raise FileExists(path)
            return self._files[path]
        f = VirtualFile(path, disk=self)
        self._files[path] = f
        return f

    def open(self, path: str) -> VirtualFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        try:
            f = self._files.pop(path)
        except KeyError:
            raise FileNotFound(path) from None
        self._used -= f.size

    def listdir(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._files if p.startswith(prefix))

    @property
    def nfiles(self) -> int:
        return len(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(f.size for f in self._files.values())

    # -- persistence to a real directory -------------------------------
    def persist(self, directory: str) -> List[str]:
        """Write all virtual files under ``directory`` on the real disk.

        Path separators in virtual paths become subdirectories.
        Returns the list of real paths written.
        """
        written = []
        for path, vfile in sorted(self._files.items()):
            real = os.path.join(directory, path.lstrip("/"))
            os.makedirs(os.path.dirname(real) or ".", exist_ok=True)
            with open(real, "wb") as fh:
                fh.write(vfile.read())
            written.append(real)
        return written

    @classmethod
    def load(cls, directory: str) -> "VirtualDisk":
        """Build a virtual disk from every regular file under ``directory``."""
        disk = cls()
        for root, _dirs, names in os.walk(directory):
            for name in names:
                real = os.path.join(root, name)
                rel = os.path.relpath(real, directory)
                vf = disk.create(rel)
                with open(real, "rb") as fh:
                    vf.append(fh.read())
        return disk
