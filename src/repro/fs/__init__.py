"""Filesystem substrate: real-byte virtual disk + timing models."""

from .models import (
    FileSystemModel,
    FSMetrics,
    GPFSModel,
    LocalFSModel,
    NFSModel,
)
from .vfs import FileExists, FileNotFound, VirtualDisk, VirtualFile

__all__ = [
    "VirtualDisk",
    "VirtualFile",
    "FileNotFound",
    "FileExists",
    "FileSystemModel",
    "FSMetrics",
    "NFSModel",
    "GPFSModel",
    "LocalFSModel",
]
