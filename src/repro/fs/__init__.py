"""Filesystem substrate: real-byte virtual disk + timing models."""

from .coalesce import ReadCoalescer, WriteCoalescer, merge_extents
from .models import (
    FileSystemModel,
    FSMetrics,
    GPFSModel,
    LocalFSModel,
    NFSModel,
)
from .tiers import (
    BurstBufferTier,
    DrainFailedError,
    DrainJournal,
    TierConfig,
    TierDisk,
    TierStats,
)
from .vfs import (
    DiskFullError,
    FileExists,
    FileNotFound,
    TransientIOError,
    VirtualDisk,
    VirtualFile,
    WriteFaultError,
)

__all__ = [
    "VirtualDisk",
    "VirtualFile",
    "FileNotFound",
    "FileExists",
    "WriteFaultError",
    "TransientIOError",
    "DiskFullError",
    "FileSystemModel",
    "FSMetrics",
    "NFSModel",
    "GPFSModel",
    "LocalFSModel",
    "WriteCoalescer",
    "ReadCoalescer",
    "merge_extents",
    "TierConfig",
    "TierStats",
    "DrainJournal",
    "DrainFailedError",
    "TierDisk",
    "BurstBufferTier",
]
