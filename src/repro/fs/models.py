"""Filesystem timing models.

These model *when* I/O operations complete; the bytes themselves live in
the :class:`~repro.fs.vfs.VirtualDisk`.  All operations are generators
to be driven by a DES process (``yield from fs.write(...)``).

Three models, matching the platforms in the paper:

* :class:`NFSModel` — Turing's shared filesystem: a single NFS server.
  Writes are serialized through the server and *degrade further* under
  concurrent write demand (seek/locking interference); concurrent reads
  are tolerated much better (§7.1: "the NFS-mounted shared file system
  shows much better tolerance to concurrent reads than to concurrent
  writes").
* :class:`GPFSModel` — Frost's parallel filesystem: N server nodes,
  files striped round-robin; each server serves its queue FIFO.
* :class:`LocalFSModel` — an independent disk per node (no cross-node
  contention), for generality and unit testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..des import Environment, Resource
from ..util.units import MB, MSEC
from .vfs import VirtualDisk

__all__ = [
    "FSMetrics",
    "FileSystemModel",
    "NFSModel",
    "GPFSModel",
    "LocalFSModel",
]


@dataclass
class FSMetrics:
    """Aggregate counters maintained by every filesystem model."""

    bytes_written: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    read_ops: int = 0
    meta_ops: int = 0
    #: Total time spent inside write service (summed across streams).
    write_busy_time: float = 0.0
    read_busy_time: float = 0.0


class FileSystemModel:
    """Base class: open/meta, write, read timing operations.

    Subclasses override the three ``_service_*`` hooks to model their
    contention behaviour.  The public API is uniform:

    * ``yield from fs.meta_op(node)`` — open/close/create overhead
    * ``yield from fs.write(nbytes, node)`` — charge a write
    * ``yield from fs.read(nbytes, node)`` — charge a read

    ``node`` identifies the calling node (used by per-node local disks;
    shared filesystems ignore it).
    """

    def __init__(self, env: Environment, disk: Optional[VirtualDisk] = None):
        self.env = env
        self.disk = disk if disk is not None else VirtualDisk()
        self.metrics = FSMetrics()

    # -- public operations ----------------------------------------------
    def meta_op(self, node=None):
        """Open/close/create: small fixed-cost metadata round trip."""
        self.metrics.meta_ops += 1
        yield from self._service_meta(node)

    def meta_ops_bulk(self, count: int, node=None):
        """Charge ``count`` metadata round trips as one batched event.

        Virtual time equals ``count`` sequential :meth:`meta_op` calls
        (every model's metadata service is a flat per-op latency), but
        the DES processes a single timeout instead of ``count`` event
        chains — the wall-clock half of write coalescing.
        """
        if count < 0:
            raise ValueError("negative meta op count")
        if count == 0:
            return
        self.metrics.meta_ops += count
        yield from self._service_meta_bulk(count, node)

    def write(self, nbytes: int, node=None):
        """Charge the time for writing ``nbytes`` through this filesystem."""
        if nbytes < 0:
            raise ValueError("negative write size")
        self.metrics.write_ops += 1
        self.metrics.bytes_written += nbytes
        t0 = self.env.now
        yield from self._service_write(nbytes, node)
        self.metrics.write_busy_time += self.env.now - t0

    def read(self, nbytes: int, node=None):
        """Charge the time for reading ``nbytes`` through this filesystem."""
        if nbytes < 0:
            raise ValueError("negative read size")
        self.metrics.read_ops += 1
        self.metrics.bytes_read += nbytes
        t0 = self.env.now
        yield from self._service_read(nbytes, node)
        self.metrics.read_busy_time += self.env.now - t0

    # -- hooks -----------------------------------------------------------
    def _service_meta(self, node):
        raise NotImplementedError

    def _service_meta_bulk(self, count: int, node):
        """Batched metadata service: one timeout for ``count`` ops.

        All bundled models charge a flat ``meta_latency`` per op, so the
        batched total is exact; a subclass with contended metadata can
        override this (the fallback loops ``_service_meta``).
        """
        latency = getattr(self, "meta_latency", None)
        if latency is not None:
            yield self.env.timeout(count * latency)
        else:
            for _ in range(count):
                yield from self._service_meta(node)

    def _service_write(self, nbytes: int, node):
        raise NotImplementedError

    def _service_read(self, nbytes: int, node):
        raise NotImplementedError


class NFSModel(FileSystemModel):
    """Single-server NFS as on the Turing cluster.

    Writes: one service slot; effective bandwidth shrinks as concurrent
    write demand grows, ``bw / (1 + penalty * (demand - 1))``, modeling
    server-side interference between independent write streams.

    Reads: ``read_slots`` concurrent streams at full per-stream
    bandwidth (server read cache + no write locking).
    """

    def __init__(
        self,
        env: Environment,
        disk: Optional[VirtualDisk] = None,
        write_bw: float = 30 * MB,
        read_bw: float = 25 * MB,
        read_slots: int = 8,
        meta_latency: float = 1.5 * MSEC,
        write_penalty: float = 0.12,
        max_penalty_factor: float = 6.0,
    ):
        super().__init__(env, disk)
        self.write_bw = write_bw
        self.read_bw = read_bw
        self.meta_latency = meta_latency
        self.write_penalty = write_penalty
        self.max_penalty_factor = max_penalty_factor
        self._write_server = Resource(env, capacity=1)
        self._read_server = Resource(env, capacity=read_slots)
        #: Current number of in-flight write requests (active + queued).
        self._write_demand = 0

    def _service_meta(self, node):
        yield self.env.timeout(self.meta_latency)

    def _service_write(self, nbytes: int, node):
        self._write_demand += 1
        req = self._write_server.request()
        yield req
        try:
            factor = 1.0 + self.write_penalty * (self._write_demand - 1)
            factor = min(factor, self.max_penalty_factor)
            yield self.env.timeout(self.meta_latency + nbytes / (self.write_bw / factor))
        finally:
            self._write_demand -= 1
            self._write_server.release(req)

    def _service_read(self, nbytes: int, node):
        req = self._read_server.request()
        yield req
        try:
            yield self.env.timeout(self.meta_latency + nbytes / self.read_bw)
        finally:
            self._read_server.release(req)


class GPFSModel(FileSystemModel):
    """Striped parallel filesystem as on ASCI Frost (2 GPFS server nodes).

    Each call is assigned to a server round-robin; each server has
    ``slots`` concurrent service slots at ``server_bw`` aggregate
    bandwidth split evenly across its active streams (approximated by
    charging ``nbytes / (server_bw / slots)`` when fully loaded is
    avoided — instead we serialize per slot at full bandwidth, which
    yields the same aggregate rate with FIFO fairness).
    """

    def __init__(
        self,
        env: Environment,
        disk: Optional[VirtualDisk] = None,
        nservers: int = 2,
        server_bw: float = 60 * MB,
        slots_per_server: int = 1,
        meta_latency: float = 0.8 * MSEC,
    ):
        super().__init__(env, disk)
        if nservers <= 0:
            raise ValueError("nservers must be > 0")
        self.nservers = nservers
        self.server_bw = server_bw
        self.meta_latency = meta_latency
        self._servers = [
            Resource(env, capacity=slots_per_server) for _ in range(nservers)
        ]
        self._next = 0

    def _pick_server(self) -> Resource:
        server = self._servers[self._next % self.nservers]
        self._next += 1
        return server

    def _service_meta(self, node):
        yield self.env.timeout(self.meta_latency)

    def _service_write(self, nbytes: int, node):
        server = self._pick_server()
        req = server.request()
        yield req
        try:
            yield self.env.timeout(self.meta_latency + nbytes / self.server_bw)
        finally:
            server.release(req)

    def _service_read(self, nbytes: int, node):
        server = self._pick_server()
        req = server.request()
        yield req
        try:
            yield self.env.timeout(self.meta_latency + nbytes / self.server_bw)
        finally:
            server.release(req)


class LocalFSModel(FileSystemModel):
    """Independent disk per node: no cross-node contention."""

    def __init__(
        self,
        env: Environment,
        disk: Optional[VirtualDisk] = None,
        bw: float = 40 * MB,
        meta_latency: float = 0.3 * MSEC,
    ):
        super().__init__(env, disk)
        self.bw = bw
        self.meta_latency = meta_latency
        self._per_node: Dict[object, Resource] = {}

    def _node_disk(self, node) -> Resource:
        key = node if node is not None else "_shared"
        if key not in self._per_node:
            self._per_node[key] = Resource(self.env, capacity=1)
        return self._per_node[key]

    def _service_meta(self, node):
        yield self.env.timeout(self.meta_latency)

    def _service_write(self, nbytes: int, node):
        disk = self._node_disk(node)
        req = disk.request()
        yield req
        try:
            yield self.env.timeout(self.meta_latency + nbytes / self.bw)
        finally:
            disk.release(req)

    def _service_read(self, nbytes: int, node):
        yield from self._service_write(nbytes, node)
