"""Write-coalescing scheduler: merge pending same-file writes.

The data-sieving half of two-phase I/O (Thakur et al., PAPERS.md):
once a server has gathered many small dataset records bound for one
file, servicing them as independent filesystem writes pays per-call
latency and — under the NFS model — re-enters the contended write slot
once per record.  :class:`WriteCoalescer` instead accumulates the
pending records and flushes them as a **single** large transfer: one
``fs.write`` covering the combined payload + metadata bytes, and one
:meth:`~repro.fs.vfs.VirtualFile.append_many` mutation.

Fault semantics: ``append_many`` checks the disk's fault hooks against
the combined size *before* appending anything, so an injected write
fault leaves the file exactly as it was — the same raise-before-mutate
contract the per-record path has, now at batch granularity.  Fault-
injected code paths therefore keep using per-record writes (their
retry bookkeeping resumes at the record that faulted); the coalescer
serves the fault-free fast paths where the merge is safe and the DES
event savings are largest.
"""

from __future__ import annotations

from typing import List

__all__ = ["WriteCoalescer"]


class WriteCoalescer:
    """Accumulate pending appends to one file; flush as one transfer.

    Usage (inside a DES process)::

        c = WriteCoalescer(fs, vfile, node=node)
        for record in records:
            c.add(record, meta_bytes=driver.meta_bytes_per_dataset)
        offsets = yield from c.flush()

    ``flush`` returns the on-disk offset of every chunk, in order, so
    callers can maintain their dataset indexes exactly as if the
    records had been appended one by one.
    """

    __slots__ = ("fs", "vfile", "node", "_chunks", "_charged")

    def __init__(self, fs, vfile, node=None):
        self.fs = fs
        self.vfile = vfile
        self.node = node
        self._chunks: List = []
        #: Bytes to charge the filesystem model for (payload + per-record
        #: format metadata), which may exceed what lands in the file.
        self._charged = 0

    @property
    def pending(self) -> int:
        """Number of chunks waiting for the next flush."""
        return len(self._chunks)

    @property
    def pending_bytes(self) -> int:
        """Charged bytes accumulated since the last flush."""
        return self._charged

    def add(self, chunk, meta_bytes: int = 0) -> None:
        """Queue one bytes-like chunk (plus driver metadata to charge)."""
        self._chunks.append(chunk)
        self._charged += len(chunk) + meta_bytes

    def flush(self):
        """Generator: service all pending chunks as one large write.

        Charges a single ``fs.write`` for the combined size, lands the
        chunks with one ``append_many``, and returns the list of
        per-chunk offsets.  A no-op (empty list) when nothing is
        pending.
        """
        if not self._chunks:
            return []
        chunks = self._chunks
        yield from self.fs.write(self._charged, self.node)
        offset = self.vfile.append_many(chunks)
        offsets = []
        for chunk in chunks:
            offsets.append(offset)
            offset += len(chunk)
        self._chunks = []
        self._charged = 0
        return offsets
