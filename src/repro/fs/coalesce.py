"""I/O-coalescing schedulers: merge pending same-file accesses.

The data-sieving core of two-phase I/O (Thakur et al., PAPERS.md),
applied in both directions:

* :class:`WriteCoalescer` — once a server has gathered many small
  dataset records bound for one file, servicing them as independent
  filesystem writes pays per-call latency and — under the NFS model —
  re-enters the contended write slot once per record.  The coalescer
  instead accumulates the pending records and flushes them as a
  **single** large transfer: one ``fs.write`` covering the combined
  payload + metadata bytes, and one
  :meth:`~repro.fs.vfs.VirtualFile.append_many` mutation.
* :class:`ReadCoalescer` — the restart mirror image: many small record
  reads against one file are merged by :func:`merge_extents` into a few
  large contiguous runs, each serviced as one ``fs.read``.  Sieving
  proper: runs may span small holes between wanted extents (up to the
  ``gap`` threshold), trading a few extra bytes on the wire for one
  large sequential access instead of many seeks.

Fault semantics: ``append_many`` checks the disk's fault hooks against
the combined size *before* appending anything, so an injected write
fault leaves the file exactly as it was — the same raise-before-mutate
contract the per-record path has, now at batch granularity.  Reads
mirror it: :meth:`ReadCoalescer.run` keeps its extent list pending
until every merged run has been served, so an injected read fault
(raised by :meth:`~repro.fs.vfs.VirtualFile.read_checked` before any
data is returned) leaves the coalescer re-runnable — a retry replays
the whole schedule, re-charging virtual time exactly like a retried
write does.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["WriteCoalescer", "ReadCoalescer", "merge_extents"]


def merge_extents(
    extents: Sequence[Tuple[int, int]], gap: int = 0
) -> List[Tuple[int, int]]:
    """Merge ``(offset, nbytes)`` extents into contiguous ``(start, length)`` runs.

    Extents may arrive unsorted, overlapping, or duplicated; the result
    is sorted, disjoint, and covers every input byte exactly once.  Two
    extents whose hole is at most ``gap`` bytes are sieved into one run
    (the hole's bytes are part of the run and will be read/charged — the
    data-sieving trade).  ``gap=0`` still merges touching/overlapping
    extents.
    """
    if gap < 0:
        raise ValueError("negative sieve gap")
    runs: List[List[int]] = []
    for offset, nbytes in sorted(extents):
        if offset < 0 or nbytes < 0:
            raise ValueError(f"bad extent ({offset}, {nbytes})")
        end = offset + nbytes
        if runs and offset <= runs[-1][1] + gap:
            if end > runs[-1][1]:
                runs[-1][1] = end
        else:
            runs.append([offset, end])
    return [(start, end - start) for start, end in runs]


class WriteCoalescer:
    """Accumulate pending appends to one file; flush as one transfer.

    Usage (inside a DES process)::

        c = WriteCoalescer(fs, vfile, node=node)
        for record in records:
            c.add(record, meta_bytes=driver.meta_bytes_per_dataset)
        offsets = yield from c.flush()

    ``flush`` returns the on-disk offset of every chunk, in order, so
    callers can maintain their dataset indexes exactly as if the
    records had been appended one by one.
    """

    __slots__ = ("fs", "vfile", "node", "_chunks", "_charged")

    def __init__(self, fs, vfile, node=None):
        self.fs = fs
        self.vfile = vfile
        self.node = node
        self._chunks: List = []
        #: Bytes to charge the filesystem model for (payload + per-record
        #: format metadata), which may exceed what lands in the file.
        self._charged = 0

    @property
    def pending(self) -> int:
        """Number of chunks waiting for the next flush."""
        return len(self._chunks)

    @property
    def pending_bytes(self) -> int:
        """Charged bytes accumulated since the last flush."""
        return self._charged

    def add(self, chunk, meta_bytes: int = 0) -> None:
        """Queue one bytes-like chunk (plus driver metadata to charge)."""
        self._chunks.append(chunk)
        self._charged += len(chunk) + meta_bytes

    def flush(self):
        """Generator: service all pending chunks as one large write.

        Charges a single ``fs.write`` for the combined size, lands the
        chunks with one ``append_many``, and returns the list of
        per-chunk offsets.  A no-op (empty list) when nothing is
        pending.
        """
        if not self._chunks:
            return []
        chunks = self._chunks
        yield from self.fs.write(self._charged, self.node)
        offset = self.vfile.append_many(chunks)
        offsets = []
        for chunk in chunks:
            offsets.append(offset)
            offset += len(chunk)
        self._chunks = []
        self._charged = 0
        return offsets


class ReadCoalescer:
    """Accumulate pending ranged reads of one file; serve them merged.

    Usage (inside a DES process)::

        c = ReadCoalescer(fs, vfile, node=node, gap=gap)
        for name, offset, length in entries:
            c.add(offset, length, meta_bytes=driver.meta_bytes_per_dataset)
        chunks = yield from c.run()   # bytes per extent, in add order

    Each merged run charges **one** ``fs.read`` covering the run's span
    (wanted bytes plus any sieved-through holes) plus the format
    metadata of the extents it absorbed, then pulls the bytes with one
    checked read.  Overlapping extents are read once and sliced per
    caller.
    """

    __slots__ = ("fs", "vfile", "node", "gap", "_extents", "_meta")

    def __init__(self, fs, vfile, node=None, gap: int = 0):
        self.fs = fs
        self.vfile = vfile
        self.node = node
        #: Maximum hole (bytes) two extents may be merged across.
        self.gap = gap
        self._extents: List[Tuple[int, int]] = []
        #: Driver metadata bytes to charge on top of the merged spans.
        self._meta = 0

    @property
    def pending(self) -> int:
        """Number of extents waiting for the next run."""
        return len(self._extents)

    @property
    def pending_bytes(self) -> int:
        """Charged bytes of the current plan (merged spans + metadata)."""
        return sum(length for _start, length in self.plan()) + self._meta

    def add(self, offset: int, nbytes: int, meta_bytes: int = 0) -> None:
        """Queue one ranged read (plus driver metadata to charge)."""
        if offset < 0 or nbytes < 0:
            raise ValueError(f"bad extent ({offset}, {nbytes})")
        self._extents.append((offset, nbytes))
        self._meta += meta_bytes

    def plan(self) -> List[Tuple[int, int]]:
        """The merged ``(start, length)`` runs the next :meth:`run` will issue."""
        return merge_extents(self._extents, self.gap)

    def run(self):
        """Generator: service all pending extents through merged reads.

        Returns the list of per-extent ``bytes``, in :meth:`add` order.
        The pending extents are cleared only after *every* run has been
        served, so a read fault raised mid-schedule leaves the coalescer
        intact for a retry (which replays and re-charges the whole
        schedule).  A no-op (empty list) when nothing is pending.
        """
        if not self._extents:
            return []
        runs = self.plan()
        # Metadata charge rides on the first (largest-savings) run.
        meta = self._meta
        buffers: List[Tuple[int, bytes]] = []
        for start, length in runs:
            yield from self.fs.read(length + meta, self.node)
            meta = 0
            buffers.append((start, self.vfile.read_checked(start, length)))
        chunks = []
        for offset, nbytes in self._extents:
            for start, data in buffers:
                if start <= offset and offset + nbytes <= start + len(data):
                    chunks.append(data[offset - start : offset - start + nbytes])
                    break
            else:  # pragma: no cover - plan() covers every extent
                raise RuntimeError("extent missing from merged read plan")
        self._extents = []
        self._meta = 0
        return chunks
