"""Failure-injection and error-path tests across the stack."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import PandaServer, RocpandaModule, rocpanda_init
from repro.io.rocpanda.protocol import TAG_CTRL
from repro.roccom import AttributeSpec, Roccom
from repro.vmpi import run_spmd


def launch(nprocs, main, seed=0):
    machine = Machine(make_testbox(nnodes=4, cpus_per_node=4), seed=seed)
    return run_spmd(machine, nprocs, main), machine


class TestDeadlockDetection:
    def test_mutual_recv_deadlock_is_reported(self):
        def main(ctx):
            partner = (ctx.rank + 1) % ctx.world.size
            yield from ctx.world.recv(source=partner, tag=99)

        with pytest.raises(RuntimeError, match="deadlock"):
            launch(2, main)

    def test_single_rank_waiting_forever(self):
        def main(ctx):
            yield from ctx.world.probe(source=0, tag=1)

        with pytest.raises(RuntimeError, match="deadlock"):
            launch(1, main)

    def test_error_message_names_stuck_ranks(self):
        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.sleep(1.0)
            else:
                yield from ctx.world.recv(source=0, tag=5)

        with pytest.raises(RuntimeError, match="rank1"):
            launch(2, main)


class TestServerRobustness:
    def test_unexpected_message_type_fails_loudly(self):
        """Garbage on the server's control channel must not be dropped."""

        def main(ctx):
            topo = yield from rocpanda_init(ctx, 1)
            if topo.is_server:
                yield from PandaServer(ctx, topo).run()
                return
            yield from topo.world.send(
                {"not": "a protocol message"}, dest=topo.my_server, tag=TAG_CTRL
            )
            com = Roccom(ctx)
            panda = com.load_module(RocpandaModule(ctx, topo))
            yield from panda.finalize()

        with pytest.raises(TypeError, match="unexpected message"):
            launch(2, main)

    def test_block_without_write_begin_is_protocol_error(self):
        """A data block for an unannounced path must raise ProtocolError,
        not an AttributeError from deep inside the writer."""
        from repro.io import ProtocolError
        from repro.io.base import DataBlock
        from repro.io.rocpanda.protocol import TAG_BLOCK, BlockEnvelope

        def main(ctx):
            topo = yield from rocpanda_init(ctx, 1)
            if topo.is_server:
                yield from PandaServer(ctx, topo).run()
                return
            rogue = DataBlock(
                window="W", block_id=0, nnodes=0, nelems=4,
                arrays={"f": np.zeros(4)}, specs={},
            )
            yield from topo.world.send(
                BlockEnvelope("never_begun", rogue),
                dest=topo.my_server,
                tag=TAG_BLOCK,
            )
            com = Roccom(ctx)
            panda = com.load_module(RocpandaModule(ctx, topo))
            yield from panda.finalize()

        with pytest.raises(ProtocolError, match="WriteBegin"):
            launch(2, main)

    def test_restart_of_missing_prefix_fails(self):
        def main(ctx):
            topo = yield from rocpanda_init(ctx, 1)
            if topo.is_server:
                # The scan of the nonexistent prefix raises inside the
                # server rank; the launcher surfaces it.
                yield from PandaServer(ctx, topo).run()
                return
            com = Roccom(ctx)
            panda = com.load_module(RocpandaModule(ctx, topo))
            w = com.new_window("W")
            w.register_pane(0, 0, 0)
            # The server fails while scanning; the client would block
            # forever, so only issue the request and bail out.
            from repro.io.rocpanda.protocol import RestartRequest

            yield from topo.world.send(
                RestartRequest(prefix="ghost", window="W", block_ids=(0,)),
                dest=topo.my_server,
                tag=TAG_CTRL,
            )

        # The server's exception propagates out of the job run.
        with pytest.raises(FileNotFoundError):
            launch(2, main)


class TestProcessErrorPropagation:
    def test_exception_in_one_rank_surfaces(self):
        def main(ctx):
            yield from ctx.sleep(float(ctx.rank))
            if ctx.rank == 1:
                raise ValueError("solver diverged")

        with pytest.raises(ValueError, match="solver diverged"):
            launch(3, main)

    def test_error_during_collective_surfaces(self):
        def main(ctx):
            if ctx.rank == 0:
                raise RuntimeError("bad root")
            yield from ctx.world.bcast(None, root=0)

        with pytest.raises((RuntimeError,)):
            launch(3, main)


class TestRoccomMisuse:
    def test_write_attribute_of_unknown_window(self):
        from repro.io import RochdfModule

        def main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            with pytest.raises(KeyError, match="no window"):
                yield from com.call_function(
                    "OUT.write_attribute", "Ghost", None, "x"
                )

        launch(1, main)

    def test_call_of_unregistered_function(self):
        def main(ctx):
            com = Roccom(ctx)
            com.new_window("W")
            with pytest.raises(KeyError):
                yield from com.call_function("W.vanish")

        launch(1, main)


class TestJobTimeout:
    def test_until_deadline_enforced(self):
        from repro.vmpi.launcher import Job

        machine = Machine(make_testbox(), seed=0)

        def main(ctx):
            yield from ctx.sleep(100.0)

        job = Job(machine, 1)
        with pytest.raises(RuntimeError, match="did not finish"):
            job.run(main, until=5.0)
