"""Integration tests: faults injected *during* the two-phase restart.

The write lands fault-free; the faults target the collective read-back
itself — a server crash mid-bulk-read (clients resume the dead rank's
file share from its deterministic heir) and transient read ``EIO``
during the sieved region reads (absorbed by the server-side read
retry).  Both must recover to a restore digest-identical to a fully
fault-free run and replay deterministically under the same seed.
"""

import pytest

from repro.bench.faults import (
    _PATIENT_RETRY,
    _run_rocpanda_restart_fault_scenario,
)
from repro.faults import FaultPlan, ServerCrash, TransientEIO


def _run_twice(plan):
    first = _run_rocpanda_restart_fault_scenario(plan, 0, _PATIENT_RETRY)
    second = _run_rocpanda_restart_fault_scenario(plan, 0, _PATIENT_RETRY)
    return first, second


@pytest.fixture(scope="module")
def reference_digest():
    """Digest of the restore with no faults installed at all."""
    digest, info = _run_rocpanda_restart_fault_scenario(
        FaultPlan(()), 0, _PATIENT_RETRY
    )
    assert "missing_blocks" not in info
    return digest


class TestServerCrashMidRestart:
    def test_recovers_via_heir_and_is_deterministic(self, reference_digest):
        plan = FaultPlan((ServerCrash(rank=2, at_time=0.004),))
        (digest1, info1), (digest2, info2) = _run_twice(plan)
        # Recovery: bit-identical restore despite the mid-read crash.
        assert "missing_blocks" not in info1, info1
        assert digest1 == reference_digest
        # The dead rank's share really was re-served by its heir.
        rocpanda = info1["counters"]["rocpanda"]
        assert rocpanda.get("restart_resumes_served", 0) > 0
        assert info1["client_failovers"] > 0
        assert rocpanda.get("server_crashes") == 1
        # Determinism: same seed, same digest, same counters.
        assert (digest1, info1) == (digest2, info2)


class TestTransientReadEIOMidRestart:
    def test_read_retry_absorbs_injected_eio(self, reference_digest):
        plan = FaultPlan(
            (TransientEIO(op="read", path_prefix="ck", count=2),)
        )
        (digest1, info1), (digest2, info2) = _run_twice(plan)
        assert "missing_blocks" not in info1, info1
        assert digest1 == reference_digest
        # The injected EIOs were hit and retried server-side.
        assert info1["counters"]["rocpanda"].get("read_retries") == 2
        assert (digest1, info1) == (digest2, info2)
