"""Smoke tests: the runnable examples must stay runnable.

Each example is executed in-process (runpy) with its module-level
``main()``; the slow SMP placement example is covered by a trimmed
variant instead of its full 120-processor sweep.
"""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/restart_demo.py",
    "examples/custom_module.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs_clean(path, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path} produced no output"


def test_compare_io_strategies_ordering(capsys):
    module = runpy.run_path("examples/compare_io_strategies.py")
    from repro.genx import lab_scale_motor

    workload = lab_scale_motor(
        scale=0.03, nblocks_fluid=32, nblocks_solid=16,
        steps=10, snapshot_interval=5,
    )
    rows = {m: module["run_one"](m, workload) for m in ("rochdf", "trochdf", "rocpanda")}
    assert rows["trochdf"]["visible I/O (s)"] < rows["rochdf"]["visible I/O (s)"]
    assert rows["rocpanda"]["files"] < rows["rochdf"]["files"]


def test_snapshot_inspect_runs(capsys):
    runpy.run_path("examples/snapshot_inspect.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "burn front" in out


def test_smp_placement_layouts_trimmed():
    """Run the example's run_layout() on a small size for speed."""
    module = runpy.run_path("examples/smp_placement.py")
    from repro.genx import scalability_cylinder

    workload = scalability_cylinder(
        per_client_bytes=128 * 1024, steps=6, snapshot_interval=3,
        nominal_step_seconds=8.0,
    )
    results = {
        label: module["run_layout"](label, 30, workload, seed=1).computation_time
        for label in ("16NS", "15NS", "15S")
    }
    assert results["15NS"] <= results["16NS"] * 1.05
    assert results["15S"] <= results["16NS"] * 1.05
