"""Integration tests: load balancing + mesh adaptation under live I/O.

The paper's §4.1 flexibility claims, exercised end-to-end:

* "the mesh blocks can expand or shrink over time ... and the
  simulation developers need not to redefine the data distribution for
  I/O";
* "it allows dynamic load-balancing, where data blocks may be migrated
  among processors, without affecting how I/O is done".
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.genx import GENxConfig, lab_scale_motor, run_genx
from repro.rocketeer import SnapshotSeries, load_snapshot


def workload(steps=16, interval=8):
    return lab_scale_motor(
        scale=0.02, nblocks_fluid=16, nblocks_solid=8,
        steps=steps, snapshot_interval=interval,
    )


def make_machine(seed=0, disk=None):
    return Machine(make_testbox(nnodes=8, cpus_per_node=4), seed=seed, disk=disk)


class TestAdaptationWithIO:
    @pytest.mark.parametrize("io_mode,nprocs,nservers", [
        ("rochdf", 4, 0),
        ("rocpanda", 5, 1),
    ])
    def test_snapshots_track_changing_block_sizes(self, io_mode, nprocs, nservers):
        config = GENxConfig(
            workload=workload(), io_mode=io_mode, nservers=nservers,
            prefix="am", adapt_mesh=True, adapt_interval=4,
        )
        result = run_genx(make_machine(), nprocs, config)
        disk = result.machine.disk
        first = load_snapshot(disk, "am", 0)
        last = load_snapshot(disk, "am", 16)
        solid_first = sum(b.nelems for b in first.window("rocfrac").values())
        solid_last = sum(b.nelems for b in last.window("rocfrac").values())
        fluid_first = sum(b.nelems for b in first.window("rocflo").values())
        fluid_last = sum(b.nelems for b in last.window("rocflo").values())
        # Propellant consumed, chamber grown — visible purely from files.
        assert solid_last < solid_first
        assert fluid_last > fluid_first
        # Block count itself unchanged: blocks resize, not split.
        assert len(last.window("rocfrac")) == len(first.window("rocfrac"))

    def test_restart_from_adapted_state(self):
        config = GENxConfig(
            workload=workload(), io_mode="rochdf", prefix="am2",
            adapt_mesh=True, adapt_interval=4,
        )
        first = run_genx(make_machine(seed=1), 4, config)
        # Restart run reads the adapted (resized) checkpoint.
        restart = run_genx(
            make_machine(seed=2, disk=first.machine.disk),
            4,
            GENxConfig(
                workload=workload(), io_mode="rochdf", prefix="am3",
                restart_step=16, restart_prefix="am2", steps=0,
            ),
        )
        assert restart.restart_time > 0
        a = load_snapshot(first.machine.disk, "am2", 16)
        b = load_snapshot(first.machine.disk, "am3", 0)
        for bid, block in a.window("rocfrac").items():
            other = b.window("rocfrac")[bid]
            assert other.nelems == block.nelems
            np.testing.assert_array_equal(
                block.arrays["stress"], other.arrays["stress"]
            )


class TestLoadBalancingWithIO:
    def test_migration_does_not_affect_io(self):
        """Every block appears in every snapshot exactly once, no matter
        where it currently lives (§4.1)."""
        config = GENxConfig(
            workload=workload(), io_mode="rocpanda", nservers=1,
            prefix="lb", load_balance=True, lb_interval=4, lb_threshold=1.001,
        )
        result = run_genx(make_machine(seed=3), 5, config)
        series = SnapshotSeries(result.machine.disk, "lb")
        expected_ids = set(load_snapshot(result.machine.disk, "lb", 0)
                           .window("rocflo"))
        for step in series.steps:
            snap = series.at(step)
            assert set(snap.window("rocflo")) == expected_ids

    def test_simulation_state_continuous_across_migration(self):
        """Pressure evolution stays smooth even when blocks move."""
        config = GENxConfig(
            workload=workload(steps=20, interval=5),
            io_mode="rochdf", prefix="lb2",
            load_balance=True, lb_interval=3, lb_threshold=1.001,
        )
        result = run_genx(make_machine(seed=4), 4, config)
        series = SnapshotSeries(result.machine.disk, "lb2")
        means = [v for _, v in series.time_series("rocflo", "pressure")]
        # No wild jumps: consecutive snapshot means stay within 10%.
        for a, b in zip(means, means[1:]):
            assert abs(b - a) / abs(a) < 0.10

    def test_both_features_together(self):
        config = GENxConfig(
            workload=workload(), io_mode="rocpanda", nservers=1,
            prefix="both", adapt_mesh=True, adapt_interval=4,
            load_balance=True, lb_interval=8, lb_threshold=1.001,
        )
        result = run_genx(make_machine(seed=5), 5, config)
        assert all(c.rocman.snapshots == 3 for c in result.clients)
        last = load_snapshot(result.machine.disk, "both", 16)
        assert last.nblocks == 16 + 8 + 16  # fluid + solid + burn
