"""Integration tests: the full Rocpanda client/server protocol."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import (
    PandaServer,
    RocpandaModule,
    ServerConfig,
    rocpanda_init,
    server_file_path,
    server_ranks,
)
from repro.roccom import AttributeSpec, LOC_ELEMENT, LOC_NODE, Roccom
from repro.shdf import decode_file
from repro.vmpi import run_spmd


def setup_window(com, topo, ctx, nblocks=2, seed_base=7, nnodes=1200):
    """Register `nblocks` panes per client, globally unique block ids.

    Default block size (~30 KB of coords) is above the eager threshold,
    so block sends use the rendezvous protocol like real GENx blocks.
    """
    w = com.new_window("Fluid")
    w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
    w.declare_attribute(AttributeSpec("pressure", LOC_ELEMENT))
    client_rank = topo.comm.rank
    rng = np.random.default_rng(seed_base + client_rank)
    for i in range(nblocks):
        pane_id = client_rank * nblocks + i
        nn, ne = nnodes + i, nnodes // 2 + i
        w.register_pane(pane_id, nn, ne)
        w.set_array("coords", pane_id, rng.random((nn, 3)))
        w.set_array("pressure", pane_id, rng.random(ne))
    return w


def panda_main(nservers, body, server_config=None):
    """Build an SPMD main that splits into servers and clients."""

    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            server = PandaServer(ctx, topo, server_config)
            stats = yield from server.run()
            return ("server", stats)
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        result = yield from body(ctx, topo, com, panda)
        yield from panda.finalize()
        return ("client", result)

    return main


def launch(nprocs, main, disk=None, seed=0):
    machine = Machine(
        make_testbox(nnodes=8, cpus_per_node=4), seed=seed, disk=disk
    )
    return run_spmd(machine, nprocs, main), machine


class TestTopology:
    def test_server_ranks_stride(self):
        assert server_ranks(18, 2) == [0, 9]
        assert server_ranks(8, 2) == [0, 4]

    def test_server_ranks_invalid(self):
        with pytest.raises(ValueError):
            server_ranks(4, 0)
        with pytest.raises(ValueError):
            server_ranks(4, 5)
        with pytest.raises(ValueError, match="nclients >= nservers"):
            server_ranks(4, 4)

    def test_init_splits_world(self):
        def body(ctx, topo, com, panda):
            yield from ctx.sleep(0)
            return (ctx.rank, topo.comm.size, topo.my_server)

        result, _ = launch(8, panda_main(2, body))
        clients = [r[1] for r in result.returns if r[0] == "client"]
        servers = [r for r in result.returns if r[0] == "server"]
        assert len(servers) == 2
        assert len(clients) == 6
        # Client communicator has exactly the 6 client ranks.
        assert all(size == 6 for _, size, _ in clients)
        # Clients 1-3 -> server 0; clients 5-7 -> server 4.
        my_servers = {r: s for r, _, s in clients}
        assert my_servers == {1: 0, 2: 0, 3: 0, 5: 4, 6: 4, 7: 4}


class TestCollectiveWrite:
    def test_write_creates_one_file_per_server(self):
        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "snap")
            yield from com.call_function("OUT.sync")
            return panda.stats

        result, machine = launch(8, panda_main(2, body))
        files = sorted(p for p in machine.disk.listdir("snap"))
        assert files == [server_file_path("snap", 0), server_file_path("snap", 1)]

    def test_file_reduction_factor(self):
        """8:1 client:server ratio => 8x fewer files than Rochdf (§7.1)."""

        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "fr")
            yield from com.call_function("OUT.sync")

        result, machine = launch(9, panda_main(1, body))  # 8 clients, 1 server
        assert len(machine.disk.listdir("fr")) == 1

    def test_all_blocks_land_in_files(self):
        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx, nblocks=3)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "all")
            yield from com.call_function("OUT.sync")

        result, machine = launch(8, panda_main(2, body))
        names = []
        for path in machine.disk.listdir("all"):
            image = decode_file(machine.disk.open(path).read())
            names.extend(image.names())
        # 6 clients x 3 blocks x 2 arrays = 36 datasets.
        assert len(names) == 36
        blocks = {n.split("/")[1] for n in names}
        assert blocks == {f"b{i}" for i in range(18)}

    def test_server_file_attrs_preserved(self):
        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx)
            yield from com.call_function(
                "OUT.write_attribute", "Fluid", None, "fa",
                file_attrs={"time_step": 50, "sim_time": 0.83},
            )
            yield from com.call_function("OUT.sync")

        _, machine = launch(4, panda_main(1, body))
        image = decode_file(machine.disk.open(server_file_path("fa", 0)).read())
        assert image.attrs["time_step"] == 50
        assert image.attrs["sim_time"] == pytest.approx(0.83)

    def test_active_buffering_hides_write_cost(self):
        """Visible time (buffered) << visible time (write-through)."""

        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx, nblocks=6)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "ab")
            visible = panda.stats.visible_write_time
            yield from com.call_function("OUT.sync")
            return visible

        buffered, _ = launch(
            8, panda_main(2, body, ServerConfig(active_buffering=True))
        )
        through, _ = launch(
            8, panda_main(2, body, ServerConfig(active_buffering=False))
        )
        vis_buf = max(r[1] for r in buffered.returns if r[0] == "client")
        vis_thr = max(r[1] for r in through.returns if r[0] == "client")
        assert vis_buf < vis_thr

    def test_buffer_overflow_flushes_gracefully(self):
        """Tiny server buffer: data still lands correctly (A4)."""
        config = ServerConfig(buffer_bytes=2048)  # smaller than one block

        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx, nblocks=4)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "ovf")
            yield from com.call_function("OUT.sync")

        result, machine = launch(4, panda_main(1, body, config))
        server_stats = next(r[1] for r in result.returns if r[0] == "server")
        assert server_stats.overflow_flushes > 0
        image = decode_file(machine.disk.open(server_file_path("ovf", 0)).read())
        # 3 clients x 4 blocks x 2 arrays
        assert len(image) == 24

    def test_multi_window_back_to_back_outputs(self):
        """Different modules issue back-to-back output requests (§6.1)."""

        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx)
            w2 = com.new_window("Solid")
            w2.declare_attribute(AttributeSpec("disp", LOC_NODE, ncomp=3))
            pid = 1000 + topo.comm.rank
            w2.register_pane(pid, 5, 0)
            w2.set_array("disp", pid, np.full((5, 3), float(pid)))
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "mw_f")
            yield from com.call_function("OUT.write_attribute", "Solid", None, "mw_s")
            yield from com.call_function("OUT.sync")

        _, machine = launch(8, panda_main(2, body))
        assert len(machine.disk.listdir("mw_f")) == 2
        assert len(machine.disk.listdir("mw_s")) == 2


class TestRestart:
    def _write_checkpoint(self, nprocs, nservers, nblocks=2, disk=None):
        saved = {}

        def body(ctx, topo, com, panda):
            w = setup_window(com, topo, ctx, nblocks=nblocks)
            for pid in w.pane_ids():
                saved[pid] = w.get_array("coords", pid).copy()
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "ck")
            yield from com.call_function("OUT.sync")

        _, machine = launch(nprocs, panda_main(nservers, body), disk=disk)
        return machine, saved

    def _restart(self, nprocs, nservers, wanted_of, disk):
        restored = {}

        def body(ctx, topo, com, panda):
            w = com.new_window("Fluid")
            for pid in wanted_of(topo.comm.rank):
                w.register_pane(pid, 0, 0)
            ids = yield from com.call_function("OUT.read_attribute", "Fluid", None, "ck")
            for pid in ids:
                restored[pid] = w.get_array("coords", pid)
            return ids

        result, _ = launch(nprocs, panda_main(nservers, body), disk=disk)
        return result, restored

    def test_same_config_roundtrip(self):
        machine, saved = self._write_checkpoint(8, 2)
        nblocks = 2

        def wanted(client_rank):
            return range(client_rank * nblocks, client_rank * nblocks + nblocks)

        result, restored = self._restart(8, 2, wanted, machine.disk)
        assert set(restored) == set(saved)
        for pid in saved:
            np.testing.assert_array_equal(restored[pid], saved[pid])

    def test_restart_with_different_server_count(self):
        """§4.1: restart with a different number of servers than wrote."""
        machine, saved = self._write_checkpoint(8, 2)  # 6 clients, 2 servers

        # Restart on 6 procs with 3 servers => 3 clients, 12 blocks.
        def wanted(client_rank):
            return range(client_rank * 4, client_rank * 4 + 4)

        result, restored = self._restart(6, 3, wanted, machine.disk)
        assert set(restored) == set(saved)
        for pid in saved:
            np.testing.assert_array_equal(restored[pid], saved[pid])

    def test_restart_blocks_redistributed(self):
        """Blocks may land on different clients than wrote them."""
        machine, saved = self._write_checkpoint(8, 2)

        # Reverse assignment: client 0 gets the last blocks.
        def wanted(client_rank):
            nclients = 6
            return range((5 - client_rank) * 2, (5 - client_rank) * 2 + 2)

        result, restored = self._restart(8, 2, wanted, machine.disk)
        assert set(restored) == set(saved)

    def test_restart_time_reported(self):
        machine, _ = self._write_checkpoint(8, 2)

        def body(ctx, topo, com, panda):
            w = com.new_window("Fluid")
            for pid in range(topo.comm.rank * 2, topo.comm.rank * 2 + 2):
                w.register_pane(pid, 0, 0)
            yield from com.call_function("OUT.read_attribute", "Fluid", None, "ck")
            return panda.stats.visible_read_time

        result, _ = launch(8, panda_main(2, body), disk=machine.disk)
        read_times = [r[1] for r in result.returns if r[0] == "client"]
        assert all(t > 0 for t in read_times)


class TestSyncSemantics:
    def test_sync_waits_for_background_writes(self):
        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx, nblocks=6)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "sy")
            t_after_write = ctx.now
            yield from com.call_function("OUT.sync")
            t_after_sync = ctx.now
            return (t_after_write, t_after_sync)

        result, machine = launch(8, panda_main(2, body))
        client_times = [r[1] for r in result.returns if r[0] == "client"]
        # Sync must strictly follow the buffered return.
        assert all(ts >= tw for tw, ts in client_times)
        # The file must be complete at sync time: decode and count.
        for path in machine.disk.listdir("sy"):
            image = decode_file(machine.disk.open(path).read())
            assert len(image) == 3 * 6 * 2  # clients x blocks x arrays

    def test_compute_overlaps_with_server_writes(self):
        """Total time with overlap < write time + compute time serially."""

        def body(ctx, topo, com, panda):
            setup_window(com, topo, ctx, nblocks=6)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "ov")
            yield from ctx.compute(1.0)
            yield from com.call_function("OUT.sync")
            return panda.stats

        result, _ = launch(8, panda_main(2, body))
        stats = [r[1] for r in result.returns if r[0] == "client"]
        # Visible write time must be far below 1s (the compute time),
        # and sync should find the writes already done (overlapped).
        assert max(s.visible_write_time for s in stats) < 0.5
        assert max(s.sync_time for s in stats) < 0.5
