"""Integration tests: the full active-buffering hierarchy ([13]).

GENx production uses server-side buffering only (§6.1); the full
scheme adds a client-side buffer level.  These tests verify the
extension preserves every correctness property and actually reduces
the client-visible cost to a local copy.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.cluster.presets import turing
from repro.genx import GENxConfig, lab_scale_motor, run_genx
from repro.rocketeer import load_snapshot


def workload(steps=8, interval=4):
    return lab_scale_motor(
        scale=0.05, nblocks_fluid=16, nblocks_solid=8,
        steps=steps, snapshot_interval=interval,
    )


def run(client_buffering, seed=0, disk=None, **config_kwargs):
    machine = Machine(make_testbox(nnodes=8, cpus_per_node=4), seed=seed, disk=disk)
    config = GENxConfig(
        workload=workload(),
        io_mode="rocpanda",
        nservers=1,
        prefix="cbuf",
        client_buffering=client_buffering,
        **config_kwargs,
    )
    return run_genx(machine, 5, config)


class TestClientBuffering:
    def test_visible_time_drops_to_memcpy_level(self):
        plain = run(False, seed=1)
        buffered = run(True, seed=1)
        assert buffered.visible_io_time < plain.visible_io_time / 3

    def test_files_identical_to_server_only_mode(self):
        plain = run(False, seed=2)
        buffered = run(True, seed=2)
        for step in (0, 4, 8):
            a = load_snapshot(plain.machine.disk, "cbuf", step)
            b = load_snapshot(buffered.machine.disk, "cbuf", step)
            assert set(a.window("rocflo")) == set(b.window("rocflo"))
            for bid, block in a.window("rocflo").items():
                np.testing.assert_array_equal(
                    block.arrays["pressure"],
                    b.window("rocflo")[bid].arrays["pressure"],
                )

    def test_restart_works_with_client_buffering(self):
        first = run(True, seed=3)
        restarted = run(
            True,
            seed=4,
            disk=first.machine.disk,
            restart_step=8,
            restart_prefix="cbuf",
            steps=0,
        )
        assert restarted.restart_time > 0

    def test_sync_flushes_both_levels(self):
        """After sync, data is on disk even though two buffer levels
        sat between the caller and the filesystem."""
        result = run(True, seed=5)
        snap = load_snapshot(result.machine.disk, "cbuf", 8)
        assert snap.nblocks == 16 + 8 + 16

    def test_buffered_arrays_safe_to_reuse(self):
        """Mutating simulation arrays right after write_attribute must
        not corrupt the snapshot (double-buffered path included)."""
        from repro.io import PandaServer, RocpandaModule, rocpanda_init
        from repro.roccom import AttributeSpec, Roccom
        from repro.shdf import decode_file
        from repro.vmpi import run_spmd

        def main(ctx):
            topo = yield from rocpanda_init(ctx, 1)
            if topo.is_server:
                yield from PandaServer(ctx, topo).run()
                return
            com = Roccom(ctx)
            panda = com.load_module(
                RocpandaModule(ctx, topo, client_buffering=True)
            )
            w = com.new_window("W")
            w.declare_attribute(AttributeSpec("f", "element"))
            w.register_pane(0, 0, 4000)
            data = np.arange(4000.0)
            w.set_array("f", 0, data)
            yield from com.call_function("OUT.write_attribute", "W", None, "ru")
            data[:] = -1.0  # clobber immediately
            yield from com.call_function("OUT.sync")
            yield from panda.finalize()

        machine = Machine(make_testbox(), seed=0)
        run_spmd(machine, 2, main)
        image = decode_file(machine.disk.open("ru_s0000.shdf").read())
        np.testing.assert_array_equal(image.get("W/b0/f").data, np.arange(4000.0))
