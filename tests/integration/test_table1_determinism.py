"""Virtual-time determinism pins for the Table 1 experiment (PR 7, S4).

The PR 7 performance work (batched DES scheduling, array-backed
mailboxes, codec/partition memos, the pane-array shim, orphan-block
stash) must not move simulated time at all: under the linear collective
spec, every Table 1 metric at 64 ranks must equal — bit for bit — the
values the tree produced before any of it landed.  The tree collectives
are the one *deliberate* timing change, so the same run under the
default algorithm must differ only where collectives are on the path.

Reference values were captured on the pre-PR tree at
``run_table1(proc_counts=(64,), nruns=1, scale=0.02, steps=12,
snapshot_interval=4)``.
"""

import pytest

from repro.bench.table1 import run_table1
from repro.vmpi.comm import Comm

#: Pre-PR virtual-time results, 64 compute processors (exact floats).
REFERENCE_64P = {
    "computation": 1.6155747125974675,
    "rochdf": 6.3731181979483225,
    "trochdf": 4.469433813227255,
    "rocpanda": 0.012101316406250263,
    "restart_rochdf": 0.2345703968658447,
    "restart_rocpanda": 1.1266320128320668,
}

_CONFIG = dict(
    proc_counts=(64,), nruns=1, scale=0.02, steps=12, snapshot_interval=4
)


def test_linear_spec_bit_identical_to_pre_pr(monkeypatch):
    monkeypatch.setattr(Comm, "collective_algo", "linear")
    result = run_table1(**_CONFIG)
    measured = {m: result.value(m, 64) for m in REFERENCE_64P}
    assert measured == REFERENCE_64P


def test_tree_collectives_only_shift_collective_bound_metrics(monkeypatch):
    """The default (tree) run is deterministic and differs from the
    linear spec only through collective timing: computation (which
    includes time blocked in collectives) moves, while the rocpanda
    restart path — bulk point-to-point traffic — stays within the same
    order of magnitude."""
    monkeypatch.setattr(Comm, "collective_algo", "tree")
    a = run_table1(**_CONFIG)
    b = run_table1(**_CONFIG)
    for metric in REFERENCE_64P:
        assert a.value(metric, 64) == b.value(metric, 64)
    # Trees shorten the collective critical path at P = 64.
    assert a.value("computation", 64) < REFERENCE_64P["computation"]
