"""Integration tests: full GENx runs under all three I/O services."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.cluster.presets import turing
from repro.genx import GENxConfig, lab_scale_motor, run_genx, scalability_cylinder
from repro.shdf import decode_file


def tiny_workload(steps=8, interval=4):
    return lab_scale_motor(
        scale=0.01, nblocks_fluid=12, nblocks_solid=6, steps=steps,
        snapshot_interval=interval,
    )


def make_machine(seed=0, disk=None):
    return Machine(make_testbox(nnodes=8, cpus_per_node=4), seed=seed, disk=disk)


class TestRunGENx:
    @pytest.mark.parametrize("io_mode,nprocs,nservers", [
        ("rochdf", 4, 0),
        ("trochdf", 4, 0),
        ("rocpanda", 5, 1),
    ])
    def test_complete_run_all_modes(self, io_mode, nprocs, nservers):
        config = GENxConfig(
            workload=tiny_workload(), io_mode=io_mode, nservers=nservers,
            prefix=f"t_{io_mode}",
        )
        result = run_genx(make_machine(), nprocs, config)
        nclients = nprocs - (nservers if io_mode == "rocpanda" else 0)
        assert len(result.clients) == nclients
        assert result.computation_time > 0
        assert all(c.rocman.steps == 8 for c in result.clients)
        # 3 snapshots (initial, step 4, step 8).
        assert all(c.rocman.snapshots == 3 for c in result.clients)

    def test_rocpanda_reduces_files_by_client_server_ratio(self):
        wl = tiny_workload()
        r_hdf = run_genx(
            make_machine(), 4, GENxConfig(workload=wl, io_mode="rochdf", prefix="fr_h")
        )
        r_panda = run_genx(
            make_machine(), 5,
            GENxConfig(workload=wl, io_mode="rocpanda", nservers=1, prefix="fr_p"),
        )
        # Rochdf: one file per client per window per snapshot; Rocpanda:
        # one per server per window per snapshot => 4x fewer here.
        assert r_hdf.files_created == 4 * r_panda.files_created

    def test_physics_state_evolves_across_snapshots(self):
        config = GENxConfig(workload=tiny_workload(), io_mode="rochdf", prefix="ev")
        result = run_genx(make_machine(), 2, config)
        disk = result.machine.disk
        first = decode_file(disk.open("ev_000000_rocflo_p00000.shdf").read())
        last = decode_file(disk.open("ev_000008_rocflo_p00000.shdf").read())
        name = next(n for n in first.names() if n.endswith("/pressure"))
        assert not np.array_equal(first.get(name).data, last.get(name).data)

    def test_snapshot_files_decode_with_expected_metadata(self):
        config = GENxConfig(workload=tiny_workload(), io_mode="rochdf", prefix="md")
        result = run_genx(make_machine(), 2, config)
        image = decode_file(
            result.machine.disk.open("md_000004_rocburn_p00001.shdf").read()
        )
        assert image.attrs["time_step"] == 4
        assert len(image) > 0
        ds = image.get(image.names()[0])
        assert "location" in ds.attrs

    def test_visible_io_ordering_between_modes(self):
        """T-Rochdf visible I/O << Rochdf visible I/O (Table 1 shape)."""
        wl = tiny_workload()
        times = {}
        for mode in ("rochdf", "trochdf"):
            config = GENxConfig(workload=wl, io_mode=mode, prefix=f"ord_{mode}")
            times[mode] = run_genx(make_machine(), 4, config).visible_io_time
        assert times["trochdf"] < times["rochdf"] / 3

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GENxConfig(workload=tiny_workload(), io_mode="carrier-pigeon")
        with pytest.raises(ValueError):
            GENxConfig(workload=tiny_workload(), io_mode="rocpanda", nservers=0)

    def test_weak_scaling_workload_scales_data(self):
        wl = scalability_cylinder(per_client_bytes=64 * 1024, steps=4, snapshot_interval=4)
        r2 = run_genx(
            make_machine(), 2, GENxConfig(workload=wl, io_mode="rochdf", prefix="w2")
        )
        r4 = run_genx(
            make_machine(), 4, GENxConfig(workload=wl, io_mode="rochdf", prefix="w4")
        )
        b2 = sum(c.io_stats.bytes_written for c in r2.clients)
        b4 = sum(c.io_stats.bytes_written for c in r4.clients)
        assert b4 / b2 == pytest.approx(2.0, rel=0.3)

    def test_deterministic_given_seed(self):
        config = GENxConfig(workload=tiny_workload(), io_mode="rochdf", prefix="det")
        r1 = run_genx(make_machine(seed=9), 2, config)
        r2 = run_genx(make_machine(seed=9), 2, config)
        assert r1.computation_time == r2.computation_time
        assert r1.visible_io_time == r2.visible_io_time


class TestRestartIntegration:
    @pytest.mark.parametrize("io_mode,nprocs,nservers", [
        ("rochdf", 4, 0),
        ("rocpanda", 6, 2),
    ])
    def test_checkpoint_restart_roundtrip(self, io_mode, nprocs, nservers):
        """Snapshot doubles as checkpoint; a new run restores from it."""
        wl = tiny_workload(steps=4, interval=4)
        write_cfg = GENxConfig(
            workload=wl, io_mode=io_mode, nservers=nservers, prefix="ckpt"
        )
        first = run_genx(make_machine(seed=1), nprocs, write_cfg)
        disk = first.machine.disk

        restart_cfg = GENxConfig(
            workload=wl, io_mode=io_mode, nservers=nservers, prefix="ckpt2",
            restart_step=4, restart_prefix="ckpt", initial_snapshot=True,
        )
        second = run_genx(make_machine(seed=2, disk=disk), nprocs, restart_cfg)
        assert second.restart_time > 0

        # The restarted run's step-0 snapshot must equal the first
        # run's step-4 snapshot (same restored state written back out).
        suffix = "_rocflo_p00000.shdf" if io_mode == "rochdf" else "_rocflo_s0000.shdf"
        a = decode_file(disk.open("ckpt_000004" + suffix).read())
        b = decode_file(disk.open("ckpt2_000000" + suffix).read())
        for name in a.names():
            if name.endswith("/pressure"):
                np.testing.assert_array_equal(a.get(name).data, b.get(name).data)

    def test_restart_with_different_server_count(self):
        wl = tiny_workload(steps=4, interval=4)
        first = run_genx(
            make_machine(seed=3), 6,
            GENxConfig(workload=wl, io_mode="rocpanda", nservers=2, prefix="rs"),
        )
        second = run_genx(
            make_machine(seed=4, disk=first.machine.disk), 9,
            GENxConfig(
                workload=wl, io_mode="rocpanda", nservers=3, prefix="rs2",
                restart_step=4, restart_prefix="rs",
            ),
        )
        assert second.restart_time > 0
        assert len(second.clients) == 6
