"""Integration tests: fault injection across the full I/O stack.

Covers the headline recovery stories end to end: an I/O-server crash
whose block assignments fail over to the survivor (with a
different-server-count restart reading back bit-identical data), the
buffer-overflow counter surfacing through the obs rollups, background
write faults reported at the next sync, and the faultbench chaos
matrix meeting its 100%-recovery acceptance bar.
"""

import numpy as np
import pytest

from repro.bench import run_faultbench
from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.faults import FaultPlan, RetryPolicy, ServerCrash, TransientEIO
from repro.io import (
    BackgroundWriteError,
    PandaServer,
    RocpandaModule,
    ServerConfig,
    TRochdfModule,
    rocpanda_init,
)
from repro.obs import summary_payload
from repro.roccom import AttributeSpec, LOC_ELEMENT, LOC_NODE, Roccom
from repro.vmpi import run_spmd

NBLOCKS = 3  # per client


def _declare(com):
    w = com.new_window("Fluid")
    w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
    w.declare_attribute(AttributeSpec("pressure", LOC_ELEMENT))
    return w


def _write_main(nservers, server_config=None):
    """Checkpoint writer: data depends only on the client rank."""

    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            stats = yield from PandaServer(ctx, topo, server_config).run()
            return ("server", stats)
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        w = _declare(com)
        rng = np.random.default_rng(300 + topo.comm.rank)
        for i in range(NBLOCKS):
            pid = topo.comm.rank * NBLOCKS + i
            nn, ne = 1200 + i, 600 + i  # rendezvous-sized blocks
            w.register_pane(pid, nn, ne)
            w.set_array("coords", pid, rng.random((nn, 3)))
            w.set_array("pressure", pid, rng.random(ne))
        yield from ctx.sleep(0.05)  # past init: faults land mid-write
        yield from com.call_function("OUT.write_attribute", "Fluid", None, "ck")
        yield from com.call_function("OUT.sync")
        yield from panda.finalize()
        return ("client", panda.stats)

    return main


def _restart_main(nservers, per_client):
    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            stats = yield from PandaServer(ctx, topo).run()
            return ("server", stats)
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        w = com.new_window("Fluid")
        first = topo.comm.rank * per_client
        for pid in range(first, first + per_client):
            w.register_pane(pid, 0, 0)
        ids = yield from com.call_function("OUT.read_attribute", "Fluid", None, "ck")
        restored = {
            pid: {
                "coords": w.get_array("coords", pid).copy(),
                "pressure": w.get_array("pressure", pid).copy(),
            }
            for pid in ids
        }
        yield from panda.finalize()
        return ("client", restored)

    return main


def _launch(nprocs, main, plan=None, seed=0, disk=None):
    machine = Machine(
        make_testbox(nnodes=8, cpus_per_node=4), seed=seed, disk=disk
    )
    if plan is not None:
        machine.install_faults(plan)
    return run_spmd(machine, nprocs, main), machine


def _checkpoint_then_restart(plan):
    """Write 8 procs / 2 servers (under ``plan``), restart 6 / 3."""
    result, machine = _launch(8, _write_main(2), plan=plan)
    restart, _ = _launch(
        6, _restart_main(3, per_client=NBLOCKS * 2), seed=1, disk=machine.disk
    )
    restored = {}
    for kind, value in restart.returns:
        if kind == "client":
            restored.update(value)
    return result, machine, restored


class TestServerCrashFailover:
    """ISSUE satellite: crash + failover + different-server-count restart."""

    def test_restart_bit_identical_to_fault_free_reference(self):
        _, _, reference = _checkpoint_then_restart(plan=None)
        plan = FaultPlan((ServerCrash(rank=4, at_time=0.055),))
        result, machine, restored = _checkpoint_then_restart(plan)

        # The fault actually happened and was survived, not avoided.
        assert machine.faults.is_dead(4)
        server_stats = [s for kind, s in result.returns if kind == "server"]
        assert any(s.crashed for s in server_stats)
        client_stats = [s for kind, s in result.returns if kind == "client"]
        assert sum(s.failovers for s in client_stats) >= 1

        # Every block of the 18-block checkpoint came back bit-identical.
        assert set(restored) == set(reference) == set(range(18))
        for pid in reference:
            for name in ("coords", "pressure"):
                np.testing.assert_array_equal(
                    restored[pid][name], reference[pid][name]
                )

    def test_crash_recorded_in_obs_counters(self):
        plan = FaultPlan((ServerCrash(rank=4, at_time=0.055),))
        result, _ = _launch(8, _write_main(2), plan=plan)
        counters = summary_payload(result.recorder)["counters"]
        assert counters["faults"]["server_crash"] == 1
        assert counters["rocpanda"]["server_crashes"] == 1
        assert counters["rocpanda"]["failovers"] >= 1


class TestOverflowCounterExport:
    """ISSUE satellite: overflow_flushes visible in the obs rollups."""

    def test_forced_overflow_shows_in_summary_payload(self):
        config = ServerConfig(buffer_bytes=2048)  # << one 34 KB block
        result, _ = _launch(5, _write_main(1, server_config=config))
        stats = next(s for kind, s in result.returns if kind == "server")
        assert stats.overflow_flushes >= 1
        payload = summary_payload(result.recorder)
        assert (
            payload["counters"]["rocpanda"]["overflow_flushes"]
            == stats.overflow_flushes
        )

    def test_no_overflow_no_counter(self):
        result, _ = _launch(5, _write_main(1))
        counters = summary_payload(result.recorder)["counters"]
        assert "overflow_flushes" not in counters.get("rocpanda", {})


class TestBackgroundWriteFaultReporting:
    """T-Rochdf's I/O thread must not die silently on write faults."""

    def test_exhausted_retries_surface_at_next_sync(self):
        plan = FaultPlan((TransientEIO(count=500),))  # never heals

        def main(ctx):
            com = Roccom(ctx)
            com.load_module(
                TRochdfModule(
                    ctx, retry=RetryPolicy(max_attempts=2, base_delay=1e-4)
                )
            )
            w = _declare(com)
            w.register_pane(ctx.rank, 16, 8)
            rng = np.random.default_rng(ctx.rank)
            w.set_array("coords", ctx.rank, rng.random((16, 3)))
            w.set_array("pressure", ctx.rank, rng.random(8))
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "bad")
            try:
                yield from com.call_function("OUT.sync")
            except BackgroundWriteError as exc:
                return ("failed", str(exc))
            return ("ok", None)

        result, _ = _launch(2, main, plan=plan)
        assert all(kind == "failed" for kind, _ in result.returns)
        assert all("bad" in message for _, message in result.returns)
        counters = summary_payload(result.recorder)["counters"]
        assert counters["trochdf"]["background_write_failures"] >= 2


class TestChaosMatrix:
    """ISSUE acceptance: 100% recovery, 100% determinism, full matrix."""

    def test_batched_shipping_rows_recover(self):
        """Spot-check: the rocpanda rows (which ship batched — the
        module's default) stay at 100% recovery/determinism, so the
        one-guarded-send batch path replays cleanly under faults."""
        payload = run_faultbench(
            skip_overhead=True,
            only=["server_crash/rocpanda", "msg_drop/rocpanda"],
        )
        assert payload["recovery_rate"] == 1.0
        assert payload["determinism_rate"] == 1.0

    def test_full_matrix_recovers_and_replays(self):
        payload = run_faultbench(skip_overhead=True)
        failed = [
            f"{r['scenario']}/{r['module']}"
            for r in payload["matrix"]
            if not (r["recovered"] and r["runs_identical"])
        ]
        assert not failed, f"non-recovered or non-deterministic rows: {failed}"
        assert payload["recovery_rate"] == 1.0
        assert payload["determinism_rate"] == 1.0
        assert len(payload["matrix"]) >= 10
