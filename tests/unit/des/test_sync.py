"""Unit tests for DES synchronization primitives."""

import pytest

from repro.des import CondVar, CyclicBarrier, Environment, Mutex, Semaphore


class TestMutex:
    def test_mutual_exclusion(self):
        env = Environment()
        mutex = Mutex(env)
        in_cs = [0]
        max_in_cs = [0]

        def worker():
            yield mutex.acquire()
            in_cs[0] += 1
            max_in_cs[0] = max(max_in_cs[0], in_cs[0])
            yield env.timeout(1)
            in_cs[0] -= 1
            mutex.release()

        for _ in range(5):
            env.process(worker())
        env.run()
        assert max_in_cs[0] == 1

    def test_release_unlocked_raises(self):
        env = Environment()
        mutex = Mutex(env)
        with pytest.raises(RuntimeError):
            mutex.release()

    def test_handoff_order_is_fifo(self):
        env = Environment()
        mutex = Mutex(env)
        order = []

        def worker(tag, arrive):
            yield env.timeout(arrive)
            yield mutex.acquire()
            order.append(tag)
            yield env.timeout(10)
            mutex.release()

        env.process(worker("a", 0))
        env.process(worker("b", 1))
        env.process(worker("c", 2))
        env.run()
        assert order == ["a", "b", "c"]

    def test_locked_property(self):
        env = Environment()
        mutex = Mutex(env)

        def proc():
            assert not mutex.locked
            yield mutex.acquire()
            assert mutex.locked
            mutex.release()
            assert not mutex.locked

        env.process(proc())
        env.run()


class TestCondVar:
    def test_wait_notify_roundtrip(self):
        env = Environment()
        mutex = Mutex(env)
        cond = CondVar(env, mutex)
        state = {"ready": False}
        trace = []

        def waiter():
            yield mutex.acquire()
            while not state["ready"]:
                yield from cond.wait()
            trace.append(("woke", env.now))
            mutex.release()

        def notifier():
            yield env.timeout(5)
            yield mutex.acquire()
            state["ready"] = True
            cond.notify()
            mutex.release()

        env.process(waiter())
        env.process(notifier())
        env.run()
        assert trace == [("woke", 5)]

    def test_wait_without_mutex_raises(self):
        env = Environment()
        mutex = Mutex(env)
        cond = CondVar(env, mutex)

        def proc():
            with pytest.raises(RuntimeError):
                yield from cond.wait()
            yield env.timeout(0)

        env.process(proc())
        env.run()

    def test_notify_all_wakes_everyone(self):
        env = Environment()
        mutex = Mutex(env)
        cond = CondVar(env, mutex)
        state = {"go": False}
        woken = []

        def waiter(tag):
            yield mutex.acquire()
            while not state["go"]:
                yield from cond.wait()
            woken.append(tag)
            mutex.release()

        def broadcaster():
            yield env.timeout(1)
            yield mutex.acquire()
            state["go"] = True
            cond.notify_all()
            mutex.release()

        for tag in range(3):
            env.process(waiter(tag))
        env.process(broadcaster())
        env.run()
        assert sorted(woken) == [0, 1, 2]

    def test_notify_with_no_waiters_is_noop(self):
        env = Environment()
        mutex = Mutex(env)
        cond = CondVar(env, mutex)
        cond.notify()
        cond.notify_all()


class TestSemaphore:
    def test_initial_value(self):
        env = Environment()
        sem = Semaphore(env, 3)
        assert sem.value == 3

    def test_negative_value_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            Semaphore(env, -1)

    def test_acquire_blocks_at_zero(self):
        env = Environment()
        sem = Semaphore(env, 1)
        trace = []

        def worker(tag):
            yield sem.acquire()
            trace.append((tag, env.now))
            yield env.timeout(5)
            sem.release()

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert trace == [("a", 0), ("b", 5)]

    def test_release_without_waiters_increments(self):
        env = Environment()
        sem = Semaphore(env, 0)
        sem.release()
        assert sem.value == 1


class TestCyclicBarrier:
    def test_all_released_together(self):
        env = Environment()
        barrier = CyclicBarrier(env, 3)
        release_times = []

        def worker(delay):
            yield env.timeout(delay)
            yield barrier.wait()
            release_times.append(env.now)

        env.process(worker(1))
        env.process(worker(5))
        env.process(worker(3))
        env.run()
        assert release_times == [5, 5, 5]

    def test_barrier_is_reusable(self):
        env = Environment()
        barrier = CyclicBarrier(env, 2)
        trace = []

        def worker(tag, d1, d2):
            yield env.timeout(d1)
            yield barrier.wait()
            trace.append((tag, 1, env.now))
            yield env.timeout(d2)
            yield barrier.wait()
            trace.append((tag, 2, env.now))

        env.process(worker("a", 1, 1))
        env.process(worker("b", 2, 5))
        env.run()
        round1 = [t for t in trace if t[1] == 1]
        round2 = [t for t in trace if t[1] == 2]
        assert all(t[2] == 2 for t in round1)
        assert all(t[2] == 7 for t in round2)
        assert barrier.generation == 2

    def test_invalid_parties(self):
        env = Environment()
        with pytest.raises(ValueError):
            CyclicBarrier(env, 0)
