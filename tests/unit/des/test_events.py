"""Unit tests for composite events (AllOf / AnyOf)."""

import pytest

from repro.des import AllOf, AnyOf, Environment


def test_allof_waits_for_all():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        result = yield AllOf(env, [t1, t2])
        times.append(env.now)
        assert result.values() == ["a", "b"]

    env.process(proc())
    env.run()
    assert times == [5]


def test_anyof_fires_on_first():
    env = Environment()
    times = []

    def proc():
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        result = yield AnyOf(env, [t1, t2])
        times.append(env.now)
        assert "fast" in result.values()

    env.process(proc())
    env.run()
    assert times == [1]


def test_and_operator():
    env = Environment()

    def proc():
        yield env.timeout(1) & env.timeout(3)
        assert env.now == 3

    env.process(proc())
    env.run()


def test_or_operator():
    env = Environment()

    def proc():
        yield env.timeout(1) | env.timeout(3)
        assert env.now == 1

    env.process(proc())
    env.run()


def test_empty_allof_fires_immediately():
    env = Environment()

    def proc():
        yield AllOf(env, [])
        assert env.now == 0

    env.process(proc())
    env.run()


def test_condition_value_mapping_api():
    env = Environment()

    def proc():
        t1 = env.timeout(1, value=10)
        t2 = env.timeout(2, value=20)
        result = yield AllOf(env, [t1, t2])
        assert result[t1] == 10
        assert result[t2] == 20
        assert t1 in result
        assert len(result) == 2
        assert result.todict() == {t1: 10, t2: 20}
        assert list(result.keys()) == [t1, t2]
        with pytest.raises(KeyError):
            result[env.event()]

    env.process(proc())
    env.run()


def test_allof_propagates_failure():
    env = Environment()
    caught = []

    def failer():
        yield env.timeout(1)
        raise ValueError("sub-process failed")

    def proc():
        try:
            yield AllOf(env, [env.process(failer()), env.timeout(10)])
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc())
    env.run()
    assert caught == ["sub-process failed"]


def test_allof_with_already_processed_events():
    env = Environment()
    e1 = env.event()
    e1.succeed("pre")
    env.run()

    def proc():
        result = yield AllOf(env, [e1, env.timeout(2, value="post")])
        assert result.values() == ["pre", "post"]
        assert env.now == 2

    env.process(proc())
    env.run()


def test_anyof_value_contains_only_fired_events():
    env = Environment()

    def proc():
        fast = env.timeout(1, value="x")
        slow = env.timeout(9, value="y")
        result = yield AnyOf(env, [fast, slow])
        assert list(result.values()) == ["x"]
        assert slow not in result

    env.process(proc())
    env.run()


def test_cross_environment_events_rejected():
    env1 = Environment()
    env2 = Environment()
    t1 = env1.timeout(1)
    t2 = env2.timeout(1)
    with pytest.raises(ValueError):
        AllOf(env1, [t1, t2])


def test_env_helpers_all_of_any_of():
    env = Environment()

    def proc():
        yield env.all_of([env.timeout(1), env.timeout(2)])
        assert env.now == 2
        yield env.any_of([env.timeout(1), env.timeout(2)])
        assert env.now == 3

    env.process(proc())
    env.run()
