"""Unit tests for DES resources: Resource, Store, FilterStore, Container."""

import pytest

from repro.des import (
    Container,
    Environment,
    FilterStore,
    PriorityResource,
    Resource,
    Store,
)


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity_immediately(self):
        env = Environment()
        res = Resource(env, capacity=2)
        granted = []

        def user(tag):
            req = res.request()
            yield req
            granted.append((tag, env.now))
            yield env.timeout(10)
            res.release(req)

        for tag in ("a", "b", "c"):
            env.process(user(tag))
        env.run()
        assert granted == [("a", 0), ("b", 0), ("c", 10)]

    def test_fifo_queueing(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(tag, hold):
            req = res.request()
            yield req
            order.append(tag)
            yield env.timeout(hold)
            res.release(req)

        env.process(user("first", 5))
        env.process(user("second", 5))
        env.process(user("third", 5))
        env.run()
        assert order == ["first", "second", "third"]

    def test_count_tracks_users(self):
        env = Environment()
        res = Resource(env, capacity=3)

        def user():
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        env.process(user())
        env.process(user())
        env.run(until=1)
        assert res.count == 2
        env.run()
        assert res.count == 0

    def test_release_ungrated_request_errors(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield env.timeout(100)

        def bad():
            yield env.timeout(1)
            req = res.request()  # queued, not granted
            res.release(req)
            yield env.timeout(0)

        env.process(holder())
        env.process(bad())
        with pytest.raises(RuntimeError):
            env.run()

    def test_cancel_removes_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        served = []

        def holder():
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def impatient():
            yield env.timeout(1)
            req = res.request()
            req.cancel()
            served.append("cancelled")
            yield env.timeout(0)

        def patient():
            yield env.timeout(2)
            req = res.request()
            yield req
            served.append(("patient", env.now))
            res.release(req)

        env.process(holder())
        env.process(impatient())
        env.process(patient())
        env.run()
        assert ("patient", 10) in served


class TestPriorityResource:
    def test_lower_priority_value_served_first(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def user(tag, prio, arrive):
            yield env.timeout(arrive)
            req = res.request(priority=prio)
            yield req
            order.append(tag)
            res.release(req)

        env.process(holder())
        env.process(user("low-prio", 5, 1))
        env.process(user("high-prio", 0, 2))
        env.run()
        assert order == ["high-prio", "low-prio"]

    def test_equal_priority_is_fifo(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            req = res.request()
            yield req
            yield env.timeout(10)
            res.release(req)

        def user(tag, arrive):
            yield env.timeout(arrive)
            req = res.request(priority=1)
            yield req
            order.append(tag)
            res.release(req)

        env.process(holder())
        env.process(user("a", 1))
        env.process(user("b", 2))
        env.run()
        assert order == ["a", "b"]


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            yield store.put("item1")
            yield store.put("item2")

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["item1", "item2"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, env.now))

        def producer():
            yield env.timeout(5)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [("late", 5)]

    def test_bounded_store_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        trace = []

        def producer():
            yield store.put("a")
            trace.append(("put-a", env.now))
            yield store.put("b")
            trace.append(("put-b", env.now))

        def consumer():
            yield env.timeout(3)
            item = yield store.get()
            trace.append((f"got-{item}", env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("put-a", 0) in trace
        assert ("put-b", 3) in trace

    def test_len_reports_items(self):
        env = Environment()
        store = Store(env)
        store.put("x")
        store.put("y")
        env.run()
        assert len(store) == 2

    def test_fifo_ordering_of_getters(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(tag):
            item = yield store.get()
            got.append((tag, item))

        def producer():
            yield env.timeout(1)
            yield store.put(1)
            yield store.put(2)

        env.process(consumer("first"))
        env.process(consumer("second"))
        env.process(producer())
        env.run()
        assert got == [("first", 1), ("second", 2)]

    def test_invalid_capacity(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestFilterStore:
    def test_filter_matches_specific_item(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def producer():
            yield store.put({"tag": 1, "data": "one"})
            yield store.put({"tag": 2, "data": "two"})

        def consumer():
            item = yield store.get(lambda m: m["tag"] == 2)
            got.append(item["data"])

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["two"]
        assert len(store.items) == 1

    def test_narrow_getter_does_not_block_others(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def narrow():
            item = yield store.get(lambda x: x == "never")
            got.append(("narrow", item))

        def broad():
            item = yield store.get(lambda x: True)
            got.append(("broad", item))

        def producer():
            yield env.timeout(1)
            yield store.put("anything")

        env.process(narrow())
        env.process(broad())
        env.process(producer())
        env.run(until=10)
        assert got == [("broad", "anything")]

    def test_get_without_filter_takes_first(self):
        env = Environment()
        store = FilterStore(env)
        store.put("a")
        store.put("b")
        got = []

        def consumer():
            got.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert got == ["a"]

    def test_waiting_getter_served_on_matching_put(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def consumer():
            item = yield store.get(lambda x: x % 2 == 0)
            got.append((item, env.now))

        def producer():
            yield env.timeout(1)
            yield store.put(3)
            yield env.timeout(1)
            yield store.put(4)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(4, 2)]
        assert store.items == [3]


class TestContainer:
    def test_initial_level(self):
        env = Environment()
        c = Container(env, capacity=100, init=40)
        assert c.level == 40

    def test_put_and_get_adjust_level(self):
        env = Environment()
        c = Container(env, capacity=100, init=0)

        def proc():
            yield c.put(30)
            assert c.level == 30
            yield c.get(10)
            assert c.level == 20

        env.process(proc())
        env.run()

    def test_get_blocks_until_enough(self):
        env = Environment()
        c = Container(env, capacity=100, init=0)
        times = []

        def consumer():
            yield c.get(50)
            times.append(env.now)

        def producer():
            yield env.timeout(1)
            yield c.put(20)
            yield env.timeout(1)
            yield c.put(30)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [2]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        c = Container(env, capacity=50, init=40)
        times = []

        def producer():
            yield c.put(20)
            times.append(env.now)

        def consumer():
            yield env.timeout(5)
            yield c.get(15)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [5]

    def test_invalid_amounts(self):
        env = Environment()
        c = Container(env, capacity=10)
        with pytest.raises(ValueError):
            c.put(0)
        with pytest.raises(ValueError):
            c.get(-1)

    def test_invalid_init(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=20)
