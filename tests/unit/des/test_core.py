"""Unit tests for the DES kernel core: Environment, Event, Process."""

import pytest

from repro.des import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_initial_time_defaults_to_zero():
    env = Environment()
    assert env.now == 0.0


def test_initial_time_can_be_set():
    env = Environment(42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(3.0)
        assert env.now == 3.0
        yield env.timeout(1.5)
        assert env.now == 4.5

    env.process(proc())
    env.run()
    assert env.now == 4.5


def test_timeout_value_is_delivered():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1, value="payload")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value_becomes_event_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 99

    p = env.process(proc())
    result = env.run(until=p)
    assert result == 99


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1)

    env.process(proc())
    env.run(until=10)
    assert env.now == 10


def test_run_until_past_time_raises():
    env = Environment(5)
    with pytest.raises(ValueError):
        env.run(until=3)

def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_returns_none_when_events_exhausted():
    env = Environment()

    def proc():
        yield env.timeout(1)

    env.process(proc())
    assert env.run() is None


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def waiter(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(waiter(3, "c"))
    env.process(waiter(1, "a"))
    env.process(waiter(2, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    order = []

    def waiter(tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in "abcd":
        env.process(waiter(tag))
    env.run()
    assert order == list("abcd")


def test_event_succeed_delivers_value():
    env = Environment()
    event = env.event()
    got = []

    def waiter():
        got.append((yield event))

    def trigger():
        yield env.timeout(2)
        event.succeed("done")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == ["done"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def waiter():
        try:
            yield event
        except RuntimeError as exc:
            caught.append(str(exc))

    def trigger():
        yield env.timeout(1)
        event.fail(RuntimeError("boom"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert caught == ["boom"]


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_trigger_on_already_triggered_event_rejected():
    # Regression: trigger() used as a chaining callback must refuse a
    # second firing just like succeed()/fail() do, instead of silently
    # rescheduling the event and overwriting its value.
    env = Environment()
    source = env.event()
    source.succeed("first")
    chained = env.event()
    chained.trigger(source)
    with pytest.raises(RuntimeError, match="already been triggered"):
        chained.trigger(source)
    assert chained.value == "first"


@pytest.mark.parametrize("delay", [float("nan"), float("inf")])
def test_non_finite_timeout_rejected(delay):
    # Regression: a NaN/inf delay would poison the heap ordering of
    # every event scheduled after it.
    env = Environment()
    with pytest.raises(ValueError, match="non-finite"):
        env.timeout(delay)


def test_unhandled_process_exception_propagates_to_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise ValueError("kaput")

    env.process(proc())
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_waiting_on_failed_process_rethrows():
    env = Environment()

    def inner():
        yield env.timeout(1)
        raise ValueError("inner error")

    caught = []

    def outer():
        try:
            yield env.process(inner())
        except ValueError as exc:
            caught.append(str(exc))

    env.process(outer())
    env.run()
    assert caught == ["inner error"]


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    event = env.event()
    event.succeed("early")
    env.run()  # processes the event
    got = []

    def proc():
        got.append((yield event))
        yield env.timeout(1)
        got.append(env.now)

    env.process(proc())
    env.run()
    assert got == ["early", 1]


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            causes.append(exc.cause)
            assert env.now == 5

    def attacker(v):
        yield env.timeout(5)
        v.interrupt("wake up")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert causes == ["wake up"]


def test_interrupted_process_can_continue():
    env = Environment()
    trace = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt:
            trace.append(("interrupted", env.now))
        yield env.timeout(10)
        trace.append(("done", env.now))

    def attacker(v):
        yield env.timeout(5)
        v.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert trace == [("interrupted", 5), ("done", 15)]


def test_interrupt_dead_process_raises():
    env = Environment()

    def victim():
        yield env.timeout(1)

    v = env.process(victim())
    env.run()
    with pytest.raises(RuntimeError):
        v.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()

    def proc():
        with pytest.raises(RuntimeError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.process(proc())
    env.run()


def test_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(5)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_active_process_is_none_between_events():
    env = Environment()
    assert env.active_process is None

    def proc():
        assert env.active_process is not None
        yield env.timeout(1)

    env.process(proc())
    env.run()
    assert env.active_process is None


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.timeout(3)
    assert env.peek() == 3


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_run_until_event_that_never_fires_raises():
    env = Environment()
    event = env.event()

    def proc():
        yield env.timeout(1)

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run(until=event)


def test_nested_process_chain():
    env = Environment()

    def leaf():
        yield env.timeout(2)
        return "leaf-result"

    def mid():
        value = yield env.process(leaf())
        return f"mid({value})"

    def top():
        value = yield env.process(mid())
        return f"top({value})"

    p = env.process(top())
    assert env.run(until=p) == "top(mid(leaf-result))"
    assert env.now == 2
