"""Unit tests for the DES core's batched scheduling (PR 7 tentpole).

Covers ``schedule_many``, the zero-delay "now ladder", and the scaling
diagnostics (``events_processed`` / ``max_queue_depth``) the scalebench
reads.
"""

import pytest

from repro.des import EmptySchedule, Environment, URGENT


def fired_order(env, events):
    order = []
    for i, ev in enumerate(events):
        ev.callbacks.append(lambda e, i=i: order.append(i))
    return order


class TestScheduleMany:
    def test_matches_per_event_schedule_order(self):
        env_a, env_b = Environment(), Environment()
        evs_a = [env_a.event() for _ in range(50)]
        evs_b = [env_b.event() for _ in range(50)]
        order_a = fired_order(env_a, evs_a)
        order_b = fired_order(env_b, evs_b)
        for ev in evs_a:
            ev._ok = True
            env_a.schedule(ev)
        for ev in evs_b:
            ev._ok = True
        env_b.schedule_many(evs_b)
        env_a.run()
        env_b.run()
        assert order_a == order_b == list(range(50))

    def test_delayed_batch_fires_at_shared_time(self):
        env = Environment()
        evs = [env.event() for _ in range(10)]
        times = []
        for ev in evs:
            ev._ok = True
            ev.callbacks.append(lambda e: times.append(env.now))
        env.schedule_many(evs, delay=2.5)
        env.run()
        assert times == [2.5] * 10

    def test_priority_batch_beats_normal_same_time(self):
        env = Environment()
        order = []
        normal = env.event()
        normal._ok = True
        normal.callbacks.append(lambda e: order.append("normal"))
        urgent = [env.event() for _ in range(3)]
        for ev in urgent:
            ev._ok = True
            ev.callbacks.append(lambda e: order.append("urgent"))
        env.schedule(normal)
        env.schedule_many(urgent, priority=URGENT)
        env.run()
        assert order == ["urgent", "urgent", "urgent", "normal"]

    def test_empty_iterable_is_noop(self):
        env = Environment()
        env.schedule_many([])
        with pytest.raises(EmptySchedule):
            env.step()


class TestNowLadder:
    def test_zero_delay_normal_goes_to_deque(self):
        env = Environment()
        ev = env.event()
        ev._ok = True
        env.schedule(ev)
        assert len(env._nowq) == 1 and not env._queue

    def test_nonzero_delay_goes_to_heap(self):
        env = Environment()
        ev = env.event()
        ev._ok = True
        env.schedule(ev, delay=0.1)
        assert not env._nowq and len(env._queue) == 1

    def test_urgent_zero_delay_goes_to_heap(self):
        env = Environment()
        ev = env.event()
        ev._ok = True
        env.schedule(ev, priority=URGENT)
        assert not env._nowq and len(env._queue) == 1

    def test_merge_preserves_single_heap_order(self):
        """Interleaved now-ladder and heap events pop in exactly the
        order a single heap would produce: (time, priority, eid)."""
        env = Environment()
        order = []

        def proc():
            # A timeout (heap) racing zero-delay events (deque).
            t = env.timeout(0.0)  # delay 0 but via timeout -> now-ladder
            yield t
            order.append("t0")
            yield env.timeout(1.0)
            order.append("t1")

        env.process(proc(), name="p")
        late = env.event()
        late._ok = True
        late.callbacks.append(lambda e: order.append("late"))
        env.schedule(late, delay=0.5)
        env.run()
        assert order == ["t0", "late", "t1"]

    def test_peek_sees_both_queues(self):
        env = Environment()
        heap_ev = env.event()
        heap_ev._ok = True
        env.schedule(heap_ev, delay=3.0)
        assert env.peek() == 3.0
        now_ev = env.event()
        now_ev._ok = True
        env.schedule(now_ev)
        assert env.peek() == 0.0


class TestScalingDiagnostics:
    def test_events_processed_counts_run_loop(self):
        env = Environment()

        def ticker():
            for _ in range(100):
                yield env.timeout(1.0)

        env.process(ticker(), name="t")
        env.run()
        # One init event + 100 timeouts (each timeout fires one event).
        assert env.events_processed >= 100

    def test_events_processed_accumulates_across_runs(self):
        env = Environment()

        def ticker(n):
            for _ in range(n):
                yield env.timeout(1.0)

        env.process(ticker(10), name="a")
        env.run()
        first = env.events_processed
        env.process(ticker(10), name="b")
        env.run()
        assert env.events_processed > first

    def test_step_counts_too(self):
        env = Environment()
        ev = env.event()
        ev._ok = True
        env.schedule(ev)
        env.step()
        assert env.events_processed == 1

    def test_max_queue_depth_sampled(self):
        env = Environment()
        # Enough simultaneous pending events to cross the sample mask.
        n = env._DEPTH_SAMPLE_MASK * 2 + 10

        def spawn():
            evs = [env.event() for _ in range(n)]
            for ev in evs:
                ev._ok = True
            env.schedule_many(evs, delay=1.0)
            yield env.timeout(0.5)

        env.process(spawn(), name="s")
        env.run()
        assert env.max_queue_depth > 0
