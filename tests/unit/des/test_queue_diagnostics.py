"""Diagnostics accuracy under lazy cancellation and fused bulk delivery.

The scaling benchmarks report ``events_processed`` / ``max_queue_depth``
per run; these must stay meaningful with the PR-8 queue features:
cancelled entries may linger physically in the heap but must not
inflate the depth, and a fused bulk entry must count its whole fan-out
so event totals stay comparable across queue implementations.
"""

import pytest

from repro.des import NORMAL, Environment


class TestCancellationDiagnostics:
    def test_cancelled_events_do_not_inflate_queue_depth(self):
        env = Environment()
        timeouts = [env.timeout(1.0 + i) for i in range(10)]
        assert env.queue_depth() == 10
        for t in timeouts[3:]:
            assert t.cancel() is True
        # Entries still sit in the heap, but the depth discounts them.
        assert env.queue_depth() == 3
        assert env.events_cancelled == 7

    def test_cancelled_events_do_not_count_as_processed(self):
        env = Environment()
        keep = env.timeout(1.0)
        dead = [env.timeout(2.0) for _ in range(5)]
        for t in dead:
            t.cancel()
        env.run()
        assert env.events_processed == 1
        assert env.events_cancelled == 5
        assert keep.processed
        assert all(t.cancelled for t in dead)

    def test_depth_drops_to_zero_after_run_despite_cancellations(self):
        env = Environment()
        for i in range(8):
            t = env.timeout(0.5 * (i + 1))
            if i % 2:
                t.cancel()
        env.run()
        assert env.queue_depth() == 0
        assert env._ncancelled == 0

    def test_spec_queue_reports_identical_diagnostics(self):
        def drive(queue):
            env = Environment(queue=queue)
            ts = [env.timeout(1.0) for _ in range(6)]
            for t in ts[2:]:
                t.cancel()
            env.run()
            return env.events_processed, env.events_cancelled, env.queue_depth()

        assert drive("bucketed") == drive("heapq")


class TestBulkDeliveryDiagnostics:
    def test_fused_bulk_counts_fan_out(self):
        """N same-key callbacks fused into one entry still count N."""
        env = Environment()
        hits = []
        for i in range(16):
            env.schedule_callback(hits.append, i, priority=NORMAL, delay=2.0)
        env.run()
        assert hits == list(range(16))
        assert env.events_processed == 16
        # At least one fusion actually happened on the bucketed queue.
        assert env.bulk_merged >= 1

    def test_bulk_fan_out_matches_spec_queue_total(self):
        def drive(queue):
            env = Environment(queue=queue)
            out = []
            for i in range(12):
                env.schedule_callback(out.append, i, delay=1.0)
            for i in range(4):
                env.timeout(0.5)
            env.run()
            return out, env.events_processed

        bucketed, spec = drive("bucketed"), drive("heapq")
        assert bucketed == spec

    def test_now_ladder_bulk_counts_fan_out(self):
        """Zero-delay fused callbacks count their fan-out too."""
        env = Environment()
        hits = []

        def proc():
            for i in range(8):
                env.schedule_callback(hits.append, i)
            yield env.timeout(0.1)

        env.process(proc())
        env.run()
        assert hits == list(range(8))
        # 8 callbacks + Initialize + the timeout resume + process end.
        assert env.events_processed == 11

    def test_max_queue_depth_sampling_discounts_cancelled(self):
        """Sampled max depth never exceeds the live entry count."""
        env = Environment(initial_time=0.0)
        env._DEPTH_SAMPLE_MASK = 0  # sample on every event
        live = [env.timeout(1.0 + i) for i in range(4)]
        dead = [env.timeout(50.0 + i) for i in range(20)]
        for t in dead:
            t.cancel()
        env.run()
        assert env.max_queue_depth <= len(live) + len(dead)
        # The cancelled block must not dominate the sampled depth: the
        # very first sample happens after one pop with 3 live entries
        # remaining, so a correct discount keeps the max at <= 23 but
        # the *live* depth component at <= 3.
        assert env.max_queue_depth <= 23

    def test_pooled_sleep_counts_once_per_fire(self):
        env = Environment()

        def proc():
            for _ in range(5):
                yield env.sleep(0.5)

        env.process(proc())
        env.run()
        # Initialize + 5 sleeps + process end.
        assert env.events_processed == 7


class TestDepthSamplingInstance:
    def test_sample_mask_override_is_instance_local(self):
        env = Environment()
        env._DEPTH_SAMPLE_MASK = 0
        assert Environment._DEPTH_SAMPLE_MASK == 4095
