"""Unit tests for virtual threads."""

import pytest

from repro.des import Environment, Interrupt, Mutex
from repro.vthread import VThread


def test_thread_runs_concurrently_with_spawner():
    env = Environment()
    trace = []

    def worker():
        yield env.timeout(2)
        trace.append(("worker", env.now))

    def main():
        VThread(env, worker())
        yield env.timeout(1)
        trace.append(("main", env.now))

    env.process(main())
    env.run()
    assert trace == [("main", 1), ("worker", 2)]


def test_join_returns_thread_value():
    env = Environment()
    out = []

    def worker():
        yield env.timeout(3)
        return "finished"

    def main():
        t = VThread(env, worker())
        value = yield from t.join()
        out.append((value, env.now))

    env.process(main())
    env.run()
    assert out == [("finished", 3)]


def test_alive_flag():
    env = Environment()
    states = []

    def worker():
        yield env.timeout(5)

    def main():
        t = VThread(env, worker())
        states.append(t.alive)
        yield from t.join()
        states.append(t.alive)

    env.process(main())
    env.run()
    assert states == [True, False]


def test_cancel_interrupts_thread():
    env = Environment()
    trace = []

    def worker():
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            trace.append(("interrupted", exc.cause, env.now))

    def main():
        t = VThread(env, worker())
        yield env.timeout(2)
        t.cancel("shutdown")
        yield from t.join()

    env.process(main())
    env.run()
    assert trace == [("interrupted", "shutdown", 2)]


def test_cancel_dead_thread_is_noop():
    env = Environment()

    def worker():
        yield env.timeout(1)

    def main():
        t = VThread(env, worker())
        yield from t.join()
        t.cancel()  # must not raise

    env.process(main())
    env.run()


def test_thread_shares_mutex_with_main():
    env = Environment()
    order = []

    def worker(mutex):
        yield mutex.acquire()
        order.append(("worker-acquired", env.now))
        yield env.timeout(4)
        mutex.release()

    def main():
        mutex = Mutex(env)
        yield mutex.acquire()
        VThread(env, worker(mutex))
        yield env.timeout(3)
        mutex.release()
        order.append(("main-released", env.now))
        yield mutex.acquire()
        order.append(("main-reacquired", env.now))
        mutex.release()

    env.process(main())
    env.run()
    assert order == [
        ("main-released", 3),
        ("worker-acquired", 3),
        ("main-reacquired", 7),
    ]
