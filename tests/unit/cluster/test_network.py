"""Unit tests for the network model."""

import pytest

from repro.cluster import Network, NetworkSpec, Node
from repro.des import Environment
from repro.util import GB, MB, USEC


def make_net(env, spec=None, nnodes=2, nprocs=4):
    nodes = [Node(i, 2, 1 * GB) for i in range(nnodes)]
    net = Network(env, spec or NetworkSpec(), nodes, nprocs)
    return net, nodes


def drive(env, gen):
    start = env.now

    def proc():
        yield from gen

    p = env.process(proc())
    env.run(until=p)
    return env.now - start


def test_inter_node_transfer_time():
    env = Environment()
    spec = NetworkSpec(latency=100 * USEC, inter_bw=100 * MB, scale_alpha=0.0)
    net, nodes = make_net(env, spec)
    elapsed = drive(env, net.transfer(nodes[0], nodes[1], 100 * MB))
    assert elapsed == pytest.approx(1.0 + 100 * USEC)


def test_intra_node_uses_memory_bandwidth():
    env = Environment()
    spec = NetworkSpec(latency=0.0, inter_bw=100 * MB, intra_bw=400 * MB)
    net, nodes = make_net(env, spec)
    elapsed = drive(env, net.transfer(nodes[0], nodes[0], 400 * MB))
    assert elapsed == pytest.approx(1.0)


def test_scale_alpha_inflates_latency():
    env = Environment()
    spec = NetworkSpec(latency=100 * USEC, scale_alpha=0.01)
    net, _ = make_net(env, spec, nprocs=100)
    assert net.effective_latency() == pytest.approx(100 * USEC * 2.0)


def test_nic_contention_serializes_incoming():
    env = Environment()
    spec = NetworkSpec(latency=0.0, inter_bw=10 * MB, nic_streams=1)
    net, nodes = make_net(env, spec, nnodes=3)

    def sender(src):
        yield from net.transfer(src, nodes[2], 10 * MB)

    procs = [env.process(sender(nodes[0])), env.process(sender(nodes[1]))]
    env.run(until=env.all_of(procs))
    # Two 1s transfers into one NIC slot => 2s.
    assert env.now == pytest.approx(2.0)


def test_multiple_nic_streams_allow_parallelism():
    env = Environment()
    spec = NetworkSpec(latency=0.0, inter_bw=10 * MB, nic_streams=2)
    net, nodes = make_net(env, spec, nnodes=3)

    def sender(src):
        yield from net.transfer(src, nodes[2], 10 * MB)

    procs = [env.process(sender(nodes[0])), env.process(sender(nodes[1]))]
    env.run(until=env.all_of(procs))
    assert env.now == pytest.approx(1.0)


def test_intra_node_transfers_bypass_nic():
    env = Environment()
    spec = NetworkSpec(latency=0.0, inter_bw=10 * MB, intra_bw=10 * MB, nic_streams=1)
    net, nodes = make_net(env, spec)

    def intra():
        yield from net.transfer(nodes[0], nodes[0], 10 * MB)

    procs = [env.process(intra()) for _ in range(3)]
    env.run(until=env.all_of(procs))
    # Memory copies proceed in parallel in this model.
    assert env.now == pytest.approx(1.0)


def test_external_load_slows_transfer():
    env = Environment()
    spec = NetworkSpec(latency=0.0, inter_bw=10 * MB)
    net, nodes = make_net(env, spec)
    nodes[1].external_load = 2.0
    elapsed = drive(env, net.transfer(nodes[0], nodes[1], 10 * MB))
    assert elapsed == pytest.approx(2.0)


def test_control_message_is_latency_only():
    env = Environment()
    spec = NetworkSpec(latency=50 * USEC, scale_alpha=0.0)
    net, nodes = make_net(env, spec)
    elapsed = drive(env, net.control_message(nodes[0], nodes[1]))
    assert elapsed == pytest.approx(50 * USEC)


def test_eager_threshold_classification():
    env = Environment()
    spec = NetworkSpec(eager_threshold=1024)
    net, _ = make_net(env, spec)
    assert net.is_eager(1024)
    assert not net.is_eager(1025)


def test_traffic_accounting():
    env = Environment()
    net, nodes = make_net(env)
    drive(env, net.transfer(nodes[0], nodes[1], 1000))
    drive(env, net.transfer(nodes[0], nodes[1], 500))
    assert net.bytes_transferred == 1500
    assert net.messages == 2
