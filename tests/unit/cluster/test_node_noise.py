"""Unit tests for nodes, CPUs, and the noise/interference models."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec, NoNoise, Node, OSNoise
from repro.cluster.node import ROLE_COMPUTE, ROLE_SERVER
from repro.cluster.noise import ExternalLoad, NoExternalLoad
from repro.cluster.presets import frost, turing
from repro.cluster.presets import testbox as make_testbox
from repro.util import GB


class TestNode:
    def test_cpu_assignment(self):
        node = Node(0, ncpus=4, mem_bytes=1 * GB)
        node.cpus[0].assign(7, ROLE_COMPUTE)
        assert node.cpus[0].occupied
        assert node.cpus[0].rank == 7
        assert len(node.free_cpus()) == 3

    def test_double_assignment_rejected(self):
        node = Node(0, ncpus=2, mem_bytes=1 * GB)
        node.cpus[0].assign(0, ROLE_COMPUTE)
        with pytest.raises(RuntimeError):
            node.cpus[0].assign(1, ROLE_COMPUTE)

    def test_bad_role_rejected(self):
        node = Node(0, ncpus=1, mem_bytes=1 * GB)
        with pytest.raises(ValueError):
            node.cpus[0].assign(0, "chef")

    def test_invalid_ncpus(self):
        with pytest.raises(ValueError):
            Node(0, ncpus=0, mem_bytes=1 * GB)

    def test_role_queries(self):
        node = Node(0, ncpus=4, mem_bytes=1 * GB)
        node.cpus[0].assign(0, ROLE_SERVER)
        node.cpus[1].assign(1, ROLE_COMPUTE)
        assert len(node.server_cpus()) == 1
        assert len(node.compute_cpus()) == 1
        assert len(node.free_cpus()) == 2

    def test_absorbing_capacity(self):
        node = Node(0, ncpus=3, mem_bytes=1 * GB)
        # All free: capacity 3.
        assert node.noise_absorbing_capacity() == pytest.approx(3.0)
        node.cpus[0].assign(0, ROLE_COMPUTE)
        assert node.noise_absorbing_capacity() == pytest.approx(2.0)
        node.cpus[1].assign(1, ROLE_SERVER)
        node.cpus[1].server_busy_fraction = 0.2
        assert node.noise_absorbing_capacity() == pytest.approx(1.0 + 0.8)


class TestOSNoise:
    def _node_fully_busy(self, ncpus=4):
        node = Node(0, ncpus=ncpus, mem_bytes=1 * GB)
        for i, cpu in enumerate(node.cpus):
            cpu.assign(i, ROLE_COMPUTE)
        return node

    def test_no_noise_model_returns_zero(self):
        node = self._node_fully_busy()
        rng = np.random.default_rng(0)
        assert NoNoise().compute_penalty(node, 100.0, rng) == 0.0

    def test_idle_cpu_absorbs_noise(self):
        node = Node(0, ncpus=4, mem_bytes=1 * GB)
        for i in range(3):
            node.cpus[i].assign(i, ROLE_COMPUTE)
        noise = OSNoise(duty=0.05, leak=0.0)
        rng = np.random.default_rng(0)
        penalties = [noise.compute_penalty(node, 10.0, rng) for _ in range(100)]
        assert max(penalties) == 0.0

    def test_busy_node_pays_noise(self):
        node = self._node_fully_busy()
        noise = OSNoise(duty=0.05, leak=0.0)
        rng = np.random.default_rng(0)
        penalties = [noise.compute_penalty(node, 10.0, rng) for _ in range(200)]
        mean = np.mean(penalties)
        # Expected mean share: duty/ncpus * duration = 0.05/4*10 = 0.125
        assert 0.08 < mean < 0.18
        assert min(penalties) >= 0.0

    def test_server_cpu_absorbs_most_noise(self):
        node = Node(0, ncpus=4, mem_bytes=1 * GB)
        for i in range(3):
            node.cpus[i].assign(i, ROLE_COMPUTE)
        node.cpus[3].assign(3, ROLE_SERVER)
        node.cpus[3].server_busy_fraction = 0.15
        noise = OSNoise(duty=0.05, leak=0.0)
        rng = np.random.default_rng(0)
        penalties = [noise.compute_penalty(node, 10.0, rng) for _ in range(100)]
        # Server absorbs 0.85 CPUs of noise > duty 0.05: fully absorbed.
        assert max(penalties) == 0.0

    def test_leak_gives_small_penalty_even_when_absorbed(self):
        node = Node(0, ncpus=2, mem_bytes=1 * GB)
        node.cpus[0].assign(0, ROLE_COMPUTE)
        noise = OSNoise(duty=0.05, leak=0.01)
        rng = np.random.default_rng(0)
        penalties = [noise.compute_penalty(node, 10.0, rng) for _ in range(200)]
        assert 0 < np.mean(penalties) < 0.5

    def test_invalid_duty(self):
        with pytest.raises(ValueError):
            OSNoise(duty=1.5)


class TestExternalLoad:
    def test_no_external_load_factor_is_one(self):
        rng = np.random.default_rng(0)
        assert NoExternalLoad().sample_factor(rng) == 1.0

    def test_factors_at_least_one(self):
        load = ExternalLoad()
        rng = np.random.default_rng(1)
        factors = [load.sample_factor(rng) for _ in range(200)]
        assert all(f >= 1.0 for f in factors)
        assert any(f > 1.0 for f in factors)

    def test_apply_sets_node_attributes(self):
        load = ExternalLoad(p_loaded=1.0)
        nodes = [Node(i, 2, 1 * GB) for i in range(5)]
        load.apply(nodes, np.random.default_rng(2))
        assert all(n.external_load > 1.0 for n in nodes)


class TestMachine:
    def test_requires_fs_factory(self):
        spec = MachineSpec(name="x", nnodes=1, cpus_per_node=1)
        with pytest.raises(ValueError):
            Machine(spec)

    def test_testbox_builds(self):
        m = Machine(make_testbox(), seed=3)
        assert len(m.nodes) == 4
        assert m.fs is not None
        assert m.disk is not None

    def test_compute_time_nominal_on_quiet_machine(self):
        m = Machine(make_testbox(), seed=0)
        assert m.compute_time(m.nodes[0], 2.5) == pytest.approx(2.5)

    def test_compute_time_negative_rejected(self):
        m = Machine(make_testbox(), seed=0)
        with pytest.raises(ValueError):
            m.compute_time(m.nodes[0], -1)

    def test_network_requires_build(self):
        m = Machine(make_testbox(), seed=0)
        with pytest.raises(RuntimeError):
            _ = m.network
        net = m.build_network(4)
        assert m.network is net

    def test_shared_disk_between_machines(self):
        m1 = Machine(make_testbox(), seed=0)
        m1.disk.create("checkpoint").append(b"state")
        m2 = Machine(make_testbox(), seed=1, disk=m1.disk)
        assert m2.disk.open("checkpoint").read() == b"state"

    def test_turing_preset_shape(self):
        spec = turing()
        assert spec.nnodes == 208
        assert spec.cpus_per_node == 2
        assert spec.network.scale_alpha > 0
        m = Machine(spec, seed=0)
        assert type(m.fs).__name__ == "NFSModel"

    def test_frost_preset_shape(self):
        spec = frost()
        assert spec.nnodes == 63
        assert spec.cpus_per_node == 16
        m = Machine(spec, seed=0)
        assert type(m.fs).__name__ == "GPFSModel"
        assert isinstance(spec.noise, OSNoise)

    def test_same_seed_same_external_load(self):
        spec = turing()
        m1 = Machine(spec, seed=42)
        m2 = Machine(spec, seed=42)
        assert [n.external_load for n in m1.nodes] == [
            n.external_load for n in m2.nodes
        ]
