"""Unit tests for fault plans and the live injector."""

import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.des import Interrupt
from repro.faults import (
    DiskFull,
    FaultPlan,
    MessageFault,
    ServerCrash,
    Straggler,
    TransientEIO,
)
from repro.fs import TransientIOError
from repro.vmpi import run_spmd


class TestFaultPlan:
    def test_of_type_filters(self):
        plan = FaultPlan(
            (
                ServerCrash(rank=1, at_time=2.0),
                TransientEIO(count=3),
                ServerCrash(rank=2, at_time=4.0),
            )
        )
        assert len(plan) == 3
        assert [f.rank for f in plan.of_type(ServerCrash)] == [1, 2]
        assert len(plan.of_type(TransientEIO)) == 1
        assert plan.of_type(DiskFull) == ()

    def test_plan_is_immutable_and_iterable(self):
        plan = FaultPlan([TransientEIO()])  # list coerced to tuple
        assert isinstance(plan.faults, tuple)
        assert list(plan) == [TransientEIO()]
        with pytest.raises(AttributeError):
            plan.faults = ()

    def test_message_fault_kind_validated(self):
        with pytest.raises(ValueError):
            MessageFault("corrupt")
        for kind in ("drop", "duplicate", "delay"):
            MessageFault(kind)


def _machine(plan=None, seed=0):
    machine = Machine(make_testbox(nnodes=4, cpus_per_node=4), seed=seed)
    if plan is not None:
        machine.install_faults(plan)
    return machine


class TestInjectorDiskFaults:
    def test_transient_eio_budget(self):
        machine = _machine(FaultPlan((TransientEIO(count=2),)))
        f = machine.disk.create("ck_x")
        for _ in range(2):
            with pytest.raises(TransientIOError):
                f.append(b"data")
        f.append(b"data")  # budget exhausted
        assert f.read() == b"data"

    def test_transient_eio_path_prefix_filter(self):
        machine = _machine(FaultPlan((TransientEIO(path_prefix="ck", count=5),)))
        other = machine.disk.create("log")
        other.append(b"untouched")  # prefix mismatch: no fault
        target = machine.disk.create("ck_0")
        with pytest.raises(TransientIOError):
            target.append(b"data")

    def test_disk_full_window_opens_and_clears(self):
        machine = _machine(
            FaultPlan((DiskFull(at_time=1.0, capacity_bytes=4, duration=2.0),))
        )
        env = machine.env
        assert machine.disk.capacity_bytes is None
        env.run(until=1.5)
        assert machine.disk.capacity_bytes == 4
        env.run(until=3.5)
        assert machine.disk.capacity_bytes is None

    def test_straggler_window_scales_node_load(self):
        machine = _machine(
            FaultPlan((Straggler(node=1, start=1.0, duration=1.0, factor=8.0),))
        )
        env = machine.env
        baseline = machine.nodes[1].external_load
        env.run(until=1.5)
        assert machine.nodes[1].external_load == baseline * 8.0
        env.run(until=2.5)
        assert machine.nodes[1].external_load == baseline

    def test_double_install_rejected(self):
        machine = _machine(FaultPlan((TransientEIO(),)))
        with pytest.raises(RuntimeError):
            machine.install_faults(FaultPlan((TransientEIO(),)))


class TestInjectorCrashes:
    def test_crash_interrupts_victim_only(self):
        machine = _machine(FaultPlan((ServerCrash(rank=1, at_time=0.5),)))

        def main(ctx):
            try:
                yield from ctx.sleep(1.0)
                return "finished"
            except Interrupt:
                return "crashed"

        result = run_spmd(machine, 3, main)
        assert result.returns == ["finished", "crashed", "finished"]
        assert machine.faults.is_dead(1)
        assert machine.faults.dead_ranks() == {1}
        assert not machine.faults.is_dead(0)

    def test_crash_is_recorded_as_fault_counter(self):
        machine = _machine(FaultPlan((ServerCrash(rank=0, at_time=0.5),)))

        def main(ctx):
            try:
                yield from ctx.sleep(1.0)
            except Interrupt:
                pass
            return ctx.rank

        result = run_spmd(machine, 2, main)
        assert result.recorder.counters["faults"]["server_crash"] >= 1

    def test_dead_oracle_set_before_interrupt_delivery(self):
        """The victim itself observes is_dead(me) inside its handler."""
        machine = _machine(FaultPlan((ServerCrash(rank=0, at_time=0.5),)))
        seen = {}

        def main(ctx):
            try:
                yield from ctx.sleep(1.0)
            except Interrupt:
                seen["dead"] = machine.faults.is_dead(ctx.rank)
            return None

        run_spmd(machine, 1, main)
        assert seen == {"dead": True}


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self):
        """Two identical (plan, seed) runs inject byte-identical faults."""

        def one_run():
            machine = _machine(
                FaultPlan(
                    (
                        TransientEIO(count=2),
                        ServerCrash(rank=1, at_time=0.3),
                    )
                ),
                seed=7,
            )
            log = []

            def main(ctx):
                f = ctx.disk.create(f"f{ctx.rank}")
                for i in range(4):
                    try:
                        f.append(b"x" * 8)
                    except TransientIOError:
                        log.append(("eio", ctx.rank, i, ctx.now))
                    try:
                        yield from ctx.sleep(0.2)
                    except Interrupt:
                        log.append(("dead", ctx.rank, i, ctx.now))
                        return "crashed"
                return "ok"

            result = run_spmd(machine, 2, main)
            return log, result.returns

        assert one_run() == one_run()
