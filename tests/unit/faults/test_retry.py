"""Unit tests for the shared retry helper (repro.faults.retry)."""

import pytest

from repro.des import Environment
from repro.faults import RetryPolicy, retrying
from repro.fs import TransientIOError


def _run(env, gen):
    box = {}

    def main():
        box["result"] = yield from gen
    env.process(main(), name="retry-test")
    env.run()
    return box.get("result")


class TestRetryPolicy:
    def test_delay_is_exponential(self):
        p = RetryPolicy(base_delay=0.5, factor=3.0)
        assert p.delay(0) == 0.5
        assert p.delay(1) == 1.5
        assert p.delay(2) == 4.5

    def test_defaults(self):
        p = RetryPolicy()
        assert p.max_attempts == 5
        assert p.op_timeout > 0


class TestRetrying:
    def _flaky(self, env, failures, log):
        """Op factory failing the first ``failures`` attempts."""
        budget = [failures]

        def attempt():
            log.append(env.now)
            if budget[0] > 0:
                budget[0] -= 1
                raise TransientIOError("injected")
            yield env.timeout(0.1)
            return "done"

        return attempt

    def test_succeeds_after_transient_failures(self):
        env = Environment()
        log = []
        policy = RetryPolicy(max_attempts=5, base_delay=1.0, factor=2.0)
        result = _run(
            env, retrying(env, policy, self._flaky(env, 2, log))
        )
        assert result == "done"
        # Attempt starts: t=0, then after 1.0 backoff, then after 2.0.
        assert log == [0.0, 1.0, 3.0]

    def test_exhausted_attempts_reraise_last_fault(self):
        env = Environment()
        policy = RetryPolicy(max_attempts=3, base_delay=1e-3)
        with pytest.raises(TransientIOError):
            _run(env, retrying(env, policy, self._flaky(env, 99, [])))

    def test_on_retry_called_per_backoff_not_per_attempt(self):
        env = Environment()
        calls = []
        policy = RetryPolicy(max_attempts=5, base_delay=1e-3)
        _run(
            env,
            retrying(
                env,
                policy,
                self._flaky(env, 3, []),
                on_retry=lambda attempt, exc: calls.append(attempt),
            ),
        )
        assert calls == [0, 1, 2]  # 3 failures => 3 backoffs, 4th succeeds

    def test_non_retryable_exception_propagates_immediately(self):
        env = Environment()
        attempts = []

        def attempt():
            attempts.append(1)
            raise KeyError("not a write fault")
            yield  # pragma: no cover

        with pytest.raises(KeyError):
            _run(env, retrying(env, RetryPolicy(), attempt))
        assert len(attempts) == 1

    def test_fresh_generator_per_attempt(self):
        """Each attempt calls the factory again (a raised generator is dead)."""
        env = Environment()
        made = []

        def factory():
            made.append(1)
            if len(made) < 3:
                raise TransientIOError("boom")
            return iter(())

        _run(env, retrying(env, RetryPolicy(base_delay=1e-6), factory))
        assert len(made) == 3
