"""Unit tests for the ``python -m repro`` command-line interface."""

import json
import os

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("table1", "fig3a", "fig3b", "ablations", "demo", "trace"):
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_trace_scenario_choices(self):
        parser = build_parser()
        args = parser.parse_args(["trace", "rocpanda"])
        assert args.scenario == "rocpanda"
        assert parser.parse_args(["trace"]).scenario == "all"
        with pytest.raises(SystemExit):
            parser.parse_args(["trace", "nosuch"])

    def test_flags(self):
        args = build_parser().parse_args(
            ["--quick", "--runs", "5", "--seed", "9", "--out", "/tmp/x", "demo"]
        )
        assert args.quick
        assert args.runs == 5
        assert args.seed == 9
        assert args.out == "/tmp/x"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestDemoCommand:
    def test_quick_demo_runs_and_saves(self, tmp_path, capsys):
        rc = main(["--quick", "--out", str(tmp_path), "demo"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rocpanda" in out
        assert "visible I/O" in out
        saved = os.path.join(str(tmp_path), "demo.txt")
        assert os.path.exists(saved)
        assert "rochdf" in open(saved).read()
        payload = json.load(open(os.path.join(str(tmp_path), "BENCH_demo.json")))
        assert set(payload["modes"]) == {"rochdf", "trochdf", "rocpanda"}
        for mode in payload["modes"]:
            assert payload["modes"][mode]["modules"][mode]["nrecords"] > 0


class TestTraceCommand:
    def test_trace_single_scenario(self, tmp_path, capsys):
        rc = main(["--out", str(tmp_path), "trace", "trochdf"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rank 0:" in out
        assert "write_attribute" in out
        assert "Instrumentation summary" in out
        payload = json.load(open(os.path.join(str(tmp_path), "BENCH_trace.json")))
        trochdf = payload["scenarios"]["trochdf"]["modules"]["trochdf"]
        assert trochdf["overlap_ratio"] > 0.5
        assert payload["scenarios"]["trochdf"]["comm"]["messages_sent"] > 0
