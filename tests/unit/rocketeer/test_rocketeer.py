"""Unit tests for the Rocketeer post-processing package."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.genx import GENxConfig, lab_scale_motor, run_genx
from repro.rocketeer import (
    SnapshotSeries,
    discover_snapshots,
    load_snapshot,
    render_profile,
    sparkline,
    summary_report,
)


@pytest.fixture(scope="module")
def run_disks():
    """One Rochdf run and one Rocpanda run over the same workload."""
    wl = lab_scale_motor(
        scale=0.02, nblocks_fluid=12, nblocks_solid=6, steps=10,
        snapshot_interval=5,
    )
    disks = {}
    for mode, nprocs, nservers in (("rochdf", 3, 0), ("rocpanda", 4, 1)):
        result = run_genx(
            Machine(make_testbox(), seed=1),
            nprocs,
            GENxConfig(workload=wl, io_mode=mode, nservers=nservers, prefix="rk"),
        )
        disks[mode] = result.machine.disk
    return disks


class TestDiscovery:
    def test_steps_found(self, run_disks):
        assert discover_snapshots(run_disks["rochdf"], "rk") == [0, 5, 10]
        assert discover_snapshots(run_disks["rocpanda"], "rk") == [0, 5, 10]

    def test_unknown_run_empty(self, run_disks):
        assert discover_snapshots(run_disks["rochdf"], "nope") == []


class TestLoadSnapshot:
    @pytest.mark.parametrize("mode", ["rochdf", "rocpanda"])
    def test_both_layouts_reassemble_identically(self, run_disks, mode):
        snap = load_snapshot(run_disks[mode], "rk", 0)
        assert set(snap.windows) == {"rocflo", "rocfrac", "rocburn"}
        assert len(snap.window("rocflo")) == 12
        assert len(snap.window("rocfrac")) == 6
        assert snap.attrs["time_step"] == 0

    def test_layouts_agree_on_content(self, run_disks):
        a = load_snapshot(run_disks["rochdf"], "rk", 10)
        b = load_snapshot(run_disks["rocpanda"], "rk", 10)
        for bid, block in a.window("rocflo").items():
            other = b.window("rocflo")[bid]
            np.testing.assert_array_equal(
                block.arrays["pressure"], other.arrays["pressure"]
            )

    def test_missing_snapshot_raises(self, run_disks):
        with pytest.raises(FileNotFoundError):
            load_snapshot(run_disks["rochdf"], "rk", 999)

    def test_field_values_and_stats(self, run_disks):
        snap = load_snapshot(run_disks["rochdf"], "rk", 0)
        values = snap.field_values("rocflo", "pressure")
        stats = snap.field_stats("rocflo", "pressure")
        assert values.size == stats["count"]
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_unknown_window_or_field(self, run_disks):
        snap = load_snapshot(run_disks["rochdf"], "rk", 0)
        with pytest.raises(KeyError):
            snap.window("rocwarp")
        with pytest.raises(KeyError):
            snap.field_values("rocflo", "entropy")


class TestSeries:
    def test_series_navigation(self, run_disks):
        series = SnapshotSeries(run_disks["rochdf"], "rk")
        assert len(series) == 3
        assert series.first().step == 0
        assert series.last().step == 10
        with pytest.raises(KeyError):
            series.at(7)

    def test_series_unknown_run(self, run_disks):
        with pytest.raises(FileNotFoundError):
            SnapshotSeries(run_disks["rochdf"], "ghost")

    def test_time_series_monotone_burn(self, run_disks):
        series = SnapshotSeries(run_disks["rochdf"], "rk")
        trend = series.time_series("rocburn", "burn_distance")
        values = [v for _, v in trend]
        assert values == sorted(values)  # burning only accumulates
        assert values[-1] > values[0]

    def test_cache_returns_same_object(self, run_disks):
        series = SnapshotSeries(run_disks["rochdf"], "rk")
        assert series.at(0) is series.at(0)


class TestRendering:
    def test_sparkline_shapes(self):
        assert len(sparkline([1, 2, 3])) == 3
        assert sparkline([5, 5, 5]) == "▄▄▄"
        assert sparkline([float("nan"), 1.0])[0] == " "
        line = sparkline([0, 10])
        assert line[0] < line[1]

    def test_render_profile(self, run_disks):
        snap = load_snapshot(run_disks["rochdf"], "rk", 0)
        line = render_profile(snap, "rocflo", "pressure")
        assert "rocflo.pressure" in line
        assert "|" in line

    def test_summary_report(self, run_disks):
        series = SnapshotSeries(run_disks["rochdf"], "rk")
        report = summary_report(
            series,
            {"rocflo": ["pressure"], "rocburn": ["burn_distance"]},
        )
        assert "rocflo.pressure" in report
        assert "rocburn.burn_distance" in report
        assert "3 snapshots" in report
