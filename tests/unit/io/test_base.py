"""Unit tests for the I/O layer's block/layout machinery."""

import numpy as np
import pytest

from repro.io import (
    DataBlock,
    IOStats,
    apply_block,
    block_to_datasets,
    collect_blocks,
    dataset_name,
    datasets_to_blocks,
    parse_dataset_name,
)
from repro.roccom import AttributeSpec, LOC_ELEMENT, LOC_NODE, LOC_WINDOW, Roccom


def make_com():
    com = Roccom()
    w = com.new_window("Fluid")
    w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
    w.declare_attribute(AttributeSpec("pressure", LOC_ELEMENT, unit="Pa"))
    w.declare_attribute(AttributeSpec("step", LOC_WINDOW))
    w.register_pane(1, nnodes=4, nelems=2)
    w.register_pane(5, nnodes=6, nelems=3)
    rng = np.random.default_rng(0)
    for pid, (nn, ne) in ((1, (4, 2)), (5, (6, 3))):
        w.set_array("coords", pid, rng.random((nn, 3)))
        w.set_array("pressure", pid, rng.random(ne))
    return com


class TestNaming:
    def test_roundtrip(self):
        name = dataset_name("Fluid", 12, "pressure")
        assert name == "Fluid/b12/pressure"
        assert parse_dataset_name(name) == ("Fluid", 12, "pressure")

    def test_parse_rejects_garbage(self):
        for bad in ("nope", "Fluid/12/pressure", "Fluid/bx/p", "a/b1/c/d"):
            with pytest.raises(ValueError):
                parse_dataset_name(bad)


class TestCollect:
    def test_collect_all_attrs(self):
        com = make_com()
        blocks = collect_blocks(com, "Fluid")
        assert [b.block_id for b in blocks] == [1, 5]
        assert set(blocks[0].arrays) == {"coords", "pressure"}
        # Window-located attribute excluded.
        assert "step" not in blocks[0].arrays

    def test_collect_subset(self):
        com = make_com()
        blocks = collect_blocks(com, "Fluid", ["pressure"])
        assert set(blocks[0].arrays) == {"pressure"}

    def test_collect_window_located_explicit_rejected(self):
        com = make_com()
        with pytest.raises(ValueError):
            collect_blocks(com, "Fluid", ["step"])

    def test_collect_skips_missing_arrays(self):
        com = Roccom()
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("x", LOC_NODE))
        w.register_pane(0, 3, 0)  # no array set
        blocks = collect_blocks(com, "W")
        assert blocks[0].arrays == {}

    def test_block_nbytes_includes_overhead(self):
        com = make_com()
        blocks = collect_blocks(com, "Fluid")
        raw = sum(a.nbytes for a in blocks[0].arrays.values())
        assert blocks[0].nbytes > raw


class TestDatasetsRoundtrip:
    def test_block_to_datasets_and_back(self):
        com = make_com()
        blocks = collect_blocks(com, "Fluid")
        datasets = [d for b in blocks for d in block_to_datasets(b)]
        assert len(datasets) == 4
        restored = datasets_to_blocks(datasets)
        assert [b.block_id for b in restored] == [1, 5]
        for orig, back in zip(blocks, restored):
            assert set(orig.arrays) == set(back.arrays)
            for k in orig.arrays:
                np.testing.assert_array_equal(orig.arrays[k], back.arrays[k])
            assert orig.nnodes == back.nnodes
            assert orig.nelems == back.nelems

    def test_dataset_attrs_carry_spec(self):
        com = make_com()
        block = collect_blocks(com, "Fluid")[0]
        ds = {d.name: d for d in block_to_datasets(block)}
        p = ds["Fluid/b1/pressure"]
        assert p.attrs["location"] == LOC_ELEMENT
        assert p.attrs["unit"] == "Pa"
        assert p.attrs["nnodes"] == 4

    def test_specs_reconstructed(self):
        com = make_com()
        block = collect_blocks(com, "Fluid")[0]
        back = datasets_to_blocks(block_to_datasets(block))[0]
        spec = back.specs["coords"]
        assert spec.location == LOC_NODE
        assert spec.ncomp == 3
        assert np.dtype(spec.dtype) == np.float64


class TestApplyBlock:
    def test_apply_into_fresh_window(self):
        com = make_com()
        blocks = collect_blocks(com, "Fluid")

        target = Roccom()
        target.new_window("Fluid")
        for block in blocks:
            apply_block(target, block)
        w = target.window("Fluid")
        assert w.pane_ids() == [1, 5]
        np.testing.assert_array_equal(
            w.get_array("coords", 1), com.get_array("Fluid.coords", 1)
        )

    def test_apply_resizes_existing_pane(self):
        com = make_com()
        block = collect_blocks(com, "Fluid")[0]

        target = Roccom()
        w = target.new_window("Fluid")
        w.register_pane(1, nnodes=99, nelems=99)  # stale sizes
        apply_block(target, block)
        assert w.pane(1).nnodes == 4
        assert w.pane(1).nelems == 2


class TestIOStats:
    def test_merge(self):
        a = IOStats(visible_write_time=1.0, bytes_written=10, files_created=1)
        b = IOStats(visible_write_time=2.0, bytes_written=30, blocks_read=4)
        c = a.merge(b)
        assert c.visible_write_time == 3.0
        assert c.bytes_written == 40
        assert c.files_created == 1
        assert c.blocks_read == 4
