"""Edge-case tests for the Rocpanda server's buffering machinery."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import PandaServer, RocpandaModule, ServerConfig, rocpanda_init
from repro.roccom import AttributeSpec, LOC_ELEMENT, Roccom
from repro.shdf import decode_file
from repro.vmpi import run_spmd


def panda_job(nprocs, nservers, body, config=None, seed=0):
    outcome = {}

    def main(ctx):
        topo = yield from rocpanda_init(ctx, nservers)
        if topo.is_server:
            stats = yield from PandaServer(ctx, topo, config).run()
            outcome["server"] = stats
            return
        com = Roccom(ctx)
        panda = com.load_module(RocpandaModule(ctx, topo))
        w = com.new_window("W")
        w.declare_attribute(AttributeSpec("f", LOC_ELEMENT))
        yield from body(ctx, topo, com, panda, w)
        yield from panda.finalize()

    machine = Machine(make_testbox(), seed=seed)
    run_spmd(machine, nprocs, main)
    return outcome, machine


def add_blocks(w, topo, ctx, nblocks=2, cells=3000):
    rng = np.random.default_rng(topo.comm.rank)
    for i in range(nblocks):
        pid = topo.comm.rank * nblocks + i
        w.register_pane(pid, 0, cells)
        w.set_array("f", pid, rng.random(cells))


class TestServerStats:
    def test_counters_balance(self):
        def body(ctx, topo, com, panda, w):
            add_blocks(w, topo, ctx, nblocks=3)
            yield from com.call_function("OUT.write_attribute", "W", None, "s")
            yield from com.call_function("OUT.sync")

        outcome, _ = panda_job(3, 1, body)
        stats = outcome["server"]
        assert stats.blocks_received == 6  # 2 clients x 3 blocks
        assert stats.blocks_written == stats.blocks_received
        assert stats.bytes_received > 0
        assert stats.files_created == 1
        assert stats.peak_buffered_bytes > 0

    def test_background_write_time_tracked(self):
        def body(ctx, topo, com, panda, w):
            add_blocks(w, topo, ctx)
            yield from com.call_function("OUT.write_attribute", "W", None, "bw")
            yield from ctx.compute(2.0)
            yield from com.call_function("OUT.sync")

        outcome, _ = panda_job(2, 1, body)
        assert outcome["server"].background_write_time > 0

    def test_no_output_means_clean_shutdown(self):
        def body(ctx, topo, com, panda, w):
            yield from ctx.compute(0.5)

        outcome, _ = panda_job(2, 1, body)
        stats = outcome["server"]
        assert stats.blocks_received == 0
        assert stats.files_created == 0


class TestSyncSemantics:
    def test_double_sync(self):
        def body(ctx, topo, com, panda, w):
            add_blocks(w, topo, ctx)
            yield from com.call_function("OUT.write_attribute", "W", None, "d")
            yield from com.call_function("OUT.sync")
            yield from com.call_function("OUT.sync")  # second is a no-op wait
            assert panda.stats.sync_time >= 0

        panda_job(2, 1, body)

    def test_sync_without_prior_write(self):
        def body(ctx, topo, com, panda, w):
            yield from com.call_function("OUT.sync")

        panda_job(2, 1, body)


class TestBufferAccounting:
    def test_peak_bounded_by_config(self):
        """With a small buffer the peak usage stays near the cap (one
        oversized block may exceed it transiently)."""
        cells = 3000
        block_bytes = cells * 8 + 512
        config = ServerConfig(buffer_bytes=2 * block_bytes)

        def body(ctx, topo, com, panda, w):
            add_blocks(w, topo, ctx, nblocks=4, cells=cells)
            yield from com.call_function("OUT.write_attribute", "W", None, "pk")
            yield from com.call_function("OUT.sync")

        outcome, _ = panda_job(2, 1, body, config=config)
        stats = outcome["server"]
        assert stats.overflow_flushes > 0
        assert stats.peak_buffered_bytes <= 3 * block_bytes

    def test_write_through_mode_has_zero_peak(self):
        config = ServerConfig(active_buffering=False)

        def body(ctx, topo, com, panda, w):
            add_blocks(w, topo, ctx)
            yield from com.call_function("OUT.write_attribute", "W", None, "wt")
            yield from com.call_function("OUT.sync")

        outcome, machine = panda_job(2, 1, body, config=config)
        assert outcome["server"].peak_buffered_bytes == 0
        # Data still lands.
        image = decode_file(machine.disk.open("wt_s0000.shdf").read())
        assert len(image) == 2


class TestMultiSnapshotInterleave:
    def test_consecutive_snapshots_one_file_each(self):
        def body(ctx, topo, com, panda, w):
            add_blocks(w, topo, ctx)
            for step in range(3):
                yield from com.call_function(
                    "OUT.write_attribute", "W", None, f"ms{step}"
                )
            yield from com.call_function("OUT.sync")

        _, machine = panda_job(3, 1, body)
        for step in range(3):
            image = decode_file(machine.disk.open(f"ms{step}_s0000.shdf").read())
            assert len(image) == 4  # 2 clients x 2 blocks
