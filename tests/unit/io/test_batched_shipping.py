"""Unit tests for two-phase (batched) block shipping."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import PandaServer, RocpandaModule, rocpanda_init
from repro.io.base import DataBlock, block_to_datasets
from repro.io.rocpanda.protocol import (
    TAG_CTRL,
    BlockBatch,
    EncodedBlock,
    WriteBegin,
    encode_block_batch,
)
from repro.roccom import AttributeSpec, Roccom
from repro.shdf.codec import encode_batch, encode_dataset
from repro.shdf.model import Dataset
from repro.vmpi import run_spmd


def _blocks(n=3, cells=50):
    rng = np.random.default_rng(5)
    out = []
    for i in range(n):
        out.append(
            DataBlock(
                window="W",
                block_id=i,
                nnodes=0,
                nelems=cells,
                arrays={"f": rng.random(cells)},
                specs={"f": AttributeSpec("f", "element")},
            )
        )
    return out


class TestEncodeBatch:
    def test_records_byte_identical_to_single_encodes(self):
        rng = np.random.default_rng(9)
        datasets = [
            Dataset(f"W/b{i}/f", rng.random(20 + i), {"ncomp": 1})
            for i in range(4)
        ]
        buf, entries = encode_batch(datasets)
        assert len(entries) == len(datasets)
        for dataset, (name, offset, length, nbytes) in zip(datasets, entries):
            assert name == dataset.name
            assert nbytes == dataset.nbytes
            assert buf[offset:offset + length] == bytes(
                encode_dataset(dataset)
            )
        # Entries tile the buffer exactly: no gaps, no overlap.
        assert entries[0][1] == 0
        for prev, cur in zip(entries, entries[1:]):
            assert cur[1] == prev[1] + prev[2]
        assert entries[-1][1] + entries[-1][2] == len(buf)

    def test_empty(self):
        buf, entries = encode_batch([])
        assert buf == b"" and entries == []


class TestEncodeBlockBatch:
    def test_pins_wire_sizes_and_payload(self):
        blocks = _blocks()
        batch = encode_block_batch("snap", blocks)
        assert isinstance(batch, BlockBatch)
        assert batch.path == "snap"
        assert [eb.block_id for eb in batch.blocks] == [0, 1, 2]
        for block, eb in zip(blocks, batch.blocks):
            assert isinstance(eb, EncodedBlock)
            # The accounting size is the source block's, so batched
            # envelopes fly with the per-block path's exact byte counts.
            assert eb.nbytes == block.nbytes
            expected = [
                (d.name, bytes(encode_dataset(d)), d.nbytes)
                for d in block_to_datasets(block)
            ]
            assert [(n, bytes(r), nb) for n, r, nb in eb.records] == expected
        assert batch.nbytes == sum(b.nbytes + 64 for b in batch.blocks)

    def test_encoding_is_the_snapshot_copy(self):
        """Mutating source arrays after encoding must not change the
        record bytes (the batch replaces the per-block array copies)."""
        blocks = _blocks(n=1)
        batch = encode_block_batch("snap", blocks)
        before = bytes(batch.blocks[0].records[0][1])
        blocks[0].arrays["f"][:] = -1.0
        assert bytes(batch.blocks[0].records[0][1]) == before


class TestServerBatchPath:
    def _run(self, send):
        def main(ctx):
            topo = yield from rocpanda_init(ctx, 1)
            if topo.is_server:
                stats = yield from PandaServer(ctx, topo).run()
                return ("server", stats)
            com = Roccom(ctx)
            panda = com.load_module(RocpandaModule(ctx, topo))
            yield from send(ctx, topo)
            yield from panda.finalize()
            return ("client", None)

        machine = Machine(make_testbox(), seed=0)
        job = run_spmd(machine, 2, main)
        (stats,) = [v for k, v in job.returns if k == "server"]
        return machine, stats

    def test_duplicate_batch_blocks_dropped(self):
        blocks = _blocks()
        batch = encode_block_batch("dup", blocks)

        def send(ctx, topo):
            yield from topo.world.send(
                WriteBegin(
                    path=batch.path, window="W", nblocks=len(blocks),
                    total_bytes=sum(b.nbytes for b in blocks), file_attrs={},
                ),
                dest=topo.my_server, tag=TAG_CTRL,
            )
            from repro.io.rocpanda.protocol import TAG_BLOCK

            yield from topo.world.send(
                batch, dest=topo.my_server, tag=TAG_BLOCK
            )
            # The identical batch again: every block is a duplicate.
            yield from topo.world.send(
                batch, dest=topo.my_server, tag=TAG_BLOCK
            )

        machine, stats = self._run(send)
        assert stats.duplicate_blocks_dropped == len(blocks)
        assert stats.blocks_written == len(blocks)
        assert machine.disk.exists("dup_s0000.shdf")

    def test_batch_without_write_begin_is_protocol_error(self):
        from repro.io import ProtocolError
        from repro.io.rocpanda.protocol import TAG_BLOCK

        batch = encode_block_batch("never_begun", _blocks(n=1))

        def send(ctx, topo):
            yield from topo.world.send(
                batch, dest=topo.my_server, tag=TAG_BLOCK
            )

        with pytest.raises(ProtocolError, match="WriteBegin"):
            self._run(send)
