"""Regression tests for the Rocpanda orphan-block stash (PR 7).

At 256+ ranks with rendezvous-sized blocks, a client's eager WriteBegin
can queue on the destination NIC while the block's rendezvous
announcement (a control message that skips the NIC) overtakes it, so
the server sees data for a path it has never heard of.  The server must
stash such blocks and replay them when the announcement lands — and
still fail loudly when a WriteBegin genuinely never arrives.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import PandaServer, rocpanda_init
from repro.io.base import DataBlock
from repro.io.rocpanda.protocol import (
    TAG_BLOCK,
    TAG_CTRL,
    BlockEnvelope,
    ProtocolError,
    Shutdown,
    WriteBegin,
)
from repro.roccom import AttributeSpec, LOC_ELEMENT
from repro.shdf import decode_file
from repro.vmpi import run_spmd


def make_block(block_id=0, cells=64):
    data = np.arange(float(cells)) + block_id
    return DataBlock(
        window="W",
        block_id=block_id,
        nnodes=0,
        nelems=cells,
        arrays={"f": data},
        specs={"f": AttributeSpec("f", LOC_ELEMENT)},
    )


def raw_panda_job(client_body, seed=0):
    """One server, one raw client that speaks the wire protocol itself."""
    outcome = {}

    def main(ctx):
        topo = yield from rocpanda_init(ctx, 1)
        if topo.is_server:
            outcome["stats"] = yield from PandaServer(ctx, topo).run()
            return
        yield from client_body(ctx, topo)

    machine = Machine(make_testbox(), seed=seed)
    run_spmd(machine, 2, main)
    return outcome, machine


class TestOrphanReplay:
    def test_block_before_write_begin_is_stashed_and_written(self):
        block = make_block()

        def client(ctx, topo):
            world = topo.world
            server = topo.my_server
            # Data first: the reordering the NIC race produces.
            yield from world.send(
                BlockEnvelope(path="oo", block=block), dest=server, tag=TAG_BLOCK
            )
            yield from world.send(
                WriteBegin(path="oo", window="W", nblocks=1,
                           total_bytes=block.nbytes),
                dest=server, tag=TAG_CTRL,
            )
            yield from world.send(Shutdown(), dest=server, tag=TAG_CTRL)

        outcome, machine = raw_panda_job(client)
        stats = outcome["stats"]
        assert stats.orphan_blocks_stashed == 1
        assert stats.blocks_received == 1
        assert stats.blocks_written == 1
        image = decode_file(machine.disk.open("oo_s0000.shdf").read())
        assert len(image) == 1

    def test_multiple_orphans_replay_in_arrival_order(self):
        blocks = [make_block(i) for i in range(3)]

        def client(ctx, topo):
            world = topo.world
            server = topo.my_server
            for b in blocks:
                yield from world.send(
                    BlockEnvelope(path="mo", block=b), dest=server, tag=TAG_BLOCK
                )
            yield from world.send(
                WriteBegin(path="mo", window="W", nblocks=3,
                           total_bytes=sum(b.nbytes for b in blocks)),
                dest=server, tag=TAG_CTRL,
            )
            yield from world.send(Shutdown(), dest=server, tag=TAG_CTRL)

        outcome, machine = raw_panda_job(client)
        stats = outcome["stats"]
        assert stats.orphan_blocks_stashed == 3
        assert stats.blocks_written == 3
        image = decode_file(machine.disk.open("mo_s0000.shdf").read())
        assert len(image) == 3

    def test_in_order_traffic_never_stashes(self):
        block = make_block()

        def client(ctx, topo):
            world = topo.world
            server = topo.my_server
            yield from world.send(
                WriteBegin(path="io", window="W", nblocks=1,
                           total_bytes=block.nbytes),
                dest=server, tag=TAG_CTRL,
            )
            yield from world.send(
                BlockEnvelope(path="io", block=block), dest=server, tag=TAG_BLOCK
            )
            yield from world.send(Shutdown(), dest=server, tag=TAG_CTRL)

        outcome, _ = raw_panda_job(client)
        assert outcome["stats"].orphan_blocks_stashed == 0
        assert outcome["stats"].blocks_written == 1


class TestOrphanWithoutAnnouncement:
    def test_shutdown_with_unclaimed_orphan_raises(self):
        """A stashed block whose WriteBegin never arrives is a protocol
        violation, not reordering — the server must not eat the data."""
        block = make_block()

        def client(ctx, topo):
            world = topo.world
            server = topo.my_server
            yield from world.send(
                BlockEnvelope(path="never", block=block),
                dest=server, tag=TAG_BLOCK,
            )
            yield from world.send(Shutdown(), dest=server, tag=TAG_CTRL)

        with pytest.raises(ProtocolError, match="never saw a WriteBegin"):
            raw_panda_job(client)
