"""Unit tests for Rochdf and T-Rochdf (individual I/O)."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import RochdfModule, TRochdfModule, list_snapshot_files, snapshot_file_path
from repro.roccom import AttributeSpec, LOC_ELEMENT, LOC_NODE, Roccom
from repro.vmpi import run_spmd


def setup_window(com, ctx, nblocks=2, seed_base=100):
    w = com.new_window("Fluid")
    w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
    w.declare_attribute(AttributeSpec("pressure", LOC_ELEMENT))
    rng = np.random.default_rng(seed_base + ctx.rank)
    for i in range(nblocks):
        pane_id = ctx.rank * nblocks + i
        nn, ne = 8 + i, 4 + i
        w.register_pane(pane_id, nn, ne)
        w.set_array("coords", pane_id, rng.random((nn, 3)))
        w.set_array("pressure", pane_id, rng.random(ne))
    return w


def launch(nprocs, main, disk=None, seed=0):
    machine = Machine(make_testbox(nnodes=4, cpus_per_node=4), seed=seed, disk=disk)
    return run_spmd(machine, nprocs, main), machine


class TestRochdf:
    def test_write_creates_one_file_per_rank(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(RochdfModule(ctx))
            setup_window(com, ctx)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "snap0")
            return mod.stats

        result, machine = launch(4, main)
        files = list_snapshot_files(machine.disk, "snap0")
        assert len(files) == 4
        assert files[0] == snapshot_file_path("snap0", 0)
        assert all(s.files_created == 1 for s in result.returns)

    def test_write_restart_roundtrip_preserves_data(self):
        written = {}

        def writer_main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            w = setup_window(com, ctx)
            for pid in w.pane_ids():
                written[pid] = w.get_array("coords", pid).copy()
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "ckpt")

        _, machine = launch(2, writer_main)

        restored = {}

        def reader_main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            w = com.new_window("Fluid")
            # Re-register the panes we want (ids only; sizes come back
            # from the files).
            for i in range(2):
                w.register_pane(ctx.rank * 2 + i, 0, 0)
            ids = yield from com.call_function("OUT.read_attribute", "Fluid", None, "ckpt")
            for pid in ids:
                restored[pid] = w.get_array("coords", pid)
            return ids

        result, _ = launch(2, reader_main, disk=machine.disk)
        assert result.returns == [[0, 1], [2, 3]]
        for pid, arr in written.items():
            np.testing.assert_array_equal(restored[pid], arr)

    def test_restart_with_different_proc_count(self):
        def writer_main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            setup_window(com, ctx, nblocks=2)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "ck")

        _, machine = launch(4, writer_main)  # blocks 0..7 over 4 files

        def reader_main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            w = com.new_window("Fluid")
            for pid in range(ctx.rank * 4, ctx.rank * 4 + 4):
                w.register_pane(pid, 0, 0)
            ids = yield from com.call_function("OUT.read_attribute", "Fluid", None, "ck")
            return ids

        result, _ = launch(2, reader_main, disk=machine.disk)
        assert result.returns == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_missing_blocks_raise(self):
        def writer_main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            setup_window(com, ctx)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "s")

        _, machine = launch(1, writer_main)

        def reader_main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            w = com.new_window("Fluid")
            w.register_pane(999, 0, 0)
            with pytest.raises(KeyError):
                yield from com.call_function("OUT.read_attribute", "Fluid", None, "s")

        launch(1, reader_main, disk=machine.disk)

    def test_missing_snapshot_raises(self):
        def main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            w = com.new_window("Fluid")
            w.register_pane(0, 0, 0)
            with pytest.raises(FileNotFoundError):
                yield from com.call_function("OUT.read_attribute", "Fluid", None, "no")

        launch(1, main)

    def test_visible_write_time_is_positive_and_blocking(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(RochdfModule(ctx))
            setup_window(com, ctx)
            t0 = ctx.now
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "s")
            return (ctx.now - t0, mod.stats.visible_write_time)

        result, _ = launch(2, main)
        for elapsed, visible in result.returns:
            assert elapsed > 0
            assert visible == pytest.approx(elapsed)

    def test_sync_is_noop(self):
        def main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            t0 = ctx.now
            yield from com.call_function("OUT.sync")
            return ctx.now - t0

        result, _ = launch(1, main)
        assert result.returns == [0.0]


class TestTRochdf:
    def test_visible_time_much_smaller_than_rochdf(self):
        def run_with(module_cls):
            def main(ctx):
                com = Roccom(ctx)
                mod = com.load_module(module_cls(ctx))
                setup_window(com, ctx, nblocks=4)
                yield from com.call_function("OUT.write_attribute", "Fluid", None, "s")
                visible = mod.stats.visible_write_time
                yield from com.call_function("OUT.sync")
                return visible

            result, _ = launch(2, main)
            return max(result.returns)

        t_plain = run_with(RochdfModule)
        t_threaded = run_with(TRochdfModule)
        assert t_threaded < t_plain / 3

    def test_data_still_reaches_disk(self):
        def main(ctx):
            com = Roccom(ctx)
            com.load_module(TRochdfModule(ctx))
            setup_window(com, ctx)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "ts")
            yield from com.call_function("OUT.sync")

        _, machine = launch(2, main)
        assert len(list_snapshot_files(machine.disk, "ts")) == 2

    def test_caller_can_reuse_buffers_immediately(self):
        """Blocking-I/O semantics: mutating arrays after return must not
        corrupt what lands on disk (§6: users can reuse their output
        buffers immediately)."""

        def main(ctx):
            com = Roccom(ctx)
            com.load_module(TRochdfModule(ctx))
            w = setup_window(com, ctx, nblocks=1)
            original = w.get_array("coords", 0).copy()
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "reuse")
            # Clobber the registered array immediately after return.
            w.get_array("coords", 0)[:] = -1.0
            yield from com.call_function("OUT.sync")
            return original

        result, machine = launch(1, main)
        original = result.returns[0]

        from repro.shdf import decode_file

        buf = machine.disk.open(snapshot_file_path("reuse", 0)).read()
        image = decode_file(buf)
        np.testing.assert_array_equal(image.get("Fluid/b0/coords").data, original)

    def test_next_snapshot_waits_for_previous(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            setup_window(com, ctx, nblocks=4)
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "s1")
            t_first = mod.stats.visible_write_time
            # Immediately request the next snapshot: must wait for the
            # background write of s1 to finish first.
            yield from com.call_function("OUT.write_attribute", "Fluid", None, "s2")
            t_second = mod.stats.visible_write_time - t_first
            yield from com.call_function("OUT.sync")
            return (t_first, t_second)

        result, _ = launch(1, main)
        t_first, t_second = result.returns[0]
        assert t_second > t_first * 2

    def test_same_snapshot_calls_do_not_block(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            setup_window(com, ctx, nblocks=2)
            w2 = com.new_window("Solid")
            w2.declare_attribute(AttributeSpec("disp", LOC_NODE, ncomp=3))
            w2.register_pane(100, 8, 0)
            w2.set_array("disp", 100, np.zeros((8, 3)))
            yield from com.call_function(
                "OUT.write_attribute", "Fluid", None, "snapA_fluid",
                snapshot_id="snapA",
            )
            yield from com.call_function(
                "OUT.write_attribute", "Solid", None, "snapA_solid",
                snapshot_id="snapA",
            )
            visible = mod.stats.visible_write_time
            yield from com.call_function("OUT.sync")
            return visible

        # Both calls buffer back-to-back; visible time stays tiny.
        result, _ = launch(1, main)
        assert result.returns[0] < 0.1

    def test_overlap_reduces_total_time(self):
        """With compute between snapshots, T-Rochdf hides the I/O."""

        def run_with(module_cls):
            def main(ctx):
                com = Roccom(ctx)
                com.load_module(module_cls(ctx))
                setup_window(com, ctx, nblocks=4)
                for step in range(3):
                    yield from com.call_function(
                        "OUT.write_attribute", "Fluid", None, f"o{step}"
                    )
                    yield from ctx.compute(2.0)
                yield from com.call_function("OUT.sync")
                return ctx.now

            result, _ = launch(2, main)
            return result.wall_time

        assert run_with(TRochdfModule) < run_with(RochdfModule)
