"""Protocol hygiene of the restart reply paths.

A malformed or unexpected reply must surface as a typed
:class:`ProtocolError` naming the offending message and peer — not a
bare ``TypeError`` — and scatter batches must be internally consistent
before any block is applied.
"""

from types import SimpleNamespace

import pytest

from repro.io.rocpanda.client import RocpandaModule
from repro.io.rocpanda.protocol import (
    ProtocolError,
    RestartBatch,
    RestartDone,
    RestartRequest,
)


def _gen(value=None):
    """A finished generator returning ``value`` (no events yielded)."""
    return value
    yield  # pragma: no cover


class _FakeWorld:
    """Scripted comm: sends are no-ops, recvs pop canned replies."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.sent = []

    def send(self, msg, dest, tag):
        self.sent.append((msg, dest, tag))
        return _gen()

    def recv(self, source, tag):
        return _gen(self.replies.pop(0))

    def recv_with_timeout(self, source, tag, timeout):
        return _gen(self.replies.pop(0) if self.replies else None)


def _fake_client(replies):
    return SimpleNamespace(
        topo=SimpleNamespace(world=_FakeWorld(replies)),
        ctx=SimpleNamespace(rank=3),
        stats=SimpleNamespace(blocks_read=0, bytes_read=0),
        com=None,
        _server=0,
        retry=SimpleNamespace(op_timeout=0.25),
    )


def _drain(gen):
    """Drive a generator that never yields events to its return value."""
    try:
        next(gen)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator unexpectedly yielded")


class TestPerBlockReplies:
    def test_unexpected_reply_raises_protocol_error(self):
        bogus = RestartRequest(prefix="ck", window="W", block_ids=())
        fake = _fake_client([(bogus, SimpleNamespace(source=1))])
        with pytest.raises(ProtocolError, match="RestartRequest from rank 1"):
            _drain(RocpandaModule._read_perblock(fake, "W", set(), None, "ck"))
        assert isinstance(ProtocolError("x"), RuntimeError)

    def test_done_with_missing_blocks_raises_keyerror(self):
        fake = _fake_client(
            [(RestartDone(prefix="ck", blocks_sent=0), SimpleNamespace(source=1))]
        )
        with pytest.raises(KeyError, match="missing blocks"):
            _drain(RocpandaModule._read_perblock(fake, "W", {5}, None, "ck"))


class TestBatchConsistency:
    def test_nblocks_mismatch_raises_before_applying(self):
        fake = _fake_client([])
        msg = RestartBatch(prefix="ck", blocks=[], nblocks=2)
        with pytest.raises(ProtocolError, match="declares 2 blocks"):
            RocpandaModule._apply_batch(fake, msg, 1, {5}, [])
        # Nothing was applied before the raise.
        assert fake.stats.blocks_read == 0

    def test_batch_nbytes_counts_framing(self):
        block = SimpleNamespace(nbytes=100)
        msg = RestartBatch(prefix="ck", blocks=[block, block], nblocks=2)
        assert msg.nbytes == 2 * (100 + 64)
