"""Edge-case tests for T-Rochdf's threading and buffering behaviour."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import TRochdfModule, list_snapshot_files
from repro.roccom import AttributeSpec, LOC_ELEMENT, Roccom
from repro.vmpi import run_spmd


def setup_window(com, ctx, nblocks=2, cells=2000):
    w = com.new_window("W")
    w.declare_attribute(AttributeSpec("f", LOC_ELEMENT))
    rng = np.random.default_rng(ctx.rank)
    for i in range(nblocks):
        pid = ctx.rank * nblocks + i
        w.register_pane(pid, 0, cells)
        w.set_array("f", pid, rng.random(cells))
    return w


def launch(nprocs, main, seed=0):
    machine = Machine(make_testbox(), seed=seed)
    return run_spmd(machine, nprocs, main), machine


class TestTRochdfThreadLifecycle:
    def test_io_thread_started_on_load(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            assert mod._thread is not None and mod._thread.alive
            yield from com.call_function("OUT.sync")

        launch(1, main)

    def test_unload_shuts_thread_down(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            thread = mod._thread
            yield from com.call_function("OUT.sync")
            yield from com.unload_module("trochdf")
            return thread.alive

        result, _ = launch(1, main)
        assert result.returns == [False]

    def test_sync_time_accounted_separately(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            setup_window(com, ctx, nblocks=4)
            yield from com.call_function("OUT.write_attribute", "W", None, "st")
            yield from com.call_function("OUT.sync")
            return (mod.stats.visible_write_time, mod.stats.sync_time)

        result, _ = launch(1, main)
        visible, sync = result.returns[0]
        # Without intervening compute the sync bears the write cost.
        assert sync > visible

    def test_sync_with_nothing_pending_is_fast(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            yield from com.call_function("OUT.sync")
            yield from com.call_function("OUT.sync")
            return mod.stats.sync_time

        result, _ = launch(1, main)
        assert result.returns[0] == pytest.approx(0.0, abs=1e-9)

    def test_many_snapshots_in_sequence(self):
        def main(ctx):
            com = Roccom(ctx)
            com.load_module(TRochdfModule(ctx))
            setup_window(com, ctx)
            for step in range(6):
                yield from com.call_function(
                    "OUT.write_attribute", "W", None, f"seq{step}"
                )
                yield from ctx.compute(0.5)
            yield from com.call_function("OUT.sync")

        _, machine = launch(2, main)
        for step in range(6):
            assert len(list_snapshot_files(machine.disk, f"seq{step}")) == 2

    def test_stats_blocks_counted_once_per_block(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            setup_window(com, ctx, nblocks=3)
            yield from com.call_function("OUT.write_attribute", "W", None, "bc")
            yield from com.call_function("OUT.sync")
            return mod.stats.blocks_written

        result, _ = launch(1, main)
        assert result.returns == [3]
