"""Unit tests for Rocpanda topology planning (no simulation needed)."""

import pytest

from repro.io.rocpanda.topology import _plan, server_ranks


class TestServerRanks:
    def test_frost_style_one_per_sixteen(self):
        # 480 clients + 32 servers: server on every 16th rank.
        ranks = server_ranks(512, 32)
        assert ranks == list(range(0, 512, 16))

    def test_turing_table1_configs(self):
        assert server_ranks(18, 2) == [0, 9]
        assert server_ranks(36, 4) == [0, 9, 18, 27]
        assert server_ranks(72, 8) == [0, 9, 18, 27, 36, 45, 54, 63]

    def test_single_server(self):
        assert server_ranks(5, 1) == [0]

    def test_balanced_edge(self):
        assert server_ranks(4, 2) == [0, 2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            server_ranks(4, 0)
        with pytest.raises(ValueError):
            server_ranks(4, 5)

    def test_more_servers_than_clients_rejected(self):
        # The topology contract requires nclients >= nservers; an
        # all-server job would hang waiting for client Shutdowns.
        with pytest.raises(ValueError, match="nclients >= nservers"):
            server_ranks(3, 3)
        with pytest.raises(ValueError, match="nclients >= nservers"):
            server_ranks(5, 3)


class TestAssignmentPlan:
    def test_every_client_has_exactly_one_server(self):
        servers, assignment = _plan(18, 2)
        all_clients = [c for group in assignment.values() for c in group]
        assert sorted(all_clients) == [r for r in range(18) if r not in servers]

    def test_groups_are_contiguous_following_ranks(self):
        servers, assignment = _plan(18, 2)
        assert assignment[0] == list(range(1, 9))
        assert assignment[9] == list(range(10, 18))

    def test_trailing_ranks_fall_to_last_server(self):
        servers, assignment = _plan(10, 3)
        # stride = 3: servers 0, 3, 6; ranks 7, 8, 9 follow server 6.
        assert servers == [0, 3, 6]
        assert assignment[6] == [7, 8, 9]

    def test_groups_balanced_for_even_split(self):
        servers, assignment = _plan(64, 8)
        sizes = [len(v) for v in assignment.values()]
        assert max(sizes) - min(sizes) <= 1
