"""Unload/reload lifecycle tests for the threaded I/O services.

Unload must never lose buffered data: T-Rochdf drains its pending
snapshots and joins the I/O thread, and the Rocpanda client (in
client-buffering mode) flushes its background sender — all before the
module's window is torn down.  A reload after unload must not leave a
second I/O thread running.
"""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.io import (
    PandaServer,
    RocpandaModule,
    TRochdfModule,
    list_snapshot_files,
    rocpanda_init,
)
from repro.roccom import AttributeSpec, LOC_ELEMENT, Roccom
from repro.shdf import decode_file
from repro.vmpi import run_spmd


def setup_window(com, rank, nblocks=2, cells=2000, name="W"):
    w = com.new_window(name)
    w.declare_attribute(AttributeSpec("f", LOC_ELEMENT))
    rng = np.random.default_rng(rank)
    for i in range(nblocks):
        pid = rank * nblocks + i
        w.register_pane(pid, 0, cells)
        w.set_array("f", pid, rng.random(cells))
    return w


def launch(nprocs, main, seed=0):
    machine = Machine(make_testbox(), seed=seed)
    return run_spmd(machine, nprocs, main), machine


class TestTRochdfUnload:
    def test_unload_without_sync_flushes_buffered_snapshot(self):
        """A buffered-but-unsynced snapshot must survive unload."""

        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            setup_window(com, ctx.rank, nblocks=3)
            yield from com.call_function("OUT.write_attribute", "W", None, "ul")
            # No sync: the snapshot is still queued for the I/O thread.
            assert mod._pending
            yield from com.unload_module("trochdf")
            assert mod._thread is None
            assert not mod._pending

        _, machine = launch(1, main)
        files = list_snapshot_files(machine.disk, "ul")
        assert len(files) == 1
        image = decode_file(machine.disk.open(files[0]).read())
        assert len(image) > 0  # the data actually reached the disk

    def test_unload_joins_thread(self):
        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            thread = mod._thread
            setup_window(com, ctx.rank)
            yield from com.call_function("OUT.write_attribute", "W", None, "j")
            yield from com.unload_module("trochdf")
            return thread.alive

        result, _ = launch(1, main)
        assert result.returns == [False]

    def test_unload_reload_cycle_no_duplicate_threads(self):
        """After unload + reload exactly one I/O thread is alive."""

        def main(ctx):
            com = Roccom(ctx)
            mod1 = com.load_module(TRochdfModule(ctx))
            first_thread = mod1._thread
            setup_window(com, ctx.rank)
            yield from com.call_function("OUT.write_attribute", "W", None, "c0")
            yield from com.unload_module("trochdf")

            mod2 = com.load_module(TRochdfModule(ctx))
            yield from com.call_function("OUT.write_attribute", "W", None, "c1")
            yield from com.call_function("OUT.sync")
            alive = (first_thread.alive, mod2._thread.alive)
            yield from com.unload_module("trochdf")
            return alive

        result, machine = launch(1, main)
        assert result.returns == [(False, True)]
        # Both rounds' data landed.
        assert len(list_snapshot_files(machine.disk, "c0")) == 1
        assert len(list_snapshot_files(machine.disk, "c1")) == 1

    def test_reload_guard_while_thread_alive(self):
        """Popping the module without driving its unload leaves the old
        thread running; a reload must refuse rather than fork a twin."""

        def main(ctx):
            com = Roccom(ctx)
            mod = com.load_module(TRochdfModule(ctx))
            com.unload_module("trochdf")  # generator never driven
            with pytest.raises(RuntimeError, match="still"):
                mod.load(com)
            # Clean up: drive the real teardown path.
            yield from mod.unload(com)

        launch(1, main)


class TestRocpandaClientUnload:
    def _run(self, body, nprocs=3, nservers=1, client_buffering=True):
        outcome = {}

        def main(ctx):
            topo = yield from rocpanda_init(ctx, nservers)
            if topo.is_server:
                stats = yield from PandaServer(ctx, topo).run()
                outcome["server"] = stats
                return
            com = Roccom(ctx)
            panda = com.load_module(
                RocpandaModule(ctx, topo, client_buffering=client_buffering)
            )
            setup_window(com, topo.comm.rank)
            yield from body(ctx, topo, com, panda)
            yield from panda.finalize()

        machine = Machine(make_testbox(), seed=0)
        run_spmd(machine, nprocs, main)
        return outcome

    def test_unload_drains_buffered_sends(self):
        """Blocks queued on the background sender reach the server even
        when the module is unloaded right after write_attribute."""

        def body(ctx, topo, com, panda):
            yield from com.call_function("OUT.write_attribute", "W", None, "pul")
            assert panda._pending_sends  # still queued client-side
            yield from com.unload_module("rocpanda")
            assert panda._sender is None
            assert not panda._pending_sends

        outcome = self._run(body)
        # 2 clients x 2 blocks, none lost.
        assert outcome["server"].blocks_received == 4
        assert outcome["server"].blocks_written == 4

    def test_unload_reload_cycle(self):
        def body(ctx, topo, com, panda):
            yield from com.call_function("OUT.write_attribute", "W", None, "r0")
            yield from com.unload_module("rocpanda")
            first_sender = panda._sender
            assert first_sender is None

            panda2 = com.load_module(
                RocpandaModule(ctx, topo, client_buffering=True)
            )
            yield from com.call_function("OUT.write_attribute", "W", None, "r1")
            yield from com.call_function("OUT.sync")
            assert panda2._sender is not None and panda2._sender.alive
            yield from com.unload_module("rocpanda")
            assert not panda2._sender  # joined and cleared

        outcome = self._run(body)
        # Two snapshots of 2 blocks from each of the 2 clients.
        assert outcome["server"].blocks_received == 8

    def test_unbuffered_unload_is_eager_friendly(self):
        """Without client buffering unload has nothing to drain but the
        generator contract still holds."""

        def body(ctx, topo, com, panda):
            yield from com.call_function("OUT.write_attribute", "W", None, "nb")
            yield from com.call_function("OUT.sync")
            yield from com.unload_module("rocpanda")

        outcome = self._run(body, client_buffering=False)
        assert outcome["server"].blocks_received == 4
