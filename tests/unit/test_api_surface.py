"""Public-API surface checks: imports, __all__ integrity, docstrings."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.des",
    "repro.cluster",
    "repro.fs",
    "repro.vmpi",
    "repro.vthread",
    "repro.shdf",
    "repro.roccom",
    "repro.io",
    "repro.io.rocpanda",
    "repro.genx",
    "repro.genx.physics",
    "repro.rocketeer",
    "repro.bench",
    "repro.util",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings_present(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__ and obj.__doc__.strip(), (
                f"{name}.{symbol} lacks a docstring"
            )


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
