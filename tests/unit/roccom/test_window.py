"""Unit tests for Roccom windows, panes, and attributes."""

import numpy as np
import pytest

from repro.roccom import (
    LOC_ELEMENT,
    LOC_NODE,
    LOC_PANE,
    LOC_WINDOW,
    AttributeSpec,
    Window,
)


class TestAttributeSpec:
    def test_basic(self):
        spec = AttributeSpec("pressure", LOC_ELEMENT, ncomp=1, dtype="f8", unit="Pa")
        assert spec.expected_shape(10) == (10,)

    def test_multicomponent_shape(self):
        spec = AttributeSpec("coords", LOC_NODE, ncomp=3)
        assert spec.expected_shape(7) == (7, 3)

    def test_bad_names(self):
        for bad in ("", "a/b", "a.b"):
            with pytest.raises(ValueError):
                AttributeSpec(bad, LOC_NODE)

    def test_bad_location(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", "corner")

    def test_bad_ncomp(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", LOC_NODE, ncomp=0)

    def test_bad_dtype(self):
        with pytest.raises(TypeError):
            AttributeSpec("x", LOC_NODE, dtype="not-a-dtype")

    def test_validate_shape_mismatch(self):
        spec = AttributeSpec("coords", LOC_NODE, ncomp=3)
        with pytest.raises(ValueError, match="shape"):
            spec.validate(np.zeros((5, 2)), 5)

    def test_validate_dtype_mismatch(self):
        spec = AttributeSpec("p", LOC_NODE, dtype="f8")
        with pytest.raises(ValueError, match="dtype"):
            spec.validate(np.zeros(5, dtype=np.float32), 5)

    def test_validate_accepts_column_for_scalar(self):
        spec = AttributeSpec("p", LOC_NODE, ncomp=1)
        spec.validate(np.zeros((5, 1)), 5)  # squeezed column OK

    def test_window_location_has_no_shape(self):
        spec = AttributeSpec("step", LOC_WINDOW)
        with pytest.raises(ValueError):
            spec.expected_shape(3)


class TestWindow:
    def make_window(self):
        w = Window("Fluid")
        w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
        w.declare_attribute(AttributeSpec("conn", LOC_ELEMENT, ncomp=8, dtype="i8"))
        w.declare_attribute(AttributeSpec("pressure", LOC_ELEMENT))
        w.declare_attribute(AttributeSpec("scratch", LOC_PANE, dtype="f4"))
        w.declare_attribute(AttributeSpec("time", LOC_WINDOW))
        return w

    def test_bad_window_name(self):
        with pytest.raises(ValueError):
            Window("bad.name")

    def test_duplicate_attribute_rejected(self):
        w = self.make_window()
        with pytest.raises(ValueError):
            w.declare_attribute(AttributeSpec("coords", LOC_NODE))

    def test_missing_attribute_raises(self):
        with pytest.raises(KeyError):
            self.make_window().attribute("nope")

    def test_register_pane_and_arrays(self):
        w = self.make_window()
        w.register_pane(3, nnodes=10, nelems=4)
        w.set_array("coords", 3, np.zeros((10, 3)))
        w.set_array("pressure", 3, np.ones(4))
        np.testing.assert_array_equal(w.get_array("pressure", 3), np.ones(4))

    def test_duplicate_pane_rejected(self):
        w = self.make_window()
        w.register_pane(1, 5, 2)
        with pytest.raises(ValueError):
            w.register_pane(1, 5, 2)

    def test_unknown_pane_raises(self):
        w = self.make_window()
        with pytest.raises(KeyError):
            w.pane(99)

    def test_deregister_pane(self):
        w = self.make_window()
        w.register_pane(1, 5, 2)
        w.deregister_pane(1)
        assert w.npanes == 0
        with pytest.raises(KeyError):
            w.deregister_pane(1)

    def test_set_array_validates_shape(self):
        w = self.make_window()
        w.register_pane(0, nnodes=10, nelems=4)
        with pytest.raises(ValueError):
            w.set_array("coords", 0, np.zeros((9, 3)))

    def test_pane_located_array_any_size(self):
        w = self.make_window()
        w.register_pane(0, nnodes=10, nelems=4)
        w.set_array("scratch", 0, np.zeros(123, dtype=np.float32))
        assert w.get_array("scratch", 0).shape == (123,)

    def test_pane_located_dtype_checked(self):
        w = self.make_window()
        w.register_pane(0, 10, 4)
        with pytest.raises(ValueError):
            w.set_array("scratch", 0, np.zeros(5, dtype=np.float64))

    def test_window_value_roundtrip(self):
        w = self.make_window()
        w.set_window_value("time", 0.83)
        assert w.get_window_value("time") == 0.83

    def test_window_value_wrong_location(self):
        w = self.make_window()
        w.register_pane(0, 10, 4)
        with pytest.raises(ValueError):
            w.set_window_value("pressure", 1.0)
        with pytest.raises(ValueError):
            w.get_array("time", 0)

    def test_missing_array_raises(self):
        w = self.make_window()
        w.register_pane(0, 10, 4)
        with pytest.raises(KeyError):
            w.get_array("pressure", 0)
        assert not w.has_array("pressure", 0)

    def test_pane_iteration_sorted_by_id(self):
        w = self.make_window()
        for pane_id in (5, 1, 3):
            w.register_pane(pane_id, 2, 1)
        assert [p.id for p in w.panes()] == [1, 3, 5]
        assert w.pane_ids() == [1, 3, 5]

    def test_functions(self):
        w = self.make_window()
        w.register_function("hello", lambda: "hi")
        assert w.function("hello")() == "hi"
        assert w.function_names() == ["hello"]
        with pytest.raises(ValueError):
            w.register_function("hello", lambda: None)
        with pytest.raises(KeyError):
            w.function("nope")

    def test_nbytes_accounting(self):
        w = self.make_window()
        w.register_pane(0, nnodes=10, nelems=4)
        w.set_array("coords", 0, np.zeros((10, 3)))
        assert w.local_nbytes == 240
        assert w.pane(0).nbytes == 240

    def test_resize_drops_stale_arrays(self):
        w = self.make_window()
        pane = w.register_pane(0, nnodes=10, nelems=4)
        w.set_array("coords", 0, np.zeros((10, 3)))
        pane.resize(nnodes=12)
        assert not w.has_array("coords", 0)
        w.set_array("coords", 0, np.zeros((12, 3)))  # new size accepted

    def test_pane_invalid_sizes(self):
        with pytest.raises(ValueError):
            Window("W").register_pane(-1, 1, 1)
        with pytest.raises(ValueError):
            Window("W").register_pane(0, -1, 1)
