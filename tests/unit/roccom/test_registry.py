"""Unit tests for the Roccom registry, dispatch, and module lifecycle."""

import numpy as np
import pytest

from repro.des import Environment
from repro.roccom import (
    IO_WINDOW,
    AttributeSpec,
    LOC_NODE,
    Roccom,
    ServiceModule,
)
from repro.roccom.bindings import (
    COM_call_function,
    COM_finalize,
    COM_get_array,
    COM_get_com,
    COM_init,
    COM_new_attribute,
    COM_new_window,
    COM_register_function,
    COM_register_pane,
    COM_set_array,
    f90_string,
)


@pytest.fixture(autouse=True)
def clean_bindings():
    COM_finalize()
    yield
    COM_finalize()


class TestRegistry:
    def test_window_lifecycle(self):
        com = Roccom()
        com.new_window("A")
        assert com.has_window("A")
        assert com.window_names() == ["A"]
        com.delete_window("A")
        assert not com.has_window("A")

    def test_duplicate_window_rejected(self):
        com = Roccom()
        com.new_window("A")
        with pytest.raises(ValueError):
            com.new_window("A")

    def test_missing_window_raises(self):
        com = Roccom()
        with pytest.raises(KeyError):
            com.window("X")
        with pytest.raises(KeyError):
            com.delete_window("X")

    def test_qualified_array_access(self):
        com = Roccom()
        w = com.new_window("Fluid")
        w.declare_attribute(AttributeSpec("coords", LOC_NODE, ncomp=3))
        w.register_pane(7, nnodes=4, nelems=0)
        com.set_array("Fluid.coords", 7, np.ones((4, 3)))
        np.testing.assert_array_equal(
            com.get_array("Fluid.coords", 7), np.ones((4, 3))
        )

    def test_unqualified_name_rejected(self):
        com = Roccom()
        with pytest.raises(ValueError):
            com.get_array("no_dot", 0)

    def test_call_sync_plain_function(self):
        com = Roccom()
        w = com.new_window("Svc")
        w.register_function("double", lambda x: 2 * x)
        assert com.call_sync("Svc.double", 21) == 42

    def test_call_sync_rejects_generators(self):
        com = Roccom()
        w = com.new_window("Svc")

        def gen_fn():
            yield

        w.register_function("blocking", gen_fn)
        with pytest.raises(TypeError):
            com.call_sync("Svc.blocking")

    def test_call_function_drives_generators(self):
        env = Environment()
        com = Roccom()
        w = com.new_window("Svc")

        def blocking_op(duration):
            yield env.timeout(duration)
            return "wrote"

        w.register_function("write", blocking_op)
        out = []

        def proc():
            result = yield from com.call_function("Svc.write", 2.5)
            out.append((result, env.now))

        env.process(proc())
        env.run()
        assert out == [("wrote", 2.5)]

    def test_call_function_plain_result_passthrough(self):
        com = Roccom()
        w = com.new_window("Svc")
        w.register_function("f", lambda: 7)
        env = Environment()
        out = []

        def proc():
            result = yield from com.call_function("Svc.f")
            out.append(result)
            yield env.timeout(0)

        env.process(proc())
        env.run()
        assert out == [7]


class DummyIOModule(ServiceModule):
    name = "dummyio"

    def __init__(self):
        self.loaded = False

    def load(self, com):
        self._register_io_window(com)
        self.loaded = True

    def unload(self, com):
        self._deregister_io_window(com)
        self.loaded = False

    def write_attribute(self, *args, **kwargs):
        return "write"

    def read_attribute(self, *args, **kwargs):
        return "read"

    def sync(self):
        return "sync"


class DummyIOModule2(DummyIOModule):
    name = "dummyio2"

    def write_attribute(self, *args, **kwargs):
        return "write2"


class TestModuleLifecycle:
    def test_load_registers_io_window(self):
        com = Roccom()
        com.load_module(DummyIOModule())
        assert com.has_window(IO_WINDOW)
        assert com.call_sync(f"{IO_WINDOW}.write_attribute") == "write"
        assert com.loaded_modules() == ["dummyio"]

    def test_double_load_rejected(self):
        com = Roccom()
        com.load_module(DummyIOModule())
        with pytest.raises(ValueError):
            com.load_module(DummyIOModule())

    def test_unload_removes_window(self):
        com = Roccom()
        mod = com.load_module(DummyIOModule())
        com.unload_module("dummyio")
        assert not com.has_window(IO_WINDOW)
        assert not mod.loaded
        with pytest.raises(KeyError):
            com.unload_module("dummyio")

    def test_swap_modules_keeps_interface(self):
        """§5: switching I/O services = load a different module."""
        com = Roccom()
        com.load_module(DummyIOModule())
        assert com.call_sync(f"{IO_WINDOW}.write_attribute") == "write"
        com.unload_module("dummyio")
        com.load_module(DummyIOModule2())
        assert com.call_sync(f"{IO_WINDOW}.write_attribute") == "write2"

    def test_module_accessor(self):
        com = Roccom()
        mod = com.load_module(DummyIOModule())
        assert com.module("dummyio") is mod
        with pytest.raises(KeyError):
            com.module("nope")


class TestCBindings:
    def test_init_finalize(self):
        com = COM_init()
        assert COM_get_com() is com
        with pytest.raises(RuntimeError):
            COM_init()
        COM_finalize()
        with pytest.raises(RuntimeError):
            COM_get_com()

    def test_f90_string_trims_trailing_blanks(self):
        assert f90_string("Fluid   ") == "Fluid"
        assert f90_string("  lead") == "  lead"

    def test_procedural_workflow(self):
        COM_init()
        COM_new_window("Solid  ")  # Fortran-style padded name
        COM_new_attribute("Solid.coords", LOC_NODE, ncomp=3)
        COM_register_pane("Solid", 2, nnodes=5, nelems=0)
        COM_set_array("Solid.coords", 2, np.zeros((5, 3)))
        assert COM_get_array("Solid.coords ", 2).shape == (5, 3)

    def test_procedural_function_call(self):
        COM_init()
        COM_new_window("Svc")
        COM_register_function("Svc.add", lambda a, b: a + b)
        env = Environment()
        out = []

        def proc():
            result = yield from COM_call_function("Svc.add", 2, 3)
            out.append(result)
            yield env.timeout(0)

        env.process(proc())
        env.run()
        assert out == [5]
