"""Truncation and torn-file handling of the SHDF codec.

A file cut mid-record must *never* decode as a shorter-but-valid file:
every prefix of the byte stream (other than a clean header-only file)
raises :class:`CodecError`.  A *journaled* file additionally promises a
commit footer, and decoding one without it raises
:class:`TornFileError` — the signal restart paths use to skip snapshots
torn by a crash.
"""

import numpy as np
import pytest

from repro.shdf.codec import (
    COMMIT_SIZE,
    JOURNAL_ATTR,
    CodecError,
    Dataset,
    TornFileError,
    decode_file,
    encode_commit_footer,
    encode_dataset,
    encode_header,
)


def _sample_dataset():
    return Dataset(
        "Fluid/b0001/coords",
        np.arange(12, dtype=np.float64).reshape(4, 3),
        {"loc": "node", "step": 7},
    )


def _record_boundaries(dataset):
    """Byte offsets of every field boundary inside one encoded record.

    Mirrors the wire layout documented in :mod:`repro.shdf.codec`::

        magic | str16 name | attrs | str16 dtype | u8 ndim
              | u64*ndim dims | u64 nbytes | raw data
    """
    arr = dataset.data
    name_raw = dataset.name.encode()
    offsets = {}
    pos = 4
    offsets["after_magic"] = pos
    pos += 2 + len(name_raw)
    offsets["after_name"] = pos
    pos += 4  # u32 attr count
    offsets["after_attr_count"] = pos
    for attr_name, value in dataset.attrs.items():
        pos += 2 + len(attr_name.encode())
        pos += 1  # value tag byte
        pos += 4 + len(value.encode()) if isinstance(value, str) else 8
        offsets[f"after_attr_{attr_name}"] = pos
    pos += 2 + len(arr.dtype.str.encode())
    offsets["after_dtype"] = pos
    pos += 1
    offsets["after_ndim"] = pos
    pos += 8 * arr.ndim
    offsets["after_dims"] = pos
    pos += 8
    offsets["after_nbytes"] = pos
    pos += arr.nbytes // 2
    offsets["mid_data"] = pos
    return offsets


class TestTruncation:
    def test_boundaries_cover_the_whole_record(self):
        ds = _sample_dataset()
        record = encode_dataset(ds)
        offsets = _record_boundaries(ds)
        # The layout helper and the encoder must agree on where fields
        # end; "mid_data" sits exactly half a payload before the end.
        assert offsets["after_nbytes"] + ds.data.nbytes == len(record)

    @pytest.mark.parametrize("field", sorted(_record_boundaries(_sample_dataset())))
    def test_cut_at_field_boundary_raises(self, field):
        ds = _sample_dataset()
        header = encode_header({})
        record = encode_dataset(ds)
        cut = _record_boundaries(ds)[field]
        with pytest.raises(CodecError):
            decode_file(header + record[:cut])

    def test_cut_at_every_byte_offset_raises(self):
        """Exhaustive: any proper prefix of header+record is rejected."""
        ds = _sample_dataset()
        buf = encode_header({"run": 1}) + encode_dataset(ds)
        header_len = len(encode_header({"run": 1}))
        for cut in range(len(buf)):
            if cut == header_len:
                continue  # header-only file: valid and empty
            with pytest.raises(CodecError):
                decode_file(buf[:cut])

    def test_header_only_file_is_valid_and_empty(self):
        image = decode_file(encode_header({"run": 1}))
        assert len(image) == 0
        assert image.attrs["run"] == 1

    def test_garbage_between_records_raises(self):
        ds = _sample_dataset()
        buf = encode_header({}) + encode_dataset(ds) + b"JUNKJUNKJUNK"
        with pytest.raises(CodecError):
            decode_file(buf)


class TestJournaledFiles:
    def _journaled(self, ndatasets=1, footer=True, committed=None):
        ds = _sample_dataset()
        buf = bytearray(encode_header({JOURNAL_ATTR: True}))
        for _ in range(ndatasets):
            buf += encode_dataset(ds)
        if footer:
            buf += encode_commit_footer(
                ndatasets if committed is None else committed
            )
        return bytes(buf)

    def test_committed_journaled_file_decodes(self):
        image = decode_file(self._journaled())
        assert len(image) == 1

    def test_journaled_file_without_footer_is_torn(self):
        with pytest.raises(TornFileError):
            decode_file(self._journaled(footer=False))

    def test_journaled_file_with_wrong_commit_count_is_torn(self):
        with pytest.raises(TornFileError):
            decode_file(self._journaled(ndatasets=1, committed=2))

    def test_footer_is_fixed_size(self):
        assert len(encode_commit_footer(7)) == COMMIT_SIZE

    def test_non_journaled_file_without_footer_still_decodes(self):
        buf = encode_header({}) + encode_dataset(_sample_dataset())
        assert len(decode_file(buf)) == 1

    def test_torn_is_a_codec_error(self):
        # Callers catching CodecError (the generic corruption signal)
        # also see torn files; only restart paths special-case them.
        assert issubclass(TornFileError, CodecError)
