"""Unit tests for SHDF drivers and the timed file API."""

import numpy as np
import pytest

from repro.des import Environment
from repro.fs import LocalFSModel
from repro.shdf import (
    Dataset,
    SHDFReader,
    SHDFWriter,
    hdf4_driver,
    hdf5_driver,
    raw_driver,
)


class TestDrivers:
    def test_hdf4_cost_grows_linearly(self):
        d = hdf4_driver(create_base=0.0, dir_coeff=1e-3)
        assert d.create_cost(100) == pytest.approx(0.1)
        assert d.create_cost(200) == pytest.approx(0.2)

    def test_hdf5_cost_grows_logarithmically(self):
        d = hdf5_driver(create_base=0.0, dir_coeff=1e-3)
        c100 = d.create_cost(100)
        c200 = d.create_cost(200)
        assert c200 < 2 * c100
        assert c200 > c100

    def test_hdf5_constant_higher_than_hdf4(self):
        assert hdf5_driver().create_base > hdf4_driver().create_base

    def test_crossover_hdf4_beats_hdf5_small_files_loses_big(self):
        h4, h5 = hdf4_driver(), hdf5_driver()

        def total_cost(driver, k):
            return sum(driver.create_cost(i) for i in range(k))

        assert total_cost(h4, 10) < total_cost(h5, 10)
        assert total_cost(h4, 5000) > total_cost(h5, 5000)

    def test_raw_driver_is_free(self):
        d = raw_driver()
        assert d.create_cost(10_000) == 0.0
        assert d.lookup_cost(10_000) == 0.0

    def test_negative_ndatasets_rejected(self):
        with pytest.raises(ValueError):
            hdf4_driver().structure_cost(-1)


def run(env, gen):
    def proc():
        result = yield from gen
        return result

    p = env.process(proc())
    env.run(until=p)
    return p.value


class TestTimedFileAPI:
    def make(self, driver=None):
        env = Environment()
        fs = LocalFSModel(env)
        return env, fs, driver or hdf4_driver()

    def test_write_read_roundtrip(self):
        env, fs, driver = self.make()
        blocks = [
            Dataset("b1/coords", np.random.default_rng(0).random((5, 3))),
            Dataset("b1/pressure", np.arange(5.0), {"units": "Pa"}),
        ]

        def program():
            writer = SHDFWriter(env, fs, "snap.hdf", driver)
            yield from writer.open(file_attrs={"step": 1})
            for block in blocks:
                yield from writer.write_dataset(block)
            yield from writer.close()

            reader = SHDFReader(env, fs, "snap.hdf", driver)
            attrs = yield from reader.open()
            assert attrs == {"step": 1}
            out = yield from reader.read_all()
            yield from reader.close()
            return out

        out = run(env, program())
        assert out == blocks

    def test_write_charges_time(self):
        env, fs, driver = self.make()

        def program():
            writer = SHDFWriter(env, fs, "f.hdf", driver)
            yield from writer.open()
            yield from writer.write_dataset(Dataset("d", np.zeros(1000)))
            yield from writer.close()

        run(env, program())
        assert env.now > 0

    def test_more_datasets_cost_more_per_dataset_hdf4(self):
        driver = hdf4_driver(create_base=0.0, dir_coeff=1e-3)
        env, fs, _ = self.make(driver)

        def program():
            writer = SHDFWriter(env, fs, "f.hdf", driver)
            yield from writer.open()
            t_first = env.now
            yield from writer.write_dataset(Dataset("d0", np.zeros(1)))
            cost_first = env.now - t_first
            for i in range(1, 100):
                yield from writer.write_dataset(Dataset(f"d{i}", np.zeros(1)))
            t_last = env.now
            yield from writer.write_dataset(Dataset("dlast", np.zeros(1)))
            cost_last = env.now - t_last
            yield from writer.close()
            return cost_first, cost_last

        cost_first, cost_last = run(env, program())
        assert cost_last > cost_first + 0.05

    def test_write_to_unopened_raises(self):
        env, fs, driver = self.make()
        writer = SHDFWriter(env, fs, "f.hdf", driver)

        def program():
            with pytest.raises(RuntimeError):
                yield from writer.write_dataset(Dataset("d", np.zeros(1)))

        run(env, program())

    def test_double_open_raises(self):
        env, fs, driver = self.make()

        def program():
            writer = SHDFWriter(env, fs, "f.hdf", driver)
            yield from writer.open()
            with pytest.raises(RuntimeError):
                yield from writer.open()
            yield from writer.close()

        run(env, program())

    def test_reopen_truncates(self):
        env, fs, driver = self.make()

        def program():
            writer = SHDFWriter(env, fs, "f.hdf", driver)
            yield from writer.open()
            yield from writer.write_dataset(Dataset("old", np.zeros(1)))
            yield from writer.close()

            writer2 = SHDFWriter(env, fs, "f.hdf", driver)
            yield from writer2.open()
            yield from writer2.write_dataset(Dataset("new", np.ones(1)))
            yield from writer2.close()

            reader = SHDFReader(env, fs, "f.hdf", driver)
            yield from reader.open()
            return reader.names()

        names = run(env, program())
        assert names == ["new"]

    def test_reader_single_dataset(self):
        env, fs, driver = self.make()

        def program():
            writer = SHDFWriter(env, fs, "f.hdf", driver)
            yield from writer.open()
            yield from writer.write_dataset(Dataset("a", np.arange(3.0)))
            yield from writer.write_dataset(Dataset("b", np.arange(4.0)))
            yield from writer.close()

            reader = SHDFReader(env, fs, "f.hdf", driver)
            yield from reader.open()
            ds = yield from reader.read_dataset("b")
            assert reader.ndatasets == 2
            yield from reader.close()
            return ds

        ds = run(env, program())
        np.testing.assert_array_equal(ds.data, np.arange(4.0))

    def test_reader_unopened_raises(self):
        env, fs, driver = self.make()
        reader = SHDFReader(env, fs, "nothing.hdf", driver)
        with pytest.raises(RuntimeError):
            reader.names()

    def test_busy_time_tracked(self):
        env, fs, driver = self.make()

        def program():
            writer = SHDFWriter(env, fs, "f.hdf", driver)
            yield from writer.open()
            yield from writer.write_dataset(Dataset("d", np.zeros(10000)))
            yield from writer.close()
            return writer.busy_time

        busy = run(env, program())
        assert busy == pytest.approx(env.now)
