"""Unit tests for the SHDF binary codec."""

import numpy as np
import pytest

from repro.shdf import (
    CodecError,
    Dataset,
    FileImage,
    decode_file,
    decode_header,
    encode_dataset,
    encode_file,
    encode_header,
    iter_records,
)


def build_image():
    img = FileImage({"sim": "GENx", "time_step": 50, "dt": 1e-6})
    img.add(
        Dataset(
            "block_001/coords",
            np.random.default_rng(0).random((10, 3)),
            {"units": "m", "ghost_layers": 1},
        )
    )
    img.add(Dataset("block_001/pressure", np.arange(10, dtype=np.float32)))
    img.add(
        Dataset(
            "block_002/conn",
            np.arange(24, dtype=np.int64).reshape(6, 4),
            {"element_type": "tet"},
        )
    )
    return img


def test_roundtrip_full_file():
    img = build_image()
    assert decode_file(encode_file(img)) == img


def test_header_roundtrip():
    attrs = {"a": 1, "b": "text", "c": 2.5}
    buf = encode_header(attrs)
    decoded, pos, version = decode_header(buf)
    assert decoded == attrs
    assert pos == len(buf)
    assert version == 1


def test_bad_magic_rejected():
    with pytest.raises(CodecError):
        decode_file(b"NOPE" + b"\x00" * 20)


def test_truncated_file_rejected():
    buf = encode_file(build_image())
    with pytest.raises(CodecError):
        decode_file(buf[:-5])


def test_incremental_append_matches_batch_encode():
    img = build_image()
    incremental = encode_header(img.attrs)
    for ds in img:
        incremental += encode_dataset(ds)
    assert incremental == encode_file(img)


def test_iter_records_streams_datasets():
    img = build_image()
    names = [d.name for d in iter_records(encode_file(img))]
    assert names == img.names()


def test_empty_file_roundtrip():
    img = FileImage()
    assert decode_file(encode_file(img)) == img


def test_attr_types_roundtrip():
    attrs = {
        "none": None,
        "bool_t": True,
        "bool_f": False,
        "int": -(2**40),
        "float": 3.14159,
        "str": "héllo ωorld",
        "bytes": b"\x00\x01\xff",
        "array": np.array([[1.5, 2.5]], dtype=np.float32),
        "list": [1, 2.0, "three", None, [True]],
    }
    img = FileImage(attrs)
    decoded = decode_file(encode_file(img))
    got = decoded.attrs
    assert got["none"] is None
    assert got["bool_t"] is True and got["bool_f"] is False
    assert got["int"] == -(2**40)
    assert got["float"] == pytest.approx(3.14159)
    assert got["str"] == "héllo ωorld"
    assert got["bytes"] == b"\x00\x01\xff"
    np.testing.assert_array_equal(got["array"], attrs["array"])
    assert got["list"] == [1, 2.0, "three", None, [True]]


def test_huge_int_attr_rejected():
    img = FileImage({"too_big": 1 << 70})
    with pytest.raises(CodecError):
        encode_file(img)


@pytest.mark.parametrize(
    "dtype",
    ["f4", "f8", "i1", "i2", "i4", "i8", "u1", "u4", "u8", "c8", "c16", "?"],
)
def test_dtypes_roundtrip(dtype):
    data = np.ones(7, dtype=dtype)
    img = FileImage()
    img.add(Dataset("d", data))
    out = decode_file(encode_file(img)).get("d")
    assert out.data.dtype == np.dtype(dtype)
    np.testing.assert_array_equal(out.data, data)


def test_zero_dim_array_roundtrip():
    img = FileImage()
    img.add(Dataset("scalar", np.array(42.0)))
    out = decode_file(encode_file(img)).get("scalar")
    assert out.data.shape == ()
    assert float(out.data) == 42.0


def test_empty_array_roundtrip():
    img = FileImage()
    img.add(Dataset("empty", np.zeros((0, 3))))
    out = decode_file(encode_file(img)).get("empty")
    assert out.data.shape == (0, 3)


def test_large_dataset_roundtrip():
    data = np.random.default_rng(1).random(100_000)
    img = FileImage()
    img.add(Dataset("big", data))
    out = decode_file(encode_file(img)).get("big")
    np.testing.assert_array_equal(out.data, data)


@pytest.mark.parametrize("dtype", [">f8", ">i4", "<f8", "<i4"])
def test_non_native_endian_roundtrip_zero_copy(dtype):
    # The dtype string is stored verbatim, so a big-endian array decodes
    # as a big-endian view over the buffer — byte-identical, no swap.
    data = np.arange(9, dtype=np.float64).astype(dtype).reshape(3, 3)
    img = FileImage()
    img.add(Dataset("d", data))
    out = decode_file(encode_file(img)).get("d")
    assert out.data.dtype == np.dtype(dtype)
    assert not out.data.flags.writeable
    np.testing.assert_array_equal(out.data, data)


def test_empty_attrs_roundtrip_zero_copy():
    img = FileImage({})
    img.add(Dataset("d", np.arange(3), {}))
    out = decode_file(encode_file(img))
    assert out.attrs == {}
    assert out.get("d").attrs == {}


def test_dataset_attr_arrays_are_readonly_views_by_default():
    # Dataset-level attrs follow the copy flag (file-level header attrs
    # are always private copies — they are tiny and parsed up front).
    img = FileImage()
    img.add(Dataset("d", np.arange(3), {"grid": np.arange(6.0).reshape(2, 3)}))
    got = decode_file(encode_file(img)).get("d").attrs["grid"]
    assert not got.flags.writeable
    np.testing.assert_array_equal(got, np.arange(6.0).reshape(2, 3))


def test_decoded_arrays_are_readonly_views_by_default():
    img = FileImage()
    img.add(Dataset("d", np.arange(5)))
    out = decode_file(encode_file(img)).get("d")
    assert not out.data.flags.writeable
    with pytest.raises(ValueError):
        out.data[0] = 99  # mutation must fail loudly, not corrupt the view


def test_decode_copy_yields_writable_private_arrays():
    img = FileImage()
    img.add(Dataset("d", np.arange(5)))
    buf = encode_file(img)
    out = decode_file(buf, copy=True).get("d")
    assert out.data.flags.writeable
    out.data[0] = 99
    assert out.data[0] == 99
    # The buffer itself is untouched: a fresh decode sees the original.
    assert decode_file(buf).get("d").data[0] == 0
