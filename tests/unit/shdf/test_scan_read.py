"""Scan-mode reads (open_scan / read_batch) vs the per-dataset spec.

The sieved restart path must return exactly the datasets the classic
``open`` + ``read_dataset`` loop does, while issuing one merged
``fs.read`` and charging format metadata identically.
"""

import numpy as np
import pytest

from repro.des import Environment
from repro.fs import NFSModel
from repro.shdf import decode_batch, scan_file
from repro.shdf.codec import encode_dataset
from repro.shdf.drivers import hdf4_driver
from repro.shdf.file import SHDFReader, SHDFWriter
from repro.shdf.model import Dataset


def drive(env, gen):
    box = {}

    def runner():
        box["value"] = yield from gen

    env.process(runner(), name="drive")
    env.run()
    return box.get("value")


def _datasets(n=6):
    rng = np.random.default_rng(11)
    return [
        Dataset(f"W/b{i}/f", rng.random(30 + 7 * i), {"ncomp": 1})
        for i in range(n)
    ]


def _write(env, fs, datasets, path="f.shdf"):
    writer = SHDFWriter(env, fs, path, hdf4_driver())

    def go():
        yield from writer.open(file_attrs={"step": 42})
        yield from writer.write_records(
            [(d.name, encode_dataset(d), d.nbytes) for d in datasets]
        )
        yield from writer.close()

    drive(env, go())


class TestScanFile:
    def test_entries_cover_every_record_in_file_order(self):
        env = Environment()
        fs = NFSModel(env)
        datasets = _datasets()
        _write(env, fs, datasets)
        buf = fs.disk.open("f.shdf").read()
        attrs, entries = scan_file(buf)
        assert attrs.get("step") == 42
        assert [name for name, _o, _l in entries] == [d.name for d in datasets]
        offsets = [o for _n, o, _l in entries]
        assert offsets == sorted(offsets)
        decoded = decode_batch([buf[o : o + l] for _n, o, l in entries])
        for got, want in zip(decoded, datasets):
            assert got.name == want.name
            np.testing.assert_array_equal(got.data, want.data)


class TestReadBatch:
    def _roundtrip(self, names=None):
        datasets = _datasets()
        env1 = Environment()
        fs1 = NFSModel(env1)
        _write(env1, fs1, datasets)
        env2 = Environment()
        fs2 = NFSModel(env2)
        _write(env2, fs2, datasets)

        wanted = names if names is not None else [d.name for d in datasets]
        reader1 = SHDFReader(env1, fs1, "f.shdf", hdf4_driver())

        def per_dataset():
            yield from reader1.open()
            out = []
            for name in wanted:
                out.append((yield from reader1.read_dataset(name)))
            yield from reader1.close()
            return out

        base_meta = fs1.metrics.meta_ops
        got1 = drive(env1, per_dataset())
        loop_meta = fs1.metrics.meta_ops - base_meta

        reader2 = SHDFReader(env2, fs2, "f.shdf", hdf4_driver())

        def batch():
            yield from reader2.open_scan()
            out = yield from reader2.read_batch(names)
            yield from reader2.close()
            return out

        base_meta2 = fs2.metrics.meta_ops
        base_reads = fs2.metrics.read_ops
        got2 = drive(env2, batch())
        return got1, got2, loop_meta, fs2.metrics.meta_ops - base_meta2, (
            fs2.metrics.read_ops - base_reads
        )

    def test_full_file_matches_per_dataset_loop(self):
        got1, got2, loop_meta, batch_meta, batch_reads = self._roundtrip()
        assert [d.name for d in got2] == [d.name for d in got1]
        for a, b in zip(got1, got2):
            np.testing.assert_array_equal(a.data, b.data)
            assert a.attrs == b.attrs
        # Same per-dataset format metadata charge, one merged transfer.
        assert batch_meta == loop_meta
        assert batch_reads == 1

    def test_subset_preserves_file_order(self):
        names = ["W/b4/f", "W/b1/f"]  # requested out of order
        _got1, got2, _lm, _bm, _br = self._roundtrip(names)
        assert [d.name for d in got2] == ["W/b1/f", "W/b4/f"]

    def test_unknown_name_raises_keyerror(self):
        env = Environment()
        fs = NFSModel(env)
        _write(env, fs, _datasets())
        reader = SHDFReader(env, fs, "f.shdf", hdf4_driver())

        def go():
            yield from reader.open_scan()
            yield from reader.read_batch(["W/nope/f"])

        with pytest.raises(KeyError):
            drive(env, go())

    def test_requires_scan_mode(self):
        env = Environment()
        fs = NFSModel(env)
        _write(env, fs, _datasets())
        reader = SHDFReader(env, fs, "f.shdf", hdf4_driver())
        with pytest.raises(RuntimeError):
            drive(env, reader.read_batch())

    def test_entries_accessor_returns_copy(self):
        env = Environment()
        fs = NFSModel(env)
        datasets = _datasets()
        _write(env, fs, datasets)
        reader = SHDFReader(env, fs, "f.shdf", hdf4_driver())
        drive(env, reader.open_scan())
        entries = reader.entries()
        assert len(entries) == len(datasets)
        entries.clear()
        assert len(reader.entries()) == len(datasets)
