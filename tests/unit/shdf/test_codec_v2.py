"""Unit tests for the v2 (indexed) SHDF format."""

import numpy as np
import pytest

from repro.des import Environment
from repro.fs import LocalFSModel
from repro.shdf import (
    CodecError,
    Dataset,
    FileImage,
    SHDFReader,
    SHDFWriter,
    decode_file,
    decode_file_v2,
    detect_version,
    encode_file,
    encode_file_v2,
    hdf4_driver,
    hdf5_driver,
    iter_records,
    read_dataset_at,
    read_index,
)


def build_image():
    img = FileImage({"run": "v2", "step": 7})
    rng = np.random.default_rng(0)
    img.add(Dataset("a/coords", rng.random((8, 3)), {"unit": "m"}))
    img.add(Dataset("a/pressure", rng.random(6)))
    img.add(Dataset("b/conn", np.arange(12, dtype=np.int64).reshape(3, 4)))
    return img


class TestCodecV2:
    def test_version_detection(self):
        img = build_image()
        assert detect_version(encode_file(img)) == 1
        assert detect_version(encode_file_v2(img)) == 2

    def test_detect_rejects_garbage(self):
        with pytest.raises(CodecError):
            detect_version(b"JUNKxx")

    def test_roundtrip_via_v2_decoder(self):
        img = build_image()
        assert decode_file_v2(encode_file_v2(img)) == img

    def test_roundtrip_via_generic_decoder(self):
        img = build_image()
        assert decode_file(encode_file_v2(img)) == img

    def test_index_maps_every_dataset(self):
        img = build_image()
        buf = encode_file_v2(img)
        index = read_index(buf)
        assert set(index) == set(img.names())
        for name, (offset, length) in index.items():
            ds = read_dataset_at(buf, offset)
            assert ds.name == name
            assert ds == img.get(name)

    def test_random_access_without_touching_other_records(self):
        img = build_image()
        buf = bytearray(encode_file_v2(img))
        index = read_index(bytes(buf))
        # Corrupt a record we are NOT reading; random access must not care.
        first_name = img.names()[0]
        other = [n for n in index if n != first_name][0]
        off, length = index[other]
        buf[off + 8 : off + 12] = b"\xff\xff\xff\xff"
        ds = read_dataset_at(bytes(buf), index[first_name][0])
        assert ds == img.get(first_name)

    def test_missing_footer_raises_in_read_index(self):
        buf = encode_file_v2(build_image())[:-4]
        with pytest.raises(CodecError):
            read_index(buf)

    def test_unclosed_v2_file_falls_back_to_scan(self):
        """A v2 header without index (crash before close) still decodes
        via the sequential path."""
        from repro.shdf.codec import encode_dataset
        from repro.shdf.codec_v2 import encode_header_v2

        img = build_image()
        buf = encode_header_v2(img.attrs)
        for ds in img:
            buf += encode_dataset(ds)
        decoded = decode_file(buf)
        assert decoded == img

    def test_iter_records_stops_before_index(self):
        img = build_image()
        names = [d.name for d in iter_records(encode_file_v2(img))]
        assert names == img.names()

    def test_empty_v2_file(self):
        img = FileImage({"only": "attrs"})
        assert decode_file(encode_file_v2(img)) == img

    def test_corrupt_index_offset_rejected(self):
        import struct

        buf = bytearray(encode_file_v2(build_image()))
        buf[-12:-4] = struct.pack("<Q", len(buf))  # out of range
        with pytest.raises(CodecError):
            read_index(bytes(buf))


class TestWriterIntegration:
    def run(self, env, gen):
        def proc():
            result = yield from gen
            return result

        p = env.process(proc())
        env.run(until=p)
        return p.value

    def test_hdf5_driver_writes_v2_by_default(self):
        env = Environment()
        fs = LocalFSModel(env)

        def program():
            writer = SHDFWriter(env, fs, "f5.shdf", hdf5_driver())
            assert writer.format_version == 2
            yield from writer.open(file_attrs={"x": 1})
            yield from writer.write_dataset(Dataset("d", np.arange(4.0)))
            yield from writer.close()

        self.run(env, program())
        buf = fs.disk.open("f5.shdf").read()
        assert detect_version(buf) == 2
        assert "d" in read_index(buf)

    def test_hdf4_driver_writes_v1_by_default(self):
        env = Environment()
        fs = LocalFSModel(env)

        def program():
            writer = SHDFWriter(env, fs, "f4.shdf", hdf4_driver())
            assert writer.format_version == 1
            yield from writer.open()
            yield from writer.write_dataset(Dataset("d", np.arange(4.0)))
            yield from writer.close()

        self.run(env, program())
        assert detect_version(fs.disk.open("f4.shdf").read()) == 1

    def test_explicit_version_override(self):
        env = Environment()
        fs = LocalFSModel(env)
        writer = SHDFWriter(env, fs, "x.shdf", hdf4_driver(), format_version=2)
        assert writer.format_version == 2
        with pytest.raises(ValueError):
            SHDFWriter(env, fs, "y.shdf", format_version=3)

    def test_reader_roundtrip_v2(self):
        env = Environment()
        fs = LocalFSModel(env)
        blocks = [Dataset(f"d{i}", np.full(5, float(i))) for i in range(4)]

        def program():
            writer = SHDFWriter(env, fs, "r.shdf", hdf5_driver())
            yield from writer.open(file_attrs={"k": "v"})
            for b in blocks:
                yield from writer.write_dataset(b)
            yield from writer.close()
            reader = SHDFReader(env, fs, "r.shdf", hdf5_driver())
            attrs = yield from reader.open()
            out = yield from reader.read_all()
            yield from reader.close()
            return attrs, out

        attrs, out = self.run(env, program())
        assert attrs == {"k": "v"}
        assert out == blocks
