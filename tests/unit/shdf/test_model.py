"""Unit tests for the SHDF object model."""

import numpy as np
import pytest

from repro.shdf import Dataset, FileImage


class TestDataset:
    def test_basic_construction(self):
        d = Dataset("pressure", np.zeros((4, 5)), {"units": "Pa"})
        assert d.name == "pressure"
        assert d.shape == (4, 5)
        assert d.nbytes == 160
        assert d.attrs["units"] == "Pa"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Dataset("", np.zeros(3))

    def test_non_array_rejected(self):
        with pytest.raises(TypeError):
            Dataset("x", [1, 2, 3])

    def test_object_dtype_rejected(self):
        with pytest.raises(TypeError):
            Dataset("x", np.array([object()]))

    def test_non_string_attr_key_rejected(self):
        with pytest.raises(TypeError):
            Dataset("x", np.zeros(1), {1: "bad"})

    def test_unsupported_attr_value_rejected(self):
        with pytest.raises(TypeError):
            Dataset("x", np.zeros(1), {"bad": object()})

    def test_data_made_contiguous(self):
        arr = np.arange(20).reshape(4, 5).T  # non-contiguous view
        d = Dataset("x", arr)
        assert d.data.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(d.data, arr)

    def test_equality_includes_data_and_attrs(self):
        a = Dataset("x", np.arange(3), {"k": 1})
        b = Dataset("x", np.arange(3), {"k": 1})
        c = Dataset("x", np.arange(3), {"k": 2})
        d = Dataset("x", np.array([0, 1, 3]), {"k": 1})
        assert a == b
        assert a != c
        assert a != d

    def test_equality_with_nan(self):
        a = Dataset("x", np.array([np.nan, 1.0]))
        b = Dataset("x", np.array([np.nan, 1.0]))
        assert a == b

    def test_equality_with_array_attrs(self):
        a = Dataset("x", np.zeros(1), {"v": np.array([1, 2])})
        b = Dataset("x", np.zeros(1), {"v": np.array([1, 2])})
        c = Dataset("x", np.zeros(1), {"v": np.array([1, 3])})
        assert a == b
        assert a != c


class TestFileImage:
    def test_add_and_get(self):
        img = FileImage({"run": "test"})
        img.add(Dataset("a", np.zeros(2)))
        img.add(Dataset("b", np.ones(3)))
        assert len(img) == 2
        assert "a" in img
        assert img.get("b").data.sum() == 3

    def test_duplicate_name_rejected(self):
        img = FileImage()
        img.add(Dataset("a", np.zeros(1)))
        with pytest.raises(ValueError):
            img.add(Dataset("a", np.zeros(1)))

    def test_missing_get_raises(self):
        with pytest.raises(KeyError):
            FileImage().get("nope")

    def test_insertion_order_preserved(self):
        img = FileImage()
        for name in ("z", "a", "m"):
            img.add(Dataset(name, np.zeros(1)))
        assert img.names() == ["z", "a", "m"]

    def test_data_nbytes(self):
        img = FileImage()
        img.add(Dataset("a", np.zeros(10, dtype=np.float64)))
        img.add(Dataset("b", np.zeros(5, dtype=np.int32)))
        assert img.data_nbytes == 80 + 20

    def test_image_equality(self):
        def build():
            img = FileImage({"t": 1})
            img.add(Dataset("a", np.arange(4), {"u": "m"}))
            return img

        assert build() == build()
        other = build()
        other.add(Dataset("extra", np.zeros(1)))
        assert build() != other
