"""Unit tests for units, stats, and tracing utilities."""

import pytest

from repro.util import (
    GB,
    KB,
    MB,
    Summary,
    TraceRecord,
    Tracer,
    best_of,
    fmt_bandwidth,
    fmt_bytes,
    fmt_time,
    mean_ci,
    t_critical_95,
)


class TestUnits:
    def test_constants(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(3 * MB) == "3.00 MB"
        assert fmt_bytes(1.5 * GB) == "1.50 GB"

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(875 * MB) == "875.00 MB/s"

    def test_fmt_time_scales(self):
        assert fmt_time(5e-7) == "0.5 us"
        assert fmt_time(2.5e-3) == "2.50 ms"
        assert fmt_time(51.58) == "51.58 s"
        assert fmt_time(846.64) == "14.11 min"


class TestStats:
    def test_best_of_is_min(self):
        s = best_of([5.0, 3.0, 4.0])
        assert s.value == 3.0
        assert s.halfwidth == 0.0
        assert s.n == 3

    def test_best_of_empty_rejected(self):
        with pytest.raises(ValueError):
            best_of([])

    def test_mean_ci_basic(self):
        s = mean_ci([10.0, 12.0, 14.0])
        assert s.value == pytest.approx(12.0)
        # halfwidth = t(2) * sd/sqrt(3) = 4.303 * 2/sqrt(3)
        assert s.halfwidth == pytest.approx(4.303 * 2.0 / 3**0.5, rel=1e-3)
        assert s.low < 12.0 < s.high

    def test_mean_ci_single_sample(self):
        s = mean_ci([7.0])
        assert s.value == 7.0
        assert s.halfwidth == 0.0

    def test_mean_ci_only_95(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=0.9)

    def test_t_critical_values(self):
        assert t_critical_95(1) == pytest.approx(12.706)
        assert t_critical_95(2) == pytest.approx(4.303)
        assert t_critical_95(1000) == pytest.approx(1.960)
        with pytest.raises(ValueError):
            t_critical_95(0)

    def test_summary_str(self):
        assert str(Summary(3.0, 0.5, 3)) == "3.00 ± 0.50"
        assert str(Summary(3.0, 0.0, 1)) == "3.00"


class TestTracer:
    def test_disabled_tracer_drops_records(self):
        t = Tracer(enabled=False)
        t.log(1.0, "io", 0, "write")
        assert len(t) == 0

    def test_enabled_tracer_collects(self):
        t = Tracer(enabled=True)
        t.log(1.0, "io", 0, "write")
        t.log(2.0, "net", 1, "send")
        assert len(t) == 2
        assert t.by_category("io")[0].message == "write"
        assert t.by_rank(1)[0].category == "net"

    def test_dump_format(self):
        t = Tracer(enabled=True)
        t.log(1.5, "io", 3, "hello")
        assert "r3" in t.dump()
        assert "hello" in t.dump()

    def test_record_str(self):
        r = TraceRecord(0.25, "cat", 7, "msg")
        assert "r7" in str(r)
