"""Unit tests for the instrumentation layer (repro.obs)."""

import json

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.des import Environment
from repro.io import RochdfModule
from repro.obs import (
    IORecord,
    Recorder,
    aggregate,
    overlap_ratio,
    phase_of,
    phase_rollup,
    records_by_rank,
    records_to_csv,
    render_timeline,
    summary_payload,
    to_json,
)
from repro.roccom import AttributeSpec, LOC_ELEMENT, Roccom
from repro.util import Tracer
from repro.vmpi import run_spmd


def rec(module="m", op="write_attribute", rank=0, nbytes=10,
        t_start=0.0, t_end=1.0, visible=True, path=""):
    return IORecord(module=module, op=op, rank=rank, path=path, nbytes=nbytes,
                    t_start=t_start, t_end=t_end, visible=visible)


class TestRecorder:
    def test_record_io_appends(self):
        r = Recorder()
        r.record_io("m", "op", 3, nbytes=7, t_start=1.0, t_end=2.5)
        assert len(r) == 1
        record = r.io_records[0]
        assert record.rank == 3
        assert record.duration == pytest.approx(1.5)

    def test_disabled_recorder_is_inert(self):
        r = Recorder(enabled=False)
        r.record_io("m", "op", 0, t_start=0.0, t_end=1.0)
        r.log_event(0.0, "c", 0, "msg")
        r.count_send(0, 1, 100, eager=True)
        r.count_recv(1, 100)
        assert len(r) == 0
        assert not r.events
        assert r.comm.messages_sent == 0

    def test_views(self):
        r = Recorder()
        r.record_io("a", "op", 0, t_start=0, t_end=1)
        r.record_io("b", "op", 1, t_start=0, t_end=1)
        assert len(r.by_rank(0)) == 1
        assert len(r.by_module("b")) == 1


class TestIOSpan:
    def test_span_brackets_virtual_time(self):
        env = Environment()
        r = Recorder()

        def proc():
            with r.span(env, "m", "op", 0, path="p") as span:
                yield env.timeout(2.0)
                span.nbytes = 42

        env.process(proc())
        env.run()
        assert len(r) == 1
        record = r.io_records[0]
        assert record.t_start == pytest.approx(0.0)
        assert record.t_end == pytest.approx(2.0)
        assert record.nbytes == 42

    def test_span_skips_record_on_exception(self):
        env = Environment()
        r = Recorder()
        with pytest.raises(ValueError):
            with r.span(env, "m", "op", 0):
                raise ValueError("boom")
        assert len(r) == 0


class TestAggregate:
    def test_visible_background_split(self):
        records = [
            rec(op="write_attribute", t_end=1.0, visible=True),
            rec(op="bg_write", t_end=3.0, visible=False),
            rec(op="sync", t_end=0.5, visible=True),
            rec(op="read_attribute", t_end=2.0, visible=True),
        ]
        rollup = aggregate(records)["m"]
        assert rollup.visible_time == pytest.approx(3.5)
        assert rollup.background_time == pytest.approx(3.0)
        # sync and reads are excluded from the visible *write* path.
        assert rollup.visible_write_time == pytest.approx(1.0)
        assert rollup.overlap_ratio == pytest.approx(3.0 / 4.0)
        assert rollup.ops["bg_write"].count == 1

    def test_overlap_ratio_zero_without_background(self):
        records = [rec(op="write_attribute", t_end=1.0)]
        assert overlap_ratio(records) == 0.0
        assert overlap_ratio([]) == 0.0

    def test_overlap_ratio_module_filter(self):
        records = [
            rec(module="a", op="bg_write", t_end=1.0, visible=False),
            rec(module="b", op="write_attribute", t_end=1.0),
        ]
        assert overlap_ratio(records, module="a") == 1.0
        assert overlap_ratio(records, module="b") == 0.0

    def test_phases(self):
        assert phase_of(rec(op="bg_write", visible=False)) == "write-behind"
        assert phase_of(rec(op="read_attribute")) == "restart"
        assert phase_of(rec(op="sync")) == "sync"
        assert phase_of(rec(op="write_attribute")) == "output"
        phases = phase_rollup([rec(op="sync", t_end=0.5)])
        assert phases["m"]["sync"] == pytest.approx(0.5)

    def test_records_by_rank_sorted(self):
        records = [
            rec(rank=1, t_start=5.0, t_end=6.0),
            rec(rank=1, t_start=1.0, t_end=2.0),
            rec(rank=0, t_start=0.0, t_end=1.0),
        ]
        grouped = records_by_rank(records)
        assert sorted(grouped) == [0, 1]
        assert [r.t_start for r in grouped[1]] == [1.0, 5.0]


class TestExport:
    def test_csv_round(self):
        text = records_to_csv([rec(path="f.shdf")])
        lines = text.strip().split("\n")
        assert lines[0].startswith("module,op,rank,path")
        assert "f.shdf" in lines[1]

    def test_summary_payload_and_json(self):
        r = Recorder()
        r.record_io("m", "write_attribute", 0, nbytes=10, t_start=0, t_end=1)
        r.record_io("m", "bg_write", 0, nbytes=10, t_start=1, t_end=2,
                    visible=False)
        r.count_send(0, 1, 64, eager=True)
        payload = summary_payload(r)
        assert payload["nrecords"] == 2
        assert payload["modules"]["m"]["overlap_ratio"] == pytest.approx(0.5)
        assert payload["comm"]["messages_sent"] == 1
        assert "records" not in payload
        parsed = json.loads(to_json(r, include_records=True))
        assert len(parsed["records"]) == 2

    def test_render_timeline(self):
        records = [rec(rank=0, path="a"), rec(rank=2, path="b"),
                   rec(rank=2, t_start=1.0, t_end=2.0)]
        text = render_timeline(records, limit_per_rank=1)
        assert "rank 0:" in text
        assert "rank 2:" in text
        assert "1 more record(s)" in text
        only = render_timeline(records, ranks=[0])
        assert "rank 2:" not in only


class TestTracerShim:
    def test_tracer_shares_recorder(self):
        tracer = Tracer(enabled=True)
        tracer.log(1.0, "cat", 0, "hello")
        assert len(tracer.records) == 1
        assert tracer.recorder.events is tracer.records

    def test_external_recorder(self):
        r = Recorder()
        tracer = Tracer(enabled=True, recorder=r)
        tracer.log(0.0, "c", 1, "m")
        assert len(r.events) == 1


class TestEndToEndRecordStream:
    def _run_rochdf(self, nblocks=1, cells=500):
        def main(ctx):
            com = Roccom(ctx)
            com.load_module(RochdfModule(ctx))
            w = com.new_window("W")
            w.declare_attribute(AttributeSpec("f", LOC_ELEMENT))
            rng = np.random.default_rng(0)
            for i in range(nblocks):
                w.register_pane(i, 0, cells)
                w.set_array("f", i, rng.random(cells))
            yield from com.call_function("OUT.write_attribute", "W", None, "e2e")

        machine = Machine(make_testbox(), seed=0)
        return run_spmd(machine, 1, main)

    def test_write_attribute_record_sequence(self):
        result = self._run_rochdf()
        records = result.recorder.io_records
        ops = [(r.module, r.op) for r in records]
        # One file open, the datasets, the close, then the module-level
        # record for the whole interface call.
        assert ops[0] == ("shdf", "open")
        assert ops[-1] == ("rochdf", "write_attribute")
        assert ops[-2] == ("shdf", "close")
        # The fault-free fast path coalesces the snapshot's datasets
        # into one merged transfer record.
        assert ("shdf", "write_records") in ops
        top = records[-1]
        assert top.visible
        assert top.nbytes > 0
        # The module record spans all the file-layer records.
        assert top.t_start <= records[0].t_start
        assert top.t_end >= records[-2].t_end
        # Plain Rochdf hides nothing.
        assert overlap_ratio(records, module="rochdf") == 0.0

    def test_comm_counters_from_job(self):
        def main(ctx):
            if ctx.rank == 0:
                yield from ctx.world.send(b"x" * 1000, dest=1)
            else:
                yield from ctx.world.recv(source=0)

        machine = Machine(make_testbox(), seed=0)
        result = run_spmd(machine, 2, main)
        comm = result.recorder.comm
        assert comm.messages_sent == 1
        assert comm.messages_received == 1
        assert comm.bytes_sent == comm.bytes_received == 1000
        assert comm.sent_by_rank == {0: 1}
