"""Unit tests for the vmpi mailbox matching semantics."""

import pytest

from repro.des import Environment
from repro.vmpi import ANY_SOURCE, ANY_TAG, Envelope, Mailbox


def make_envelope(src=0, tag=0, payload="x", seq=0):
    return Envelope(
        comm_id=0,
        src=src,
        dst=1,
        tag=tag,
        payload=payload,
        nbytes=1,
        mode="eager",
        seq=seq,
    )


def drain(env):
    env.run()


class TestImmediateQueries:
    def test_find_does_not_remove(self):
        env = Environment()
        box = Mailbox(env)
        box.deliver(make_envelope(tag=5))
        assert box.find(ANY_SOURCE, 5) is not None
        assert len(box) == 1

    def test_take_removes(self):
        env = Environment()
        box = Mailbox(env)
        box.deliver(make_envelope(tag=5))
        assert box.take(ANY_SOURCE, 5) is not None
        assert len(box) == 0
        assert box.take(ANY_SOURCE, 5) is None

    def test_wildcards(self):
        env = Environment()
        box = Mailbox(env)
        box.deliver(make_envelope(src=3, tag=7))
        assert box.find(ANY_SOURCE, ANY_TAG).src == 3
        assert box.find(3, ANY_TAG) is not None
        assert box.find(2, ANY_TAG) is None
        assert box.find(ANY_SOURCE, 8) is None

    def test_fifo_among_matches(self):
        env = Environment()
        box = Mailbox(env)
        box.deliver(make_envelope(tag=1, payload="first", seq=1))
        box.deliver(make_envelope(tag=1, payload="second", seq=2))
        assert box.take(ANY_SOURCE, 1).payload == "first"


class TestWaiters:
    def test_get_fires_on_delivery(self):
        env = Environment()
        box = Mailbox(env)
        event = box.get_matching(ANY_SOURCE, 9)
        assert not event.triggered
        box.deliver(make_envelope(tag=9, payload="late"))
        drain(env)
        assert event.value.payload == "late"
        assert len(box) == 0

    def test_peek_leaves_message(self):
        env = Environment()
        box = Mailbox(env)
        event = box.peek_matching(ANY_SOURCE, ANY_TAG)
        box.deliver(make_envelope(payload="keep"))
        drain(env)
        assert event.value.payload == "keep"
        assert len(box) == 1

    def test_peek_and_get_both_served_by_one_message(self):
        env = Environment()
        box = Mailbox(env)
        peek = box.peek_matching(ANY_SOURCE, ANY_TAG)
        get = box.get_matching(ANY_SOURCE, ANY_TAG)
        box.deliver(make_envelope(payload="one"))
        drain(env)
        assert peek.value.payload == "one"
        assert get.value.payload == "one"
        assert len(box) == 0

    def test_two_getters_get_distinct_messages(self):
        env = Environment()
        box = Mailbox(env)
        g1 = box.get_matching(ANY_SOURCE, ANY_TAG)
        g2 = box.get_matching(ANY_SOURCE, ANY_TAG)
        box.deliver(make_envelope(payload="a", seq=1))
        box.deliver(make_envelope(payload="b", seq=2))
        drain(env)
        assert {g1.value.payload, g2.value.payload} == {"a", "b"}

    def test_selective_waiter_skips_nonmatching(self):
        env = Environment()
        box = Mailbox(env)
        event = box.get_matching(2, 5)
        box.deliver(make_envelope(src=1, tag=5))
        drain(env)
        assert not event.triggered
        box.deliver(make_envelope(src=2, tag=5, payload="match"))
        drain(env)
        assert event.value.payload == "match"
        assert len(box) == 1  # the non-matching one remains
