"""Unit tests for rank placement policies."""

import pytest

from repro.cluster import testbox as make_testbox
from repro.vmpi import placement


def spec(nnodes=4, cpus=4):
    return make_testbox(nnodes=nnodes, cpus_per_node=cpus)


class TestBlock:
    def test_fills_nodes_in_order(self):
        slots = placement.block(spec(), 6)
        assert slots == [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1)]

    def test_capacity_check(self):
        with pytest.raises(ValueError):
            placement.block(spec(nnodes=1, cpus=2), 3)

    def test_invalid_nprocs(self):
        with pytest.raises(ValueError):
            placement.block(spec(), 0)


class TestLeaveOneIdle:
    def test_skips_last_cpu_of_each_node(self):
        slots = placement.leave_one_idle(spec(), 5)
        assert slots == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1)]
        used_cpus = {cpu for _, cpu in slots}
        assert 3 not in used_cpus

    def test_reduced_capacity(self):
        with pytest.raises(ValueError):
            placement.leave_one_idle(spec(nnodes=2, cpus=2), 3)

    def test_needs_multicpu_nodes(self):
        with pytest.raises(ValueError):
            placement.leave_one_idle(spec(nnodes=2, cpus=1), 1)


class TestRoundRobin:
    def test_cycles_nodes(self):
        slots = placement.round_robin(spec(), 6)
        assert slots == [(0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 1)]


class TestExplicit:
    def test_passthrough(self):
        pairs = [(1, 0), (0, 1)]
        policy = placement.explicit(pairs)
        assert policy(spec(), 2) == pairs

    def test_wrong_length_rejected(self):
        policy = placement.explicit([(0, 0)])
        with pytest.raises(ValueError):
            policy(spec(), 2)


class TestFig3bLayouts:
    """The three per-node layouts of Fig 3(b) fall out of the policies."""

    def test_16ns_uses_all_cpus(self):
        frost_like = make_testbox(nnodes=4, cpus_per_node=16)
        slots = placement.block(frost_like, 32)
        assert {n for n, _ in slots} == {0, 1}
        assert len([s for s in slots if s[0] == 0]) == 16

    def test_15ns_leaves_cpu_15_idle(self):
        frost_like = make_testbox(nnodes=4, cpus_per_node=16)
        slots = placement.leave_one_idle(frost_like, 30)
        assert len([s for s in slots if s[0] == 0]) == 15
        assert all(cpu < 15 for _, cpu in slots)

    def test_15s_block_plus_stride_servers(self):
        """block placement + stride-16 server selection = one server
        per node occupying the node's first CPU."""
        from repro.io import server_ranks

        frost_like = make_testbox(nnodes=4, cpus_per_node=16)
        slots = placement.block(frost_like, 64)
        servers = server_ranks(64, 4)
        server_slots = [slots[r] for r in servers]
        assert server_slots == [(0, 0), (1, 0), (2, 0), (3, 0)]
