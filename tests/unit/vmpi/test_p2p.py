"""Unit tests for vmpi point-to-point messaging."""

import numpy as np
import pytest

from repro.cluster import Machine
from repro.cluster import testbox as make_testbox
from repro.vmpi import ANY_SOURCE, ANY_TAG, MPIError, payload_nbytes, run_spmd


def launch(nprocs, main, seed=0, spec=None):
    machine = Machine(spec or make_testbox(), seed=seed)
    return run_spmd(machine, nprocs, main)


class TestPayloadNbytes:
    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes(self):
        assert payload_nbytes(b"12345") == 5

    def test_scalars_small(self):
        assert payload_nbytes(3) == 16
        assert payload_nbytes(None) == 16

    def test_containers_sum_recursively(self):
        flat = payload_nbytes([np.zeros(100)])
        assert flat >= 800

    def test_object_with_nbytes_attr(self):
        class Blob:
            nbytes = 4096

        assert payload_nbytes(Blob()) == 4096

    def test_string(self):
        assert payload_nbytes("hello") == 53


class TestSendRecv:
    def test_basic_roundtrip(self):
        results = {}

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send({"a": 7}, dest=1, tag=11)
            else:
                data, status = yield from comm.recv(source=0, tag=11)
                results["data"] = data
                results["status"] = status

        launch(2, main)
        assert results["data"] == {"a": 7}
        assert results["status"].source == 0
        assert results["status"].tag == 11

    def test_large_array_is_delivered_intact(self):
        payload = np.arange(100000, dtype=np.float64)
        received = {}

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send(payload, dest=1)
            else:
                data, _ = yield from comm.recv(source=0)
                received["data"] = data

        launch(2, main)
        np.testing.assert_array_equal(received["data"], payload)

    def test_large_send_takes_longer_than_small(self):
        times = {}

        def main_factory(nbytes):
            def main(ctx):
                comm = ctx.world
                if ctx.rank == 0:
                    yield from comm.send(np.zeros(nbytes // 8), dest=1)
                else:
                    yield from comm.recv(source=0)
                times[(nbytes, ctx.rank)] = ctx.now

            return main

        r_small = launch(2, main_factory(1 << 10))
        r_big = launch(2, main_factory(1 << 24))
        assert r_big.wall_time > r_small.wall_time

    def test_message_order_preserved_same_tag(self):
        received = []

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                for i in range(5):
                    yield from comm.send(i, dest=1, tag=7)
            else:
                for _ in range(5):
                    value, _ = yield from comm.recv(source=0, tag=7)
                    received.append(value)

        launch(2, main)
        assert received == [0, 1, 2, 3, 4]

    def test_tag_matching_out_of_order(self):
        received = []

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send("first", dest=1, tag=1)
                yield from comm.send("second", dest=1, tag=2)
            else:
                value, _ = yield from comm.recv(source=0, tag=2)
                received.append(value)
                value, _ = yield from comm.recv(source=0, tag=1)
                received.append(value)

        launch(2, main)
        assert received == ["second", "first"]

    def test_any_source_any_tag(self):
        received = []

        def main(ctx):
            comm = ctx.world
            if ctx.rank in (0, 1):
                yield from comm.send(f"from-{ctx.rank}", dest=2, tag=ctx.rank + 5)
            else:
                for _ in range(2):
                    value, status = yield from comm.recv(
                        source=ANY_SOURCE, tag=ANY_TAG
                    )
                    received.append((value, status.source))

        launch(3, main)
        assert sorted(received) == [("from-0", 0), ("from-1", 1)]

    def test_rendezvous_blocks_sender_until_recv(self):
        trace = {}

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                # Large message: rendezvous protocol.
                yield from comm.send(np.zeros(1 << 20), dest=1)
                trace["send_done"] = ctx.now
            else:
                yield from ctx.sleep(5.0)
                yield from comm.recv(source=0)
                trace["recv_done"] = ctx.now

        launch(2, main)
        # Sender can only finish after the receiver showed up at t=5.
        assert trace["send_done"] > 5.0

    def test_eager_send_returns_before_recv_posted(self):
        trace = {}

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send(b"x" * 100, dest=1)  # small: eager
                trace["send_done"] = ctx.now
            else:
                yield from ctx.sleep(5.0)
                yield from comm.recv(source=0)

        launch(2, main)
        assert trace["send_done"] < 1.0

    def test_send_bad_rank_raises(self):
        def main(ctx):
            with pytest.raises(MPIError):
                yield from ctx.world.send(1, dest=99)

        launch(2, main)

    def test_self_send_eager(self):
        received = []

        def main(ctx):
            comm = ctx.world
            yield from comm.send("self", dest=0, tag=3)
            value, _ = yield from comm.recv(source=0, tag=3)
            received.append(value)

        launch(1, main)
        assert received == ["self"]


class TestNonBlocking:
    def test_isend_irecv(self):
        received = []

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                req = comm.isend(np.arange(10), dest=1)
                yield from ctx.compute(1.0)  # overlap
                yield from req.wait()
            else:
                req = comm.irecv(source=0)
                yield from ctx.compute(1.0)
                (data, status) = yield from req.wait()
                received.append(data)

        launch(2, main)
        np.testing.assert_array_equal(received[0], np.arange(10))

    def test_request_test_and_complete(self):
        flags = []

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from ctx.sleep(1.0)
                yield from comm.send(b"z" * 100, dest=1)
            else:
                req = comm.irecv(source=0)
                flags.append(req.test())
                yield from ctx.sleep(5.0)
                flags.append(req.test())
                yield from req.wait()

        launch(2, main)
        assert flags == [False, True]


class TestProbe:
    def test_probe_does_not_consume(self):
        results = []

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from comm.send(b"payload" * 10, dest=1, tag=9)
            else:
                status = yield from comm.probe(source=ANY_SOURCE, tag=ANY_TAG)
                results.append(("probe", status.source, status.tag))
                value, _ = yield from comm.recv(source=status.source, tag=status.tag)
                results.append(("recv", value))

        launch(2, main)
        assert results[0] == ("probe", 0, 9)
        assert results[1][1] == b"payload" * 10

    def test_iprobe_immediate(self):
        results = []

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from ctx.sleep(2.0)
                yield from comm.send(1, dest=1)
            else:
                results.append(comm.iprobe())  # nothing yet
                yield from ctx.sleep(5.0)
                results.append(comm.iprobe())  # message waiting
                yield from comm.recv(source=0)
                results.append(comm.iprobe())  # consumed

        launch(2, main)
        assert results[0] is None
        assert results[1] is not None and results[1].source == 0
        assert results[2] is None

    def test_probe_blocks_until_message(self):
        times = {}

        def main(ctx):
            comm = ctx.world
            if ctx.rank == 0:
                yield from ctx.sleep(3.0)
                yield from comm.send(1, dest=1)
            else:
                yield from comm.probe()
                times["probed"] = ctx.now
                yield from comm.recv(source=0)

        launch(2, main)
        assert times["probed"] >= 3.0
